//! Array configurations: partitions of the module chain into contiguous
//! series-connected groups of parallel modules.

use std::fmt;

use crate::error::ArrayError;
use crate::switches::SwitchBank;

/// A contiguous run of modules forming one parallel group.
///
/// # Examples
///
/// ```
/// use teg_array::Group;
///
/// let g = Group::new(3, 7);
/// assert_eq!(g.len(), 4);
/// assert!(g.contains(5));
/// assert!(!g.contains(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Group {
    start: usize,
    end: usize,
}

impl Group {
    /// Creates a group covering module indices `start..end` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start < end, "a group must contain at least one module");
        Self { start, end }
    }

    /// Index of the first module in the group (`g_j` in the paper).
    #[must_use]
    pub const fn start(&self) -> usize {
        self.start
    }

    /// One past the index of the last module in the group.
    #[must_use]
    pub const fn end(&self) -> usize {
        self.end
    }

    /// Number of modules in the group.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.end - self.start
    }

    /// Groups are never empty; provided for API completeness.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` if the group contains the module index.
    #[must_use]
    pub const fn contains(&self, index: usize) -> bool {
        index >= self.start && index < self.end
    }

    /// Iterator over the module indices in the group.
    pub fn indices(&self) -> impl Iterator<Item = usize> {
        self.start..self.end
    }
}

/// A partition of the `N`-module chain into `n` contiguous groups:
/// the paper's `C(g_1, g_2, …, g_n)`.
///
/// Internally the configuration stores the 0-based start index of each group;
/// the first entry is always `0`.  Modules inside a group are connected in
/// parallel (both parallel switches closed between them); consecutive groups
/// are connected in series (the series switch closed between the last module
/// of one group and the first of the next).
///
/// # Examples
///
/// ```
/// use teg_array::Configuration;
///
/// # fn main() -> Result<(), teg_array::ArrayError> {
/// // A 10-module chain split into groups of sizes 3, 3 and 4.
/// let config = Configuration::new(vec![0, 3, 6], 10)?;
/// assert_eq!(config.group_count(), 3);
/// assert_eq!(config.group(2).unwrap().len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Configuration {
    group_starts: Vec<usize>,
    module_count: usize,
}

impl Configuration {
    /// Creates a configuration from the 0-based start index of every group.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::EmptyArray`] if `module_count` is zero and
    /// [`ArrayError::InvalidConfiguration`] if the starts are empty, do not
    /// begin at zero, are not strictly increasing, or reference modules
    /// outside the chain.
    pub fn new(group_starts: Vec<usize>, module_count: usize) -> Result<Self, ArrayError> {
        if module_count == 0 {
            return Err(ArrayError::EmptyArray);
        }
        let invalid = |reason: &str| ArrayError::InvalidConfiguration {
            reason: reason.to_owned(),
        };
        if group_starts.is_empty() {
            return Err(invalid("a configuration needs at least one group"));
        }
        if group_starts[0] != 0 {
            return Err(invalid("the first group must start at module 0"));
        }
        for pair in group_starts.windows(2) {
            if pair[1] <= pair[0] {
                return Err(invalid("group starts must be strictly increasing"));
            }
        }
        if *group_starts.last().expect("non-empty") >= module_count {
            return Err(invalid("a group start lies beyond the last module"));
        }
        Ok(Self {
            group_starts,
            module_count,
        })
    }

    /// Splits `module_count` modules into `group_count` groups of (near)
    /// equal size — the static baseline wiring (e.g. the paper's fixed
    /// 10 × 10 array for `module_count = 100`, `group_count = 10`).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::InvalidGroupCount`] if `group_count` is zero or
    /// exceeds `module_count`, and [`ArrayError::EmptyArray`] if
    /// `module_count` is zero.
    pub fn uniform(module_count: usize, group_count: usize) -> Result<Self, ArrayError> {
        if module_count == 0 {
            return Err(ArrayError::EmptyArray);
        }
        if group_count == 0 || group_count > module_count {
            return Err(ArrayError::InvalidGroupCount {
                groups: group_count,
                modules: module_count,
            });
        }
        let starts = (0..group_count)
            .map(|j| j * module_count / group_count)
            .collect();
        Self::new(starts, module_count)
    }

    /// Every module in its own group: a pure series string.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::EmptyArray`] if `module_count` is zero.
    pub fn all_series(module_count: usize) -> Result<Self, ArrayError> {
        Self::uniform(module_count, module_count)
    }

    /// All modules in one group: a pure parallel bank.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::EmptyArray`] if `module_count` is zero.
    pub fn all_parallel(module_count: usize) -> Result<Self, ArrayError> {
        Self::uniform(module_count, 1)
    }

    /// Number of modules in the chain.
    #[must_use]
    pub const fn module_count(&self) -> usize {
        self.module_count
    }

    /// Number of groups `n`.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.group_starts.len()
    }

    /// The 0-based start indices of the groups (the paper's `g_j`, shifted to
    /// 0-based indexing).
    #[must_use]
    pub fn group_starts(&self) -> &[usize] {
        &self.group_starts
    }

    /// Returns the `j`-th group, if it exists.
    #[must_use]
    pub fn group(&self, j: usize) -> Option<Group> {
        if j >= self.group_starts.len() {
            return None;
        }
        let start = self.group_starts[j];
        let end = self
            .group_starts
            .get(j + 1)
            .copied()
            .unwrap_or(self.module_count);
        Some(Group::new(start, end))
    }

    /// Iterator over all groups in series order.
    pub fn groups(&self) -> impl Iterator<Item = Group> + '_ {
        (0..self.group_count()).map(move |j| self.group(j).expect("index in range"))
    }

    /// Returns the index of the group containing module `module_index`, if it
    /// is inside the chain.
    #[must_use]
    pub fn group_of(&self, module_index: usize) -> Option<usize> {
        if module_index >= self.module_count {
            return None;
        }
        match self.group_starts.binary_search(&module_index) {
            Ok(j) => Some(j),
            Err(j) => Some(j - 1),
        }
    }

    /// Size of the largest group.
    #[must_use]
    pub fn max_group_len(&self) -> usize {
        self.groups().map(|g| g.len()).max().unwrap_or(0)
    }

    /// Derives the per-adjacent-pair switch states realising this
    /// configuration.
    #[must_use]
    pub fn switch_bank(&self) -> SwitchBank {
        SwitchBank::from_configuration(self)
    }

    /// Number of switch actuations (opens plus closes) needed to move from
    /// `self` to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::DimensionMismatch`] if the two configurations
    /// cover different module counts.
    pub fn switch_toggles_to(&self, other: &Self) -> Result<usize, ArrayError> {
        if self.module_count != other.module_count {
            return Err(ArrayError::DimensionMismatch {
                modules: self.module_count,
                temperatures: other.module_count,
            });
        }
        Ok(self.switch_bank().toggles_to(&other.switch_bank()))
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sizes: Vec<String> = self.groups().map(|g| g.len().to_string()).collect();
        write!(f, "C[{} modules: {}]", self.module_count, sizes.join("+"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn group_basics() {
        let g = Group::new(2, 5);
        assert_eq!(g.start(), 2);
        assert_eq!(g.end(), 5);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.indices().collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one module")]
    fn empty_group_is_rejected() {
        let _ = Group::new(3, 3);
    }

    #[test]
    fn construction_validation() {
        assert!(Configuration::new(vec![0, 3, 6], 10).is_ok());
        assert!(matches!(
            Configuration::new(vec![0], 0),
            Err(ArrayError::EmptyArray)
        ));
        assert!(Configuration::new(vec![], 10).is_err());
        assert!(Configuration::new(vec![1, 3], 10).is_err());
        assert!(Configuration::new(vec![0, 3, 3], 10).is_err());
        assert!(Configuration::new(vec![0, 5, 4], 10).is_err());
        assert!(Configuration::new(vec![0, 10], 10).is_err());
    }

    #[test]
    fn uniform_partitions_cover_all_modules() {
        let config = Configuration::uniform(100, 10).unwrap();
        assert_eq!(config.group_count(), 10);
        let total: usize = config.groups().map(|g| g.len()).sum();
        assert_eq!(total, 100);
        for g in config.groups() {
            assert_eq!(g.len(), 10);
        }
    }

    #[test]
    fn uniform_with_remainder_stays_contiguous() {
        let config = Configuration::uniform(10, 3).unwrap();
        let sizes: Vec<usize> = config.groups().map(|g| g.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert_eq!(sizes.len(), 3);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn degenerate_configurations() {
        let series = Configuration::all_series(5).unwrap();
        assert_eq!(series.group_count(), 5);
        assert!(series.groups().all(|g| g.len() == 1));
        let parallel = Configuration::all_parallel(5).unwrap();
        assert_eq!(parallel.group_count(), 1);
        assert_eq!(parallel.group(0).unwrap().len(), 5);
    }

    #[test]
    fn invalid_group_counts_are_rejected() {
        assert!(matches!(
            Configuration::uniform(10, 0),
            Err(ArrayError::InvalidGroupCount { .. })
        ));
        assert!(matches!(
            Configuration::uniform(10, 11),
            Err(ArrayError::InvalidGroupCount { .. })
        ));
    }

    #[test]
    fn group_of_locates_modules() {
        let config = Configuration::new(vec![0, 3, 6], 10).unwrap();
        assert_eq!(config.group_of(0), Some(0));
        assert_eq!(config.group_of(2), Some(0));
        assert_eq!(config.group_of(3), Some(1));
        assert_eq!(config.group_of(5), Some(1));
        assert_eq!(config.group_of(6), Some(2));
        assert_eq!(config.group_of(9), Some(2));
        assert_eq!(config.group_of(10), None);
    }

    #[test]
    fn display_shows_group_sizes() {
        let config = Configuration::new(vec![0, 3, 6], 10).unwrap();
        assert_eq!(config.to_string(), "C[10 modules: 3+3+4]");
    }

    #[test]
    fn max_group_len_and_accessors() {
        let config = Configuration::new(vec![0, 2, 9], 12).unwrap();
        assert_eq!(config.max_group_len(), 7);
        assert_eq!(config.module_count(), 12);
        assert_eq!(config.group_starts(), &[0, 2, 9]);
        assert!(config.group(3).is_none());
    }

    #[test]
    fn toggles_between_mismatched_sizes_fail() {
        let a = Configuration::uniform(10, 2).unwrap();
        let b = Configuration::uniform(12, 2).unwrap();
        assert!(a.switch_toggles_to(&b).is_err());
    }

    proptest! {
        /// Every uniform partition covers all modules exactly once with
        /// contiguous, ordered groups.
        #[test]
        fn prop_uniform_partitions_are_exact(modules in 1usize..300, groups in 1usize..50) {
            prop_assume!(groups <= modules);
            let config = Configuration::uniform(modules, groups).unwrap();
            prop_assert_eq!(config.group_count(), groups);
            let mut covered = 0usize;
            let mut next_expected = 0usize;
            for g in config.groups() {
                prop_assert_eq!(g.start(), next_expected);
                covered += g.len();
                next_expected = g.end();
            }
            prop_assert_eq!(covered, modules);
            prop_assert_eq!(next_expected, modules);
        }

        /// `group_of` agrees with iterating the groups.
        #[test]
        fn prop_group_of_agrees_with_groups(modules in 1usize..120, groups in 1usize..30) {
            prop_assume!(groups <= modules);
            let config = Configuration::uniform(modules, groups).unwrap();
            for (j, g) in config.groups().enumerate() {
                for i in g.indices() {
                    prop_assert_eq!(config.group_of(i), Some(j));
                }
            }
        }
    }
}
