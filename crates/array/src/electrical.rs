//! Electrical solver for a configured TEG array.
//!
//! Under a configuration the array is a series string of parallel groups.
//! Each module is a linear Thévenin source, so a parallel group of modules
//! `m ∈ g` with conductances `G_m = 1/R_m` and EMFs `E_m` collapses to a
//! Norton equivalent: at string current `I` the group voltage is
//!
//! ```text
//! V_g(I) = (Σ G_m·E_m − I) / Σ G_m
//! ```
//!
//! The array voltage is the sum of group voltages and the delivered power
//! `P(I) = I·ΣV_g(I)` is a concave parabola in `I`, whose maximum
//!
//! ```text
//! I* = (Σ_g S_g/G_g) / (2·Σ_g 1/G_g),   S_g = Σ G_m·E_m,  G_g = Σ G_m
//! ```
//!
//! is the array MPP that the charger's MPPT converges to.

use teg_device::TegModule;
use teg_units::{Amps, TemperatureDelta, Volts, Watts};

use crate::configuration::Configuration;
use crate::error::ArrayError;
use crate::fault::{FaultState, ModuleFault};
use crate::solver::{ArraySolver, SolvedPoint};

/// The solved state of one parallel group at a given string current.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupOperatingPoint {
    voltage: Volts,
    power: Watts,
}

impl GroupOperatingPoint {
    /// Builds a group point — the solve kernel is the only producer.
    pub(crate) const fn new(voltage: Volts, power: Watts) -> Self {
        Self { voltage, power }
    }

    /// Terminal voltage of the group.
    #[must_use]
    pub const fn voltage(&self) -> Volts {
        self.voltage
    }

    /// Power delivered by the group (negative if the string current drives
    /// the group above its open-circuit point).
    #[must_use]
    pub const fn power(&self) -> Watts {
        self.power
    }
}

/// The solved state of the whole array at a given string current.
///
/// # Examples
///
/// ```
/// use teg_array::{Configuration, TegArray};
/// use teg_device::{TegDatasheet, TegModule};
/// use teg_units::TemperatureDelta;
///
/// # fn main() -> Result<(), teg_array::ArrayError> {
/// let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let array = TegArray::uniform(module, 8);
/// let deltas = vec![TemperatureDelta::new(60.0); 8];
/// let config = Configuration::uniform(8, 4)?;
/// let op = array.maximum_power_point(&config, &deltas)?;
/// assert!(op.voltage().value() > 0.0);
/// assert!((op.power().value() - (op.voltage() * op.current()).value()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayOperatingPoint {
    current: Amps,
    voltage: Volts,
    power: Watts,
    groups: Vec<GroupOperatingPoint>,
}

impl ArrayOperatingPoint {
    /// Assembles the legacy owned operating point from a kernel solve.
    pub(crate) fn from_solver(point: SolvedPoint, groups: &[GroupOperatingPoint]) -> Self {
        Self {
            current: point.current(),
            voltage: point.voltage(),
            power: point.power(),
            groups: groups.to_vec(),
        }
    }

    /// String current flowing through every group.
    #[must_use]
    pub const fn current(&self) -> Amps {
        self.current
    }

    /// Total array terminal voltage.
    #[must_use]
    pub const fn voltage(&self) -> Volts {
        self.voltage
    }

    /// Total delivered power.
    #[must_use]
    pub const fn power(&self) -> Watts {
        self.power
    }

    /// Per-group operating points in series order.
    #[must_use]
    pub fn groups(&self) -> &[GroupOperatingPoint] {
        &self.groups
    }
}

/// A chain of TEG modules plus the electrical solver that evaluates any
/// configuration of them.
#[derive(Debug, Clone, PartialEq)]
pub struct TegArray {
    modules: Vec<TegModule>,
}

impl TegArray {
    /// Creates an array from an explicit list of (possibly non-identical)
    /// modules, ordered from the radiator entrance to the exit.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::EmptyArray`] if no modules are supplied.
    pub fn new(modules: Vec<TegModule>) -> Result<Self, ArrayError> {
        if modules.is_empty() {
            return Err(ArrayError::EmptyArray);
        }
        Ok(Self { modules })
    }

    /// Creates an array of `count` identical modules (the paper's setting).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn uniform(module: TegModule, count: usize) -> Self {
        assert!(count > 0, "array needs at least one module");
        Self {
            modules: vec![module; count],
        }
    }

    /// Number of modules in the array.
    #[must_use]
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Returns `true` if the array holds no modules (never true for a
    /// constructed array; provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// The modules in entrance-to-exit order.
    #[must_use]
    pub fn modules(&self) -> &[TegModule] {
        &self.modules
    }

    /// Per-module MPP currents for the given temperature differences — the
    /// `I_MPP,i` vector consumed by Algorithm 1.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::DimensionMismatch`] if the ΔT vector length does
    /// not match the module count.
    pub fn mpp_currents(&self, deltas: &[TemperatureDelta]) -> Result<Vec<Amps>, ArrayError> {
        self.check_deltas(deltas)?;
        Ok(self
            .modules
            .iter()
            .zip(deltas.iter())
            .map(|(m, &dt)| m.mpp(dt).current())
            .collect())
    }

    /// Solves the array at an imposed string current.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::DimensionMismatch`] if the ΔT vector length does
    /// not match the module count, or [`ArrayError::InvalidConfiguration`] if
    /// the configuration covers a different module count.
    pub fn operate_at(
        &self,
        config: &Configuration,
        deltas: &[TemperatureDelta],
        current: Amps,
    ) -> Result<ArrayOperatingPoint, ArrayError> {
        self.check_config(config)?;
        self.check_deltas(deltas)?;
        Ok(self.operate_at_with(config, deltas, current, None))
    }

    /// Solves the array at an imposed string current with the given
    /// electrical faults active.
    ///
    /// Open-circuit modules drop out of their group's Norton sums; a group
    /// whose every module is open breaks the series string and the whole
    /// array collapses to the zero operating point.  A short-circuited
    /// module pins its group to zero volts (the group still passes the
    /// string current).  Derated modules contribute a scaled EMF.
    ///
    /// Note that `config` is the configuration *realised by the fabric* —
    /// callers with stuck switch faults resolve the commanded configuration
    /// through [`FaultState::effective_configuration`] first.
    ///
    /// # Errors
    ///
    /// The failure modes of [`TegArray::operate_at`], plus
    /// [`ArrayError::InvalidConfiguration`] when the fault state covers a
    /// different module count.
    pub fn operate_at_faulted(
        &self,
        config: &Configuration,
        deltas: &[TemperatureDelta],
        current: Amps,
        faults: &FaultState,
    ) -> Result<ArrayOperatingPoint, ArrayError> {
        self.check_config(config)?;
        self.check_deltas(deltas)?;
        self.check_faults(faults)?;
        Ok(self.operate_at_with(config, deltas, current, Some(faults)))
    }

    /// Analytic maximum power point of the array under a configuration.
    ///
    /// The optimum string current is clamped at zero: with every module at
    /// ΔT = 0 the array cannot deliver power.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TegArray::operate_at`].
    pub fn maximum_power_point(
        &self,
        config: &Configuration,
        deltas: &[TemperatureDelta],
    ) -> Result<ArrayOperatingPoint, ArrayError> {
        self.check_config(config)?;
        self.check_deltas(deltas)?;
        Ok(self.maximum_power_point_with(config, deltas, None))
    }

    /// Analytic maximum power point with the given electrical faults active
    /// (same fault semantics as [`TegArray::operate_at_faulted`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TegArray::operate_at_faulted`].
    pub fn maximum_power_point_faulted(
        &self,
        config: &Configuration,
        deltas: &[TemperatureDelta],
        faults: &FaultState,
    ) -> Result<ArrayOperatingPoint, ArrayError> {
        self.check_config(config)?;
        self.check_deltas(deltas)?;
        self.check_faults(faults)?;
        Ok(self.maximum_power_point_with(config, deltas, Some(faults)))
    }

    /// Total array power at the analytic MPP — shorthand used by the
    /// reconfiguration algorithms' inner loops.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TegArray::operate_at`].
    pub fn mpp_power(
        &self,
        config: &Configuration,
        deltas: &[TemperatureDelta],
    ) -> Result<Watts, ArrayError> {
        Ok(self.maximum_power_point(config, deltas)?.power())
    }

    /// Total array MPP power with the given electrical faults active.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TegArray::operate_at_faulted`].
    pub fn mpp_power_faulted(
        &self,
        config: &Configuration,
        deltas: &[TemperatureDelta],
        faults: &FaultState,
    ) -> Result<Watts, ArrayError> {
        Ok(self
            .maximum_power_point_faulted(config, deltas, faults)?
            .power())
    }

    // The `_with` methods are thin wrappers over the shared solve kernel
    // (`crate::solver`), so the healthy and degraded paths — and the
    // batched candidate scans the schemes run — are one implementation.
    // Hot-path callers hold an `ArraySolver`/`ArrayPlan` themselves and
    // skip the per-call scratch these compatibility entry points pay for.

    fn maximum_power_point_with(
        &self,
        config: &Configuration,
        deltas: &[TemperatureDelta],
        faults: Option<&FaultState>,
    ) -> ArrayOperatingPoint {
        let mut solver = ArraySolver::new();
        solver
            .load(self, deltas, faults)
            .expect("dimensions validated by the caller");
        let point = solver
            .mpp(config)
            .expect("configuration validated by the caller");
        ArrayOperatingPoint::from_solver(point, solver.group_points())
    }

    fn operate_at_with(
        &self,
        config: &Configuration,
        deltas: &[TemperatureDelta],
        current: Amps,
        faults: Option<&FaultState>,
    ) -> ArrayOperatingPoint {
        let mut solver = ArraySolver::new();
        solver
            .load(self, deltas, faults)
            .expect("dimensions validated by the caller");
        let point = solver
            .operate_at(config, current)
            .expect("configuration validated by the caller");
        ArrayOperatingPoint::from_solver(point, solver.group_points())
    }

    /// The effective Thévenin source of one module under an optional fault
    /// state: `None` for an open-circuited module, otherwise its conductance
    /// and (possibly derated) EMF.  Short circuits are a *group*-level
    /// condition and are handled by the caller.
    pub(crate) fn module_source(
        &self,
        index: usize,
        delta: TemperatureDelta,
        faults: Option<&FaultState>,
    ) -> Option<(f64, f64)> {
        let fault = faults.and_then(|f| f.module_fault(index));
        if matches!(fault, Some(ModuleFault::OpenCircuit)) {
            return None;
        }
        let g = self.modules[index].internal_conductance(delta);
        let mut e = self.modules[index].open_circuit_voltage(delta).value();
        if let Some(ModuleFault::Derated(factor)) = fault {
            e *= factor;
        }
        Some((g, e))
    }

    fn check_deltas(&self, deltas: &[TemperatureDelta]) -> Result<(), ArrayError> {
        if deltas.len() != self.modules.len() {
            return Err(ArrayError::DimensionMismatch {
                modules: self.modules.len(),
                temperatures: deltas.len(),
            });
        }
        Ok(())
    }

    fn check_faults(&self, faults: &FaultState) -> Result<(), ArrayError> {
        if faults.module_count() != self.modules.len() {
            return Err(ArrayError::InvalidConfiguration {
                reason: format!(
                    "fault state covers {} modules but the array has {}",
                    faults.module_count(),
                    self.modules.len()
                ),
            });
        }
        Ok(())
    }

    fn check_config(&self, config: &Configuration) -> Result<(), ArrayError> {
        if config.module_count() != self.modules.len() {
            return Err(ArrayError::InvalidConfiguration {
                reason: format!(
                    "configuration covers {} modules but the array has {}",
                    config.module_count(),
                    self.modules.len()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::ideal_power;
    use proptest::prelude::*;
    use teg_device::TegDatasheet;

    fn module() -> TegModule {
        TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8())
    }

    fn gradient_deltas(n: usize) -> Vec<TemperatureDelta> {
        // Roughly what the radiator profile produces: hot near the entrance,
        // cooler towards the exit.
        (0..n)
            .map(|i| TemperatureDelta::new(70.0 - 35.0 * i as f64 / (n.max(2) - 1) as f64))
            .collect()
    }

    #[test]
    fn empty_array_is_rejected() {
        assert!(matches!(TegArray::new(vec![]), Err(ArrayError::EmptyArray)));
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let array = TegArray::uniform(module(), 10);
        let config = Configuration::uniform(10, 2).unwrap();
        let short = vec![TemperatureDelta::new(50.0); 9];
        assert!(array.mpp_currents(&short).is_err());
        assert!(array.operate_at(&config, &short, Amps::new(0.1)).is_err());
        let wrong_config = Configuration::uniform(12, 2).unwrap();
        let deltas = vec![TemperatureDelta::new(50.0); 10];
        assert!(array.maximum_power_point(&wrong_config, &deltas).is_err());
    }

    #[test]
    fn uniform_array_uniform_temperature_matches_hand_calculation() {
        // 4 identical modules at the same ΔT split 2+2: each parallel pair has
        // E = Voc, R = R/2; the string of two pairs has Voc_total = 2·Voc and
        // R_total = R.  P_mpp = (2·Voc)²/(4·R).
        let m = module();
        let dt = TemperatureDelta::new(60.0);
        let voc = m.open_circuit_voltage(dt).value();
        let r = m.internal_resistance(dt).value();
        let array = TegArray::uniform(m, 4);
        let config = Configuration::uniform(4, 2).unwrap();
        let op = array.maximum_power_point(&config, &[dt; 4]).unwrap();
        let expected = (2.0 * voc) * (2.0 * voc) / (4.0 * r);
        assert!((op.power().value() - expected).abs() < 1e-9);
        // The MPP voltage of a symmetric array is half its total Voc.
        assert!((op.voltage().value() - voc).abs() < 1e-9);
    }

    #[test]
    fn uniform_conditions_make_all_configurations_equivalent() {
        // With identical modules at identical ΔT every partition extracts the
        // same maximum power (only the voltage/current split changes).
        let array = TegArray::uniform(module(), 12);
        let deltas = vec![TemperatureDelta::new(55.0); 12];
        let p1 = array
            .mpp_power(&Configuration::uniform(12, 1).unwrap(), &deltas)
            .unwrap();
        let p3 = array
            .mpp_power(&Configuration::uniform(12, 3).unwrap(), &deltas)
            .unwrap();
        let p12 = array
            .mpp_power(&Configuration::uniform(12, 12).unwrap(), &deltas)
            .unwrap();
        assert!((p1.value() - p3.value()).abs() < 1e-9);
        assert!((p3.value() - p12.value()).abs() < 1e-9);
    }

    #[test]
    fn gradient_makes_partition_choice_matter() {
        // Under a temperature gradient a pure series string wastes power
        // compared to the ideal sum of module MPPs, and a well chosen
        // grouping recovers part of the loss — this is the premise of the
        // whole paper.
        let array = TegArray::uniform(module(), 20);
        let deltas = gradient_deltas(20);
        let ideal = ideal_power(array.modules(), &deltas).unwrap();
        let series = array
            .mpp_power(&Configuration::all_series(20).unwrap(), &deltas)
            .unwrap();
        assert!(series < ideal);
        let grouped = array
            .mpp_power(&Configuration::uniform(20, 5).unwrap(), &deltas)
            .unwrap();
        assert!(grouped.value() <= ideal.value() + 1e-9);
    }

    #[test]
    fn no_configuration_beats_the_ideal_power() {
        let array = TegArray::uniform(module(), 15);
        let deltas = gradient_deltas(15);
        let ideal = ideal_power(array.modules(), &deltas).unwrap();
        for groups in 1..=15 {
            let config = Configuration::uniform(15, groups).unwrap();
            let p = array.mpp_power(&config, &deltas).unwrap();
            assert!(
                p.value() <= ideal.value() + 1e-9,
                "{groups} groups exceeded ideal"
            );
        }
    }

    #[test]
    fn analytic_mpp_beats_nearby_currents() {
        let array = TegArray::uniform(module(), 10);
        let deltas = gradient_deltas(10);
        let config = Configuration::uniform(10, 5).unwrap();
        let op = array.maximum_power_point(&config, &deltas).unwrap();
        for factor in [0.8_f64, 0.9, 0.95, 1.05, 1.1, 1.2] {
            let other = array
                .operate_at(&config, &deltas, op.current() * factor)
                .unwrap();
            assert!(other.power().value() <= op.power().value() + 1e-9);
        }
    }

    #[test]
    fn power_equals_voltage_times_current_and_sums_over_groups() {
        let array = TegArray::uniform(module(), 9);
        let deltas = gradient_deltas(9);
        let config = Configuration::uniform(9, 3).unwrap();
        let op = array.operate_at(&config, &deltas, Amps::new(0.6)).unwrap();
        let group_power: f64 = op.groups().iter().map(|g| g.power().value()).sum();
        assert!((group_power - op.power().value()).abs() < 1e-9);
        let vi = (op.voltage() * op.current()).value();
        assert!((vi - op.power().value()).abs() < 1e-9);
        let group_voltage: f64 = op.groups().iter().map(|g| g.voltage().value()).sum();
        assert!((group_voltage - op.voltage().value()).abs() < 1e-9);
    }

    #[test]
    fn zero_delta_t_yields_zero_power() {
        let array = TegArray::uniform(module(), 6);
        let deltas = vec![TemperatureDelta::ZERO; 6];
        let config = Configuration::uniform(6, 3).unwrap();
        let op = array.maximum_power_point(&config, &deltas).unwrap();
        assert_eq!(op.current(), Amps::ZERO);
        assert_eq!(op.power(), Watts::ZERO);
    }

    #[test]
    fn non_uniform_modules_are_supported() {
        let hot = module().scaled(1.1, 0.95).unwrap();
        let cold = module().scaled(0.9, 1.05).unwrap();
        let array = TegArray::new(vec![hot, cold, module(), module()]).unwrap();
        assert_eq!(array.len(), 4);
        assert!(!array.is_empty());
        let deltas = vec![TemperatureDelta::new(50.0); 4];
        let p = array
            .mpp_power(&Configuration::uniform(4, 2).unwrap(), &deltas)
            .unwrap();
        assert!(p.value() > 0.0);
    }

    #[test]
    fn open_circuit_module_drops_out_of_its_group() {
        let array = TegArray::uniform(module(), 6);
        let deltas = vec![TemperatureDelta::new(60.0); 6];
        let config = Configuration::uniform(6, 2).unwrap();
        let mut faults = crate::FaultState::healthy(6);
        faults
            .set_module_fault(1, crate::ModuleFault::OpenCircuit)
            .unwrap();
        let healthy = array.mpp_power(&config, &deltas).unwrap();
        let degraded = array.mpp_power_faulted(&config, &deltas, &faults).unwrap();
        assert!(degraded.value() > 0.0);
        assert!(degraded < healthy);
    }

    #[test]
    fn fully_open_group_breaks_the_string() {
        let array = TegArray::uniform(module(), 4);
        let deltas = vec![TemperatureDelta::new(60.0); 4];
        let config = Configuration::uniform(4, 2).unwrap();
        let mut faults = crate::FaultState::healthy(4);
        faults
            .set_module_fault(0, crate::ModuleFault::OpenCircuit)
            .unwrap();
        faults
            .set_module_fault(1, crate::ModuleFault::OpenCircuit)
            .unwrap();
        let op = array
            .maximum_power_point_faulted(&config, &deltas, &faults)
            .unwrap();
        assert_eq!(op.power(), Watts::ZERO);
        assert_eq!(op.current(), Amps::ZERO);
        assert_eq!(op.voltage(), Volts::ZERO);
        // The imposed-current solve collapses the same way.
        let forced = array
            .operate_at_faulted(&config, &deltas, Amps::new(0.5), &faults)
            .unwrap();
        assert_eq!(forced.power(), Watts::ZERO);
    }

    #[test]
    fn shorted_group_is_pinned_to_zero_volts_but_passes_current() {
        let array = TegArray::uniform(module(), 6);
        let deltas = vec![TemperatureDelta::new(60.0); 6];
        let config = Configuration::uniform(6, 3).unwrap();
        let mut faults = crate::FaultState::healthy(6);
        faults
            .set_module_fault(2, crate::ModuleFault::ShortCircuit)
            .unwrap();
        let op = array
            .maximum_power_point_faulted(&config, &deltas, &faults)
            .unwrap();
        // Group 1 (modules 2..4) is shorted: zero volts, zero power.
        assert_eq!(op.groups()[1].voltage(), Volts::ZERO);
        assert_eq!(op.groups()[1].power(), Watts::ZERO);
        // The other two groups still deliver through the short.
        assert!(op.power().value() > 0.0);
        assert!(op.current().value() > 0.0);
        let healthy = array.mpp_power(&config, &deltas).unwrap();
        assert!(op.power() < healthy);
    }

    #[test]
    fn every_group_shorted_means_a_dead_array() {
        let array = TegArray::uniform(module(), 4);
        let deltas = vec![TemperatureDelta::new(60.0); 4];
        let config = Configuration::uniform(4, 2).unwrap();
        let mut faults = crate::FaultState::healthy(4);
        faults
            .set_module_fault(0, crate::ModuleFault::ShortCircuit)
            .unwrap();
        faults
            .set_module_fault(2, crate::ModuleFault::ShortCircuit)
            .unwrap();
        let op = array
            .maximum_power_point_faulted(&config, &deltas, &faults)
            .unwrap();
        assert_eq!(op.power(), Watts::ZERO);
        assert!(op.power().value().is_finite());
    }

    #[test]
    fn derated_module_scales_power_down_continuously() {
        let array = TegArray::uniform(module(), 5);
        let deltas = gradient_deltas(5);
        let config = Configuration::uniform(5, 5).unwrap();
        let healthy = array.mpp_power(&config, &deltas).unwrap();
        let mut previous = healthy.value();
        for factor in [0.8, 0.5, 0.2] {
            let mut faults = crate::FaultState::healthy(5);
            faults
                .set_module_fault(0, crate::ModuleFault::Derated(factor))
                .unwrap();
            let degraded = array
                .mpp_power_faulted(&config, &deltas, &faults)
                .unwrap()
                .value();
            assert!(degraded < previous, "factor {factor} must lose more power");
            assert!(degraded > 0.0);
            previous = degraded;
        }
    }

    #[test]
    fn healthy_fault_state_matches_the_plain_solver_bitwise() {
        let array = TegArray::uniform(module(), 9);
        let deltas = gradient_deltas(9);
        let config = Configuration::uniform(9, 3).unwrap();
        let faults = crate::FaultState::healthy(9);
        let plain = array.maximum_power_point(&config, &deltas).unwrap();
        let faulted = array
            .maximum_power_point_faulted(&config, &deltas, &faults)
            .unwrap();
        assert_eq!(plain, faulted);
    }

    #[test]
    fn mismatched_fault_state_is_rejected() {
        let array = TegArray::uniform(module(), 6);
        let deltas = vec![TemperatureDelta::new(50.0); 6];
        let config = Configuration::uniform(6, 2).unwrap();
        let faults = crate::FaultState::healthy(5);
        assert!(array
            .maximum_power_point_faulted(&config, &deltas, &faults)
            .is_err());
        assert!(array
            .operate_at_faulted(&config, &deltas, Amps::new(0.1), &faults)
            .is_err());
    }

    /// Deterministically derives a fault pattern from a bit mask: two bits
    /// per module select healthy / open / short / derated.
    fn fault_pattern(n: usize, mask: u64) -> crate::FaultState {
        let mut faults = crate::FaultState::healthy(n);
        for i in 0..n {
            match (mask >> ((2 * i) % 64)) & 0b11 {
                1 => faults
                    .set_module_fault(i, crate::ModuleFault::OpenCircuit)
                    .unwrap(),
                2 => faults
                    .set_module_fault(i, crate::ModuleFault::ShortCircuit)
                    .unwrap(),
                3 => faults
                    .set_module_fault(i, crate::ModuleFault::Derated(0.6))
                    .unwrap(),
                _ => {}
            }
        }
        faults
    }

    proptest! {
        /// For any configuration and any fault set, the faulted array never
        /// delivers more than the healthy ideal power (sum of module MPPs).
        #[test]
        fn prop_faulted_power_is_bounded_by_the_healthy_ideal(
            n in 2usize..24,
            groups in 1usize..8,
            base in 10.0_f64..80.0,
            span in 0.0_f64..50.0,
            mask in 0u64..u64::MAX,
        ) {
            prop_assume!(groups <= n);
            let array = TegArray::uniform(module(), n);
            let deltas: Vec<_> = (0..n)
                .map(|i| TemperatureDelta::new(base + span * i as f64 / n as f64))
                .collect();
            let config = Configuration::uniform(n, groups).unwrap();
            let faults = fault_pattern(n, mask);
            let p = array.mpp_power_faulted(&config, &deltas, &faults).unwrap();
            let ideal = ideal_power(array.modules(), &deltas).unwrap();
            prop_assert!(p.value().is_finite());
            prop_assert!(p.value() >= 0.0);
            prop_assert!(p.value() <= ideal.value() + 1e-6);
        }

        /// Kirchhoff consistency of the solved faulted state: every series
        /// group carries the same string current (the connected modules of a
        /// non-shorted group source exactly the string current between them),
        /// group voltages sum to the terminal voltage, and P = V·I at both
        /// group and array level.
        #[test]
        fn prop_faulted_solve_is_kirchhoff_consistent(
            n in 2usize..24,
            groups in 1usize..8,
            base in 10.0_f64..80.0,
            span in 0.0_f64..50.0,
            frac in 0.1_f64..1.5,
            mask in 0u64..u64::MAX,
        ) {
            prop_assume!(groups <= n);
            let array = TegArray::uniform(module(), n);
            let deltas: Vec<_> = (0..n)
                .map(|i| TemperatureDelta::new(base + span * i as f64 / n as f64))
                .collect();
            let config = Configuration::uniform(n, groups).unwrap();
            let faults = fault_pattern(n, mask);
            let mpp = array
                .maximum_power_point_faulted(&config, &deltas, &faults)
                .unwrap();
            let op = array
                .operate_at_faulted(&config, &deltas, mpp.current() * frac, &faults)
                .unwrap();
            let current = op.current().value();

            // A group that is fully open (and not shorted) breaks the series
            // string: the solver reports the dead operating point, which is
            // trivially consistent but carries no branch currents to check.
            let string_broken = config.groups().any(|group| {
                let shorted = group
                    .indices()
                    .any(|i| faults.module_fault(i) == Some(crate::ModuleFault::ShortCircuit));
                !shorted
                    && group
                        .indices()
                        .all(|i| faults.module_fault(i) == Some(crate::ModuleFault::OpenCircuit))
            });
            if string_broken {
                prop_assert_eq!(op.power().value(), 0.0);
                prop_assert_eq!(op.current().value(), 0.0);
            } else {
                // Terminal voltage is the series sum of group voltages.
                let group_voltage: f64 = op.groups().iter().map(|g| g.voltage().value()).sum();
                prop_assert!((group_voltage - op.voltage().value()).abs() < 1e-9);
                // P = V·I at the array level and summed over the groups.
                prop_assert!(
                    ((op.voltage() * op.current()).value() - op.power().value()).abs() < 1e-9
                );
                let group_power: f64 = op.groups().iter().map(|g| g.power().value()).sum();
                prop_assert!((group_power - op.power().value()).abs() < 1e-9);

                // Within each non-shorted group the parallel modules share
                // the group voltage and their branch currents
                // i_m = G_m·(E_m − V_g) sum to the string current (KCL at
                // the group's output node).
                for (j, group) in config.groups().enumerate() {
                    let shorted = group
                        .indices()
                        .any(|i| faults.module_fault(i) == Some(crate::ModuleFault::ShortCircuit));
                    if shorted {
                        prop_assert_eq!(op.groups()[j].voltage().value(), 0.0);
                        continue;
                    }
                    let v_g = op.groups()[j].voltage().value();
                    let mut branch_sum = 0.0;
                    for i in group.indices() {
                        let Some((g, e)) = array.module_source(i, deltas[i], Some(&faults)) else {
                            continue; // open module: zero branch current
                        };
                        branch_sum += g * (e - v_g);
                    }
                    prop_assert!(
                        (branch_sum - current).abs() < 1e-9,
                        "group {} branch currents {} != string current {}",
                        j,
                        branch_sum,
                        current
                    );
                }
            }
        }
    }

    proptest! {
        /// The analytic MPP current maximises the concave power parabola: any
        /// sampled current delivers no more power.
        #[test]
        fn prop_analytic_mpp_is_global(
            n in 2usize..40,
            groups in 1usize..10,
            base in 10.0_f64..90.0,
            span in 0.0_f64..60.0,
            frac in 0.0_f64..2.0,
        ) {
            prop_assume!(groups <= n);
            let array = TegArray::uniform(module(), n);
            let deltas: Vec<_> = (0..n)
                .map(|i| TemperatureDelta::new(base + span * i as f64 / n as f64))
                .collect();
            let config = Configuration::uniform(n, groups).unwrap();
            let op = array.maximum_power_point(&config, &deltas).unwrap();
            let probe = array.operate_at(&config, &deltas, op.current() * frac).unwrap();
            prop_assert!(probe.power().value() <= op.power().value() + 1e-6);
        }

        /// No configuration can extract more than the sum of module MPPs.
        #[test]
        fn prop_ideal_power_is_an_upper_bound(
            n in 2usize..30,
            groups in 1usize..8,
            base in 5.0_f64..80.0,
            span in 0.0_f64..70.0,
        ) {
            prop_assume!(groups <= n);
            let array = TegArray::uniform(module(), n);
            let deltas: Vec<_> = (0..n)
                .map(|i| TemperatureDelta::new(base + span * (i as f64 / n as f64)))
                .collect();
            let config = Configuration::uniform(n, groups).unwrap();
            let p = array.mpp_power(&config, &deltas).unwrap();
            let ideal = ideal_power(array.modules(), &deltas).unwrap();
            prop_assert!(p.value() <= ideal.value() + 1e-6);
        }
    }
}
