//! Electrical solver for a configured TEG array.
//!
//! Under a configuration the array is a series string of parallel groups.
//! Each module is a linear Thévenin source, so a parallel group of modules
//! `m ∈ g` with conductances `G_m = 1/R_m` and EMFs `E_m` collapses to a
//! Norton equivalent: at string current `I` the group voltage is
//!
//! ```text
//! V_g(I) = (Σ G_m·E_m − I) / Σ G_m
//! ```
//!
//! The array voltage is the sum of group voltages and the delivered power
//! `P(I) = I·ΣV_g(I)` is a concave parabola in `I`, whose maximum
//!
//! ```text
//! I* = (Σ_g S_g/G_g) / (2·Σ_g 1/G_g),   S_g = Σ G_m·E_m,  G_g = Σ G_m
//! ```
//!
//! is the array MPP that the charger's MPPT converges to.

use teg_device::TegModule;
use teg_units::{Amps, TemperatureDelta, Volts, Watts};

use crate::configuration::Configuration;
use crate::error::ArrayError;

/// The solved state of one parallel group at a given string current.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupOperatingPoint {
    voltage: Volts,
    power: Watts,
}

impl GroupOperatingPoint {
    /// Terminal voltage of the group.
    #[must_use]
    pub const fn voltage(&self) -> Volts {
        self.voltage
    }

    /// Power delivered by the group (negative if the string current drives
    /// the group above its open-circuit point).
    #[must_use]
    pub const fn power(&self) -> Watts {
        self.power
    }
}

/// The solved state of the whole array at a given string current.
///
/// # Examples
///
/// ```
/// use teg_array::{Configuration, TegArray};
/// use teg_device::{TegDatasheet, TegModule};
/// use teg_units::TemperatureDelta;
///
/// # fn main() -> Result<(), teg_array::ArrayError> {
/// let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let array = TegArray::uniform(module, 8);
/// let deltas = vec![TemperatureDelta::new(60.0); 8];
/// let config = Configuration::uniform(8, 4)?;
/// let op = array.maximum_power_point(&config, &deltas)?;
/// assert!(op.voltage().value() > 0.0);
/// assert!((op.power().value() - (op.voltage() * op.current()).value()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayOperatingPoint {
    current: Amps,
    voltage: Volts,
    power: Watts,
    groups: Vec<GroupOperatingPoint>,
}

impl ArrayOperatingPoint {
    /// String current flowing through every group.
    #[must_use]
    pub const fn current(&self) -> Amps {
        self.current
    }

    /// Total array terminal voltage.
    #[must_use]
    pub const fn voltage(&self) -> Volts {
        self.voltage
    }

    /// Total delivered power.
    #[must_use]
    pub const fn power(&self) -> Watts {
        self.power
    }

    /// Per-group operating points in series order.
    #[must_use]
    pub fn groups(&self) -> &[GroupOperatingPoint] {
        &self.groups
    }
}

/// A chain of TEG modules plus the electrical solver that evaluates any
/// configuration of them.
#[derive(Debug, Clone, PartialEq)]
pub struct TegArray {
    modules: Vec<TegModule>,
}

impl TegArray {
    /// Creates an array from an explicit list of (possibly non-identical)
    /// modules, ordered from the radiator entrance to the exit.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::EmptyArray`] if no modules are supplied.
    pub fn new(modules: Vec<TegModule>) -> Result<Self, ArrayError> {
        if modules.is_empty() {
            return Err(ArrayError::EmptyArray);
        }
        Ok(Self { modules })
    }

    /// Creates an array of `count` identical modules (the paper's setting).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn uniform(module: TegModule, count: usize) -> Self {
        assert!(count > 0, "array needs at least one module");
        Self {
            modules: vec![module; count],
        }
    }

    /// Number of modules in the array.
    #[must_use]
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Returns `true` if the array holds no modules (never true for a
    /// constructed array; provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// The modules in entrance-to-exit order.
    #[must_use]
    pub fn modules(&self) -> &[TegModule] {
        &self.modules
    }

    /// Per-module MPP currents for the given temperature differences — the
    /// `I_MPP,i` vector consumed by Algorithm 1.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::DimensionMismatch`] if the ΔT vector length does
    /// not match the module count.
    pub fn mpp_currents(&self, deltas: &[TemperatureDelta]) -> Result<Vec<Amps>, ArrayError> {
        self.check_deltas(deltas)?;
        Ok(self
            .modules
            .iter()
            .zip(deltas.iter())
            .map(|(m, &dt)| m.mpp(dt).current())
            .collect())
    }

    /// Solves the array at an imposed string current.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::DimensionMismatch`] if the ΔT vector length does
    /// not match the module count, or [`ArrayError::InvalidConfiguration`] if
    /// the configuration covers a different module count.
    pub fn operate_at(
        &self,
        config: &Configuration,
        deltas: &[TemperatureDelta],
        current: Amps,
    ) -> Result<ArrayOperatingPoint, ArrayError> {
        self.check_config(config)?;
        self.check_deltas(deltas)?;
        let mut groups = Vec::with_capacity(config.group_count());
        let mut total_voltage = Volts::ZERO;
        for group in config.groups() {
            let (s_g, g_g) = self.group_sums(group.start(), group.end(), deltas);
            let voltage = Volts::new((s_g - current.value()) / g_g);
            let power = voltage * current;
            total_voltage += voltage;
            groups.push(GroupOperatingPoint { voltage, power });
        }
        Ok(ArrayOperatingPoint {
            current,
            voltage: total_voltage,
            power: total_voltage * current,
            groups,
        })
    }

    /// Analytic maximum power point of the array under a configuration.
    ///
    /// The optimum string current is clamped at zero: with every module at
    /// ΔT = 0 the array cannot deliver power.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TegArray::operate_at`].
    pub fn maximum_power_point(
        &self,
        config: &Configuration,
        deltas: &[TemperatureDelta],
    ) -> Result<ArrayOperatingPoint, ArrayError> {
        self.check_config(config)?;
        self.check_deltas(deltas)?;
        let mut sum_voc = 0.0; // Σ_g S_g / G_g  (total open-circuit voltage)
        let mut sum_res = 0.0; // Σ_g 1 / G_g    (total series resistance)
        for group in config.groups() {
            let (s_g, g_g) = self.group_sums(group.start(), group.end(), deltas);
            sum_voc += s_g / g_g;
            sum_res += 1.0 / g_g;
        }
        let optimum = (sum_voc / (2.0 * sum_res)).max(0.0);
        self.operate_at(config, deltas, Amps::new(optimum))
    }

    /// Total array power at the analytic MPP — shorthand used by the
    /// reconfiguration algorithms' inner loops.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TegArray::operate_at`].
    pub fn mpp_power(
        &self,
        config: &Configuration,
        deltas: &[TemperatureDelta],
    ) -> Result<Watts, ArrayError> {
        Ok(self.maximum_power_point(config, deltas)?.power())
    }

    // Parallel indexing of modules and deltas over a sub-range.
    #[allow(clippy::needless_range_loop)]
    fn group_sums(&self, start: usize, end: usize, deltas: &[TemperatureDelta]) -> (f64, f64) {
        let mut s_g = 0.0;
        let mut g_g = 0.0;
        for i in start..end {
            let g = self.modules[i].internal_conductance(deltas[i]);
            let e = self.modules[i].open_circuit_voltage(deltas[i]).value();
            s_g += g * e;
            g_g += g;
        }
        (s_g, g_g)
    }

    fn check_deltas(&self, deltas: &[TemperatureDelta]) -> Result<(), ArrayError> {
        if deltas.len() != self.modules.len() {
            return Err(ArrayError::DimensionMismatch {
                modules: self.modules.len(),
                temperatures: deltas.len(),
            });
        }
        Ok(())
    }

    fn check_config(&self, config: &Configuration) -> Result<(), ArrayError> {
        if config.module_count() != self.modules.len() {
            return Err(ArrayError::InvalidConfiguration {
                reason: format!(
                    "configuration covers {} modules but the array has {}",
                    config.module_count(),
                    self.modules.len()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::ideal_power;
    use proptest::prelude::*;
    use teg_device::TegDatasheet;

    fn module() -> TegModule {
        TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8())
    }

    fn gradient_deltas(n: usize) -> Vec<TemperatureDelta> {
        // Roughly what the radiator profile produces: hot near the entrance,
        // cooler towards the exit.
        (0..n)
            .map(|i| TemperatureDelta::new(70.0 - 35.0 * i as f64 / (n.max(2) - 1) as f64))
            .collect()
    }

    #[test]
    fn empty_array_is_rejected() {
        assert!(matches!(TegArray::new(vec![]), Err(ArrayError::EmptyArray)));
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let array = TegArray::uniform(module(), 10);
        let config = Configuration::uniform(10, 2).unwrap();
        let short = vec![TemperatureDelta::new(50.0); 9];
        assert!(array.mpp_currents(&short).is_err());
        assert!(array.operate_at(&config, &short, Amps::new(0.1)).is_err());
        let wrong_config = Configuration::uniform(12, 2).unwrap();
        let deltas = vec![TemperatureDelta::new(50.0); 10];
        assert!(array.maximum_power_point(&wrong_config, &deltas).is_err());
    }

    #[test]
    fn uniform_array_uniform_temperature_matches_hand_calculation() {
        // 4 identical modules at the same ΔT split 2+2: each parallel pair has
        // E = Voc, R = R/2; the string of two pairs has Voc_total = 2·Voc and
        // R_total = R.  P_mpp = (2·Voc)²/(4·R).
        let m = module();
        let dt = TemperatureDelta::new(60.0);
        let voc = m.open_circuit_voltage(dt).value();
        let r = m.internal_resistance(dt).value();
        let array = TegArray::uniform(m, 4);
        let config = Configuration::uniform(4, 2).unwrap();
        let op = array.maximum_power_point(&config, &[dt; 4]).unwrap();
        let expected = (2.0 * voc) * (2.0 * voc) / (4.0 * r);
        assert!((op.power().value() - expected).abs() < 1e-9);
        // The MPP voltage of a symmetric array is half its total Voc.
        assert!((op.voltage().value() - voc).abs() < 1e-9);
    }

    #[test]
    fn uniform_conditions_make_all_configurations_equivalent() {
        // With identical modules at identical ΔT every partition extracts the
        // same maximum power (only the voltage/current split changes).
        let array = TegArray::uniform(module(), 12);
        let deltas = vec![TemperatureDelta::new(55.0); 12];
        let p1 = array
            .mpp_power(&Configuration::uniform(12, 1).unwrap(), &deltas)
            .unwrap();
        let p3 = array
            .mpp_power(&Configuration::uniform(12, 3).unwrap(), &deltas)
            .unwrap();
        let p12 = array
            .mpp_power(&Configuration::uniform(12, 12).unwrap(), &deltas)
            .unwrap();
        assert!((p1.value() - p3.value()).abs() < 1e-9);
        assert!((p3.value() - p12.value()).abs() < 1e-9);
    }

    #[test]
    fn gradient_makes_partition_choice_matter() {
        // Under a temperature gradient a pure series string wastes power
        // compared to the ideal sum of module MPPs, and a well chosen
        // grouping recovers part of the loss — this is the premise of the
        // whole paper.
        let array = TegArray::uniform(module(), 20);
        let deltas = gradient_deltas(20);
        let ideal = ideal_power(array.modules(), &deltas).unwrap();
        let series = array
            .mpp_power(&Configuration::all_series(20).unwrap(), &deltas)
            .unwrap();
        assert!(series < ideal);
        let grouped = array
            .mpp_power(&Configuration::uniform(20, 5).unwrap(), &deltas)
            .unwrap();
        assert!(grouped.value() <= ideal.value() + 1e-9);
    }

    #[test]
    fn no_configuration_beats_the_ideal_power() {
        let array = TegArray::uniform(module(), 15);
        let deltas = gradient_deltas(15);
        let ideal = ideal_power(array.modules(), &deltas).unwrap();
        for groups in 1..=15 {
            let config = Configuration::uniform(15, groups).unwrap();
            let p = array.mpp_power(&config, &deltas).unwrap();
            assert!(
                p.value() <= ideal.value() + 1e-9,
                "{groups} groups exceeded ideal"
            );
        }
    }

    #[test]
    fn analytic_mpp_beats_nearby_currents() {
        let array = TegArray::uniform(module(), 10);
        let deltas = gradient_deltas(10);
        let config = Configuration::uniform(10, 5).unwrap();
        let op = array.maximum_power_point(&config, &deltas).unwrap();
        for factor in [0.8_f64, 0.9, 0.95, 1.05, 1.1, 1.2] {
            let other = array
                .operate_at(&config, &deltas, op.current() * factor)
                .unwrap();
            assert!(other.power().value() <= op.power().value() + 1e-9);
        }
    }

    #[test]
    fn power_equals_voltage_times_current_and_sums_over_groups() {
        let array = TegArray::uniform(module(), 9);
        let deltas = gradient_deltas(9);
        let config = Configuration::uniform(9, 3).unwrap();
        let op = array.operate_at(&config, &deltas, Amps::new(0.6)).unwrap();
        let group_power: f64 = op.groups().iter().map(|g| g.power().value()).sum();
        assert!((group_power - op.power().value()).abs() < 1e-9);
        let vi = (op.voltage() * op.current()).value();
        assert!((vi - op.power().value()).abs() < 1e-9);
        let group_voltage: f64 = op.groups().iter().map(|g| g.voltage().value()).sum();
        assert!((group_voltage - op.voltage().value()).abs() < 1e-9);
    }

    #[test]
    fn zero_delta_t_yields_zero_power() {
        let array = TegArray::uniform(module(), 6);
        let deltas = vec![TemperatureDelta::ZERO; 6];
        let config = Configuration::uniform(6, 3).unwrap();
        let op = array.maximum_power_point(&config, &deltas).unwrap();
        assert_eq!(op.current(), Amps::ZERO);
        assert_eq!(op.power(), Watts::ZERO);
    }

    #[test]
    fn non_uniform_modules_are_supported() {
        let hot = module().scaled(1.1, 0.95).unwrap();
        let cold = module().scaled(0.9, 1.05).unwrap();
        let array = TegArray::new(vec![hot, cold, module(), module()]).unwrap();
        assert_eq!(array.len(), 4);
        assert!(!array.is_empty());
        let deltas = vec![TemperatureDelta::new(50.0); 4];
        let p = array
            .mpp_power(&Configuration::uniform(4, 2).unwrap(), &deltas)
            .unwrap();
        assert!(p.value() > 0.0);
    }

    proptest! {
        /// The analytic MPP current maximises the concave power parabola: any
        /// sampled current delivers no more power.
        #[test]
        fn prop_analytic_mpp_is_global(
            n in 2usize..40,
            groups in 1usize..10,
            base in 10.0_f64..90.0,
            span in 0.0_f64..60.0,
            frac in 0.0_f64..2.0,
        ) {
            prop_assume!(groups <= n);
            let array = TegArray::uniform(module(), n);
            let deltas: Vec<_> = (0..n)
                .map(|i| TemperatureDelta::new(base + span * i as f64 / n as f64))
                .collect();
            let config = Configuration::uniform(n, groups).unwrap();
            let op = array.maximum_power_point(&config, &deltas).unwrap();
            let probe = array.operate_at(&config, &deltas, op.current() * frac).unwrap();
            prop_assert!(probe.power().value() <= op.power().value() + 1e-6);
        }

        /// No configuration can extract more than the sum of module MPPs.
        #[test]
        fn prop_ideal_power_is_an_upper_bound(
            n in 2usize..30,
            groups in 1usize..8,
            base in 5.0_f64..80.0,
            span in 0.0_f64..70.0,
        ) {
            prop_assume!(groups <= n);
            let array = TegArray::uniform(module(), n);
            let deltas: Vec<_> = (0..n)
                .map(|i| TemperatureDelta::new(base + span * (i as f64 / n as f64)))
                .collect();
            let config = Configuration::uniform(n, groups).unwrap();
            let p = array.mpp_power(&config, &deltas).unwrap();
            let ideal = ideal_power(array.modules(), &deltas).unwrap();
            prop_assert!(p.value() <= ideal.value() + 1e-6);
        }
    }
}
