//! Error type for the reconfigurable-array substrate.

use std::error::Error;
use std::fmt;

/// Errors produced when building configurations or solving the array network.
///
/// # Examples
///
/// ```
/// use teg_array::ArrayError;
///
/// let err = ArrayError::EmptyArray;
/// assert!(err.to_string().contains("at least one module"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArrayError {
    /// The array or configuration would contain no modules.
    EmptyArray,
    /// A configuration's group boundaries were not valid for the array size.
    InvalidConfiguration {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The number of temperature samples does not match the number of
    /// modules in the array.
    DimensionMismatch {
        /// Number of modules in the array.
        modules: usize,
        /// Number of temperature samples supplied.
        temperatures: usize,
    },
    /// The requested group count cannot be formed from the module count.
    InvalidGroupCount {
        /// Requested group count.
        groups: usize,
        /// Available module count.
        modules: usize,
    },
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyArray => write!(f, "the array must contain at least one module"),
            Self::InvalidConfiguration { reason } => write!(f, "invalid configuration: {reason}"),
            Self::DimensionMismatch {
                modules,
                temperatures,
            } => write!(
                f,
                "temperature vector has {temperatures} entries but the array has {modules} modules"
            ),
            Self::InvalidGroupCount { groups, modules } => {
                write!(f, "cannot split {modules} modules into {groups} groups")
            }
        }
    }
}

impl Error for ArrayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        assert!(ArrayError::EmptyArray.to_string().contains("at least one"));
        assert!(ArrayError::InvalidConfiguration {
            reason: "unsorted".into()
        }
        .to_string()
        .contains("unsorted"));
        assert!(ArrayError::DimensionMismatch {
            modules: 10,
            temperatures: 9
        }
        .to_string()
        .contains("10"));
        assert!(ArrayError::InvalidGroupCount {
            groups: 11,
            modules: 10
        }
        .to_string()
        .contains("11"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ArrayError>();
    }
}
