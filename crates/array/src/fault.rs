//! Electrical fault state of a degraded TEG array.
//!
//! Real automotive arrays do not stay healthy: modules crack (open-circuit),
//! solder bridges or insulation failures short a parallel bank, aging derates
//! output, and the reconfiguration switch fabric itself sticks.  The paper's
//! schemes exist precisely to harvest well under such mismatch, so the
//! electrical solver must be able to answer "what does this configuration
//! deliver *with these faults present*".
//!
//! [`FaultState`] captures the active faults of one array instant:
//!
//! * per-module faults ([`ModuleFault`]): open-circuit (the module drops out
//!   of its parallel group), short-circuit (the module shorts its whole
//!   group to zero volts), or output derating (the Seebeck EMF is scaled
//!   down, as an aged or delaminated module behaves);
//! * per-link switch faults ([`SwitchStuck`]): the parallel switch pair
//!   between adjacent modules stuck open (the modules can no longer be
//!   paralleled — a commanded group splits there) or stuck closed (the
//!   modules are welded into one group — a commanded boundary disappears).
//!
//! Switch faults act on the *commanded* configuration through
//! [`FaultState::effective_configuration`]; module faults act on the group
//! sums inside the solver ([`TegArray::operate_at_faulted`] and friends).
//! The state is plain data — `Clone + PartialEq`, no interior mutability —
//! so simulation sessions can evolve it deterministically from a timed
//! fault plan.
//!
//! [`TegArray::operate_at_faulted`]: crate::TegArray::operate_at_faulted
//!
//! # Examples
//!
//! ```
//! use teg_array::{Configuration, FaultState, ModuleFault, SwitchStuck, TegArray};
//! use teg_device::{TegDatasheet, TegModule};
//! use teg_units::TemperatureDelta;
//!
//! # fn main() -> Result<(), teg_array::ArrayError> {
//! let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
//! let array = TegArray::uniform(module, 8);
//! let deltas = vec![TemperatureDelta::new(60.0); 8];
//! let config = Configuration::uniform(8, 4)?;
//!
//! let mut faults = FaultState::healthy(8);
//! faults.set_module_fault(3, ModuleFault::OpenCircuit)?;
//! faults.set_switch_fault(1, SwitchStuck::Closed)?;
//!
//! let effective = faults.effective_configuration(&config)?;
//! assert_eq!(effective.group_count(), 3); // the boundary at module 2 is welded shut
//! let healthy = array.mpp_power(&config, &deltas)?;
//! let degraded = array.mpp_power_faulted(&effective, &deltas, &faults)?;
//! assert!(degraded < healthy);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeSet;
use std::fmt;

use crate::configuration::Configuration;
use crate::error::ArrayError;

/// An electrical fault of one TEG module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModuleFault {
    /// The module is disconnected: it contributes neither EMF nor
    /// conductance to its parallel group.  A group whose every module is
    /// open breaks the series string — the whole array delivers no power.
    OpenCircuit,
    /// The module is a short across its parallel group: the group is pinned
    /// to zero volts (and zero power) but still passes the string current.
    ShortCircuit,
    /// The module's Seebeck EMF is scaled by the given factor in `(0, 1)` —
    /// the aging/delamination model.
    Derated(f64),
}

impl ModuleFault {
    /// Compact tag used by fault-plan serialisations.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Self::OpenCircuit => "open",
            Self::ShortCircuit => "short",
            Self::Derated(_) => "derate",
        }
    }
}

impl fmt::Display for ModuleFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OpenCircuit => write!(f, "open-circuit"),
            Self::ShortCircuit => write!(f, "short-circuit"),
            Self::Derated(factor) => write!(f, "derated({factor:.2})"),
        }
    }
}

/// A stuck fault of the parallel switch pair between two adjacent modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchStuck {
    /// The parallel switches cannot close: the two modules can never share a
    /// group, so any commanded group spanning the link splits there.
    Open,
    /// The parallel switches cannot open: the two modules are welded into
    /// one group, so any commanded boundary at the link disappears.
    Closed,
}

impl fmt::Display for SwitchStuck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Open => write!(f, "stuck-open"),
            Self::Closed => write!(f, "stuck-closed"),
        }
    }
}

/// The complete electrical fault state of an `N`-module array: one optional
/// [`ModuleFault`] per module and one optional [`SwitchStuck`] per adjacent
/// link (`N − 1` links).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultState {
    modules: Vec<Option<ModuleFault>>,
    links: Vec<Option<SwitchStuck>>,
}

impl FaultState {
    /// A fault-free state for an array of `module_count` modules.
    ///
    /// # Panics
    ///
    /// Panics if `module_count` is zero.
    #[must_use]
    pub fn healthy(module_count: usize) -> Self {
        assert!(module_count > 0, "fault state needs at least one module");
        Self {
            modules: vec![None; module_count],
            links: vec![None; module_count - 1],
        }
    }

    /// Number of modules the state covers.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Number of adjacent links (`module_count − 1`).
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` while no module or switch fault is active.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.modules.iter().all(Option::is_none) && self.links.iter().all(Option::is_none)
    }

    /// Number of active faults (modules plus links).
    #[must_use]
    pub fn active_fault_count(&self) -> usize {
        self.modules.iter().filter(|f| f.is_some()).count()
            + self.links.iter().filter(|f| f.is_some()).count()
    }

    /// The active fault of one module, if any.
    ///
    /// # Panics
    ///
    /// Panics if `module` is out of range.
    #[must_use]
    pub fn module_fault(&self, module: usize) -> Option<ModuleFault> {
        self.modules[module]
    }

    /// The active stuck fault of one link, if any.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    #[must_use]
    pub fn switch_fault(&self, link: usize) -> Option<SwitchStuck> {
        self.links[link]
    }

    /// Activates (or replaces) a module fault.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::InvalidConfiguration`] when the module index is
    /// out of range or a derating factor is outside `(0, 1)` / non-finite.
    pub fn set_module_fault(
        &mut self,
        module: usize,
        fault: ModuleFault,
    ) -> Result<(), ArrayError> {
        if module >= self.modules.len() {
            return Err(ArrayError::InvalidConfiguration {
                reason: format!(
                    "fault targets module {module} but the array has {} modules",
                    self.modules.len()
                ),
            });
        }
        if let ModuleFault::Derated(factor) = fault {
            if !(factor > 0.0 && factor < 1.0) {
                return Err(ArrayError::InvalidConfiguration {
                    reason: format!("derating factor {factor} must lie strictly inside (0, 1)"),
                });
            }
        }
        self.modules[module] = Some(fault);
        Ok(())
    }

    /// Clears the fault of one module (a repair event).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::InvalidConfiguration`] when the index is out of
    /// range.
    pub fn clear_module_fault(&mut self, module: usize) -> Result<(), ArrayError> {
        if module >= self.modules.len() {
            return Err(ArrayError::InvalidConfiguration {
                reason: format!(
                    "repair targets module {module} but the array has {} modules",
                    self.modules.len()
                ),
            });
        }
        self.modules[module] = None;
        Ok(())
    }

    /// Activates (or replaces) a stuck fault on the link between modules
    /// `link` and `link + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::InvalidConfiguration`] when the link index is
    /// out of range.
    pub fn set_switch_fault(&mut self, link: usize, stuck: SwitchStuck) -> Result<(), ArrayError> {
        if link >= self.links.len() {
            return Err(ArrayError::InvalidConfiguration {
                reason: format!(
                    "fault targets link {link} but the array has {} links",
                    self.links.len()
                ),
            });
        }
        self.links[link] = Some(stuck);
        Ok(())
    }

    /// Clears the stuck fault of one link (a repair event).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::InvalidConfiguration`] when the index is out of
    /// range.
    pub fn clear_switch_fault(&mut self, link: usize) -> Result<(), ArrayError> {
        if link >= self.links.len() {
            return Err(ArrayError::InvalidConfiguration {
                reason: format!(
                    "repair targets link {link} but the array has {} links",
                    self.links.len()
                ),
            });
        }
        self.links[link] = None;
        Ok(())
    }

    /// The configuration actually realised by the switch fabric when
    /// `commanded` is applied with this state's stuck switches.
    ///
    /// Stuck-closed links weld their boundary shut (the commanded boundary
    /// at `link + 1` disappears); stuck-open links force a boundary at
    /// `link + 1` (the commanded group splits).  Module faults do not change
    /// the wiring, only the solve.  The result is always a valid
    /// configuration of the same module count.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::InvalidConfiguration`] when the commanded
    /// configuration covers a different module count than this state.
    pub fn effective_configuration(
        &self,
        commanded: &Configuration,
    ) -> Result<Configuration, ArrayError> {
        if commanded.module_count() != self.modules.len() {
            return Err(ArrayError::InvalidConfiguration {
                reason: format!(
                    "commanded configuration covers {} modules but the fault state covers {}",
                    commanded.module_count(),
                    self.modules.len()
                ),
            });
        }
        if self.links.iter().all(Option::is_none) {
            return Ok(commanded.clone());
        }
        let mut boundaries: BTreeSet<usize> = commanded.group_starts().iter().copied().collect();
        for (link, stuck) in self.links.iter().enumerate() {
            match stuck {
                Some(SwitchStuck::Closed) => {
                    boundaries.remove(&(link + 1));
                }
                Some(SwitchStuck::Open) => {
                    boundaries.insert(link + 1);
                }
                None => {}
            }
        }
        boundaries.insert(0);
        Configuration::new(boundaries.into_iter().collect(), commanded.module_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_state_has_no_faults() {
        let state = FaultState::healthy(5);
        assert!(state.is_healthy());
        assert_eq!(state.module_count(), 5);
        assert_eq!(state.link_count(), 4);
        assert_eq!(state.active_fault_count(), 0);
        assert_eq!(state.module_fault(0), None);
        assert_eq!(state.switch_fault(0), None);
    }

    #[test]
    #[should_panic(expected = "at least one module")]
    fn zero_module_state_is_rejected() {
        let _ = FaultState::healthy(0);
    }

    #[test]
    fn setting_and_clearing_faults_round_trips() {
        let mut state = FaultState::healthy(6);
        state.set_module_fault(2, ModuleFault::OpenCircuit).unwrap();
        state
            .set_module_fault(4, ModuleFault::Derated(0.5))
            .unwrap();
        state.set_switch_fault(1, SwitchStuck::Open).unwrap();
        assert!(!state.is_healthy());
        assert_eq!(state.active_fault_count(), 3);
        assert_eq!(state.module_fault(2), Some(ModuleFault::OpenCircuit));
        assert_eq!(state.switch_fault(1), Some(SwitchStuck::Open));
        state.clear_module_fault(2).unwrap();
        state.clear_module_fault(4).unwrap();
        state.clear_switch_fault(1).unwrap();
        assert!(state.is_healthy());
    }

    #[test]
    fn out_of_range_indices_are_rejected() {
        let mut state = FaultState::healthy(4);
        assert!(state.set_module_fault(4, ModuleFault::OpenCircuit).is_err());
        assert!(state.clear_module_fault(4).is_err());
        assert!(state.set_switch_fault(3, SwitchStuck::Open).is_err());
        assert!(state.clear_switch_fault(3).is_err());
    }

    #[test]
    fn invalid_derating_factors_are_rejected() {
        let mut state = FaultState::healthy(4);
        for factor in [0.0, 1.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            assert!(
                state
                    .set_module_fault(0, ModuleFault::Derated(factor))
                    .is_err(),
                "factor {factor} must be rejected"
            );
        }
        assert!(state.set_module_fault(0, ModuleFault::Derated(0.5)).is_ok());
    }

    #[test]
    fn stuck_closed_welds_a_boundary_shut() {
        let mut state = FaultState::healthy(8);
        state.set_switch_fault(3, SwitchStuck::Closed).unwrap(); // boundary at 4
        let commanded = Configuration::uniform(8, 4).unwrap(); // starts 0,2,4,6
        let effective = state.effective_configuration(&commanded).unwrap();
        assert_eq!(effective.group_starts(), &[0, 2, 6]);
    }

    #[test]
    fn stuck_open_splits_a_group() {
        let mut state = FaultState::healthy(8);
        state.set_switch_fault(2, SwitchStuck::Open).unwrap(); // boundary at 3
        let commanded = Configuration::uniform(8, 2).unwrap(); // starts 0,4
        let effective = state.effective_configuration(&commanded).unwrap();
        assert_eq!(effective.group_starts(), &[0, 3, 4]);
    }

    #[test]
    fn stuck_faults_compose_and_first_boundary_survives() {
        let mut state = FaultState::healthy(6);
        // Welding link 0 shut removes boundary 1; forcing link 3 open adds
        // boundary 4; boundary 0 is always retained.
        state.set_switch_fault(0, SwitchStuck::Closed).unwrap();
        state.set_switch_fault(3, SwitchStuck::Open).unwrap();
        let commanded = Configuration::all_series(6).unwrap();
        let effective = state.effective_configuration(&commanded).unwrap();
        assert_eq!(effective.group_starts(), &[0, 2, 3, 4, 5]);
        assert_eq!(effective.module_count(), 6);
    }

    #[test]
    fn healthy_switch_fabric_returns_the_commanded_configuration() {
        let mut state = FaultState::healthy(6);
        state
            .set_module_fault(1, ModuleFault::ShortCircuit)
            .unwrap();
        let commanded = Configuration::uniform(6, 3).unwrap();
        // Module faults never rewire; only switch faults do.
        assert_eq!(
            state.effective_configuration(&commanded).unwrap(),
            commanded
        );
    }

    #[test]
    fn mismatched_module_counts_are_rejected() {
        let state = FaultState::healthy(6);
        let commanded = Configuration::uniform(8, 2).unwrap();
        assert!(state.effective_configuration(&commanded).is_err());
    }

    #[test]
    fn display_renders_fault_kinds() {
        assert_eq!(ModuleFault::OpenCircuit.to_string(), "open-circuit");
        assert_eq!(ModuleFault::ShortCircuit.to_string(), "short-circuit");
        assert_eq!(ModuleFault::Derated(0.5).to_string(), "derated(0.50)");
        assert_eq!(SwitchStuck::Open.to_string(), "stuck-open");
        assert_eq!(SwitchStuck::Closed.to_string(), "stuck-closed");
        assert_eq!(ModuleFault::Derated(0.5).tag(), "derate");
        assert_eq!(ModuleFault::OpenCircuit.tag(), "open");
        assert_eq!(ModuleFault::ShortCircuit.tag(), "short");
    }
}
