//! The ideal (unconstrained) array power `P_ideal`.
//!
//! Fig. 7 of the paper normalises every scheme's output by the power obtained
//! if every module could operate at its own MPP simultaneously — an upper
//! bound no interconnection can exceed because series/parallel wiring forces
//! shared currents/voltages.

use teg_device::TegModule;
use teg_units::{TemperatureDelta, Watts};

use crate::error::ArrayError;

/// Sum of the individual module MPP powers: the paper's `P_ideal`.
///
/// # Errors
///
/// Returns [`ArrayError::EmptyArray`] if `modules` is empty and
/// [`ArrayError::DimensionMismatch`] if the ΔT vector length differs from the
/// module count.
///
/// # Examples
///
/// ```
/// use teg_array::ideal_power;
/// use teg_device::{TegDatasheet, TegModule};
/// use teg_units::TemperatureDelta;
///
/// # fn main() -> Result<(), teg_array::ArrayError> {
/// let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let modules = vec![module; 4];
/// let deltas = vec![TemperatureDelta::new(50.0); 4];
/// let ideal = ideal_power(&modules, &deltas)?;
/// assert!(ideal.value() > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn ideal_power(
    modules: &[TegModule],
    deltas: &[TemperatureDelta],
) -> Result<Watts, ArrayError> {
    if modules.is_empty() {
        return Err(ArrayError::EmptyArray);
    }
    if modules.len() != deltas.len() {
        return Err(ArrayError::DimensionMismatch {
            modules: modules.len(),
            temperatures: deltas.len(),
        });
    }
    Ok(modules
        .iter()
        .zip(deltas.iter())
        .map(|(m, &dt)| m.mpp(dt).power())
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_device::TegDatasheet;

    fn module() -> TegModule {
        TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8())
    }

    #[test]
    fn ideal_power_is_sum_of_module_mpps() {
        let modules = vec![module(); 3];
        let deltas = vec![
            TemperatureDelta::new(40.0),
            TemperatureDelta::new(60.0),
            TemperatureDelta::new(80.0),
        ];
        let expected: f64 = modules
            .iter()
            .zip(deltas.iter())
            .map(|(m, &dt)| m.mpp(dt).power().value())
            .sum();
        let got = ideal_power(&modules, &deltas).unwrap();
        assert!((got.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn errors_on_bad_inputs() {
        assert!(matches!(ideal_power(&[], &[]), Err(ArrayError::EmptyArray)));
        let modules = vec![module(); 2];
        let deltas = vec![TemperatureDelta::new(40.0)];
        assert!(matches!(
            ideal_power(&modules, &deltas),
            Err(ArrayError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn zero_deltas_give_zero_ideal_power() {
        let modules = vec![module(); 5];
        let deltas = vec![TemperatureDelta::ZERO; 5];
        assert_eq!(ideal_power(&modules, &deltas).unwrap(), Watts::ZERO);
    }
}
