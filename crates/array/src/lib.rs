//! Reconfigurable TEG array substrate: switch fabric, configurations,
//! electrical solving and switching-overhead accounting.
//!
//! The paper's architecture (its Fig. 4) places three switches between every
//! pair of adjacent TEG modules — one series switch `S_S,i` and two parallel
//! switches `S_PT,i`/`S_PB,i` — so that the chain of `N` modules can be wired
//! as `n` series-connected groups, each group being a parallel bank of
//! consecutive modules.  A [`Configuration`] names such a partition by the
//! index of each group's first module, exactly like the `C(g_1, …, g_n)`
//! notation of Algorithm 1.
//!
//! [`TegArray`] owns the modules and solves the electrical network for a
//! configuration and a string current: within a parallel group all modules
//! share one voltage and their currents add, while all groups carry the same
//! string current.  Because every module is a linear Thévenin source, each
//! group reduces to a Norton/Thévenin equivalent and the whole array's power
//! is a concave parabola in the string current, so the array MPP has a closed
//! form that the charger's MPPT then tracks.
//!
//! [`SwitchingOverheadModel`] reproduces the paper's Section III-C accounting:
//! every reconfiguration costs a dead time (sensing + computation +
//! reconfiguration + MPPT settling) during which output power is lost, plus a
//! per-toggle switch actuation energy.
//!
//! Hot loops — the reconfiguration algorithms' candidate scans, the
//! simulation session's per-step physics, MPPT perturbation — go through
//! the compiled-plan layer instead of the convenience methods:
//! [`ArrayPlan`] compiles a configuration (+ faults) once, and
//! [`ArraySolver`] evaluates it (or whole batches of candidates) with
//! reusable scratch and zero per-call allocation, bit-identically to the
//! [`TegArray`] methods (see the [`solver`-module docs](ArraySolver)).
//!
//! # Examples
//!
//! ```
//! use teg_array::{Configuration, TegArray};
//! use teg_device::{TegDatasheet, TegModule};
//! use teg_units::TemperatureDelta;
//!
//! # fn main() -> Result<(), teg_array::ArrayError> {
//! let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
//! let array = TegArray::uniform(module, 10);
//! let deltas: Vec<_> = (0..10).map(|i| TemperatureDelta::new(40.0 + 3.0 * i as f64)).collect();
//! let config = Configuration::uniform(10, 5)?;
//! let op = array.maximum_power_point(&config, &deltas)?;
//! assert!(op.power().value() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod configuration;
mod electrical;
mod error;
mod fault;
mod ideal;
mod overhead;
mod solver;
mod switches;

pub use configuration::{Configuration, Group};
pub use electrical::{ArrayOperatingPoint, GroupOperatingPoint, TegArray};
pub use error::ArrayError;
pub use fault::{FaultState, ModuleFault, SwitchStuck};
pub use ideal::ideal_power;
pub use overhead::{OverheadBreakdown, SwitchingOverheadModel};
pub use solver::{ArrayPlan, ArraySolver, GroupSumMemo, SolvedPoint};
pub use switches::{PairLink, SwitchBank};
