//! Switching-overhead accounting (Section III-C of the paper).
//!
//! Every reconfiguration event costs a *timing overhead* — the sum of sensing
//! delay, algorithm computation time, switch reconfiguration delay and MPPT
//! re-settling time — during which the array delivers (almost) no useful
//! power, plus a small actuation energy per toggled switch.  The *energy
//! overhead* of an event is therefore the power that would have been
//! harvested during the dead time plus the actuation cost.  Running EHTR or
//! INOR at a fixed 0.5 s period accumulates thousands of joules of such
//! overhead over an 800 s drive (Table I), which is precisely what DNOR's
//! prediction-gated switching avoids.

use teg_units::{Joules, Seconds, Watts};

/// Breakdown of the overhead charged to one reconfiguration event.
///
/// # Examples
///
/// ```
/// use teg_array::SwitchingOverheadModel;
/// use teg_units::{Seconds, Watts};
///
/// let model = SwitchingOverheadModel::default();
/// let breakdown = model.event(Watts::new(60.0), Seconds::new(0.004), 30);
/// assert!(breakdown.total_energy().value() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadBreakdown {
    dead_time: Seconds,
    lost_energy: Joules,
    actuation_energy: Joules,
}

impl OverheadBreakdown {
    /// Total dead time of the event (sensing + computation + reconfiguration
    /// + MPPT settling).
    #[must_use]
    pub const fn dead_time(&self) -> Seconds {
        self.dead_time
    }

    /// Harvested energy forfeited during the dead time.
    #[must_use]
    pub const fn lost_energy(&self) -> Joules {
        self.lost_energy
    }

    /// Energy spent actuating the toggled switches.
    #[must_use]
    pub const fn actuation_energy(&self) -> Joules {
        self.actuation_energy
    }

    /// Total energy overhead charged to the event.
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.lost_energy + self.actuation_energy
    }
}

/// Parameters of the switching-overhead estimate borrowed from the
/// photovoltaic reconfiguration literature the paper cites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchingOverheadModel {
    sensing_delay: Seconds,
    reconfiguration_delay: Seconds,
    mppt_settling: Seconds,
    per_toggle_energy: Joules,
}

impl SwitchingOverheadModel {
    /// Creates a model from explicit delay and actuation parameters.
    ///
    /// # Panics
    ///
    /// Panics if any delay or the per-toggle energy is negative.
    #[must_use]
    pub fn new(
        sensing_delay: Seconds,
        reconfiguration_delay: Seconds,
        mppt_settling: Seconds,
        per_toggle_energy: Joules,
    ) -> Self {
        assert!(
            sensing_delay.value() >= 0.0,
            "sensing delay must be non-negative"
        );
        assert!(
            reconfiguration_delay.value() >= 0.0,
            "reconfiguration delay must be non-negative"
        );
        assert!(
            mppt_settling.value() >= 0.0,
            "MPPT settling time must be non-negative"
        );
        assert!(
            per_toggle_energy.value() >= 0.0,
            "per-toggle energy must be non-negative"
        );
        Self {
            sensing_delay,
            reconfiguration_delay,
            mppt_settling,
            per_toggle_energy,
        }
    }

    /// Sensor read-out delay before the algorithm can run.
    #[must_use]
    pub const fn sensing_delay(&self) -> Seconds {
        self.sensing_delay
    }

    /// Time for the switch matrix to settle after the new configuration is
    /// commanded.
    #[must_use]
    pub const fn reconfiguration_delay(&self) -> Seconds {
        self.reconfiguration_delay
    }

    /// Time for the charger's MPPT loop to re-converge after the topology
    /// changes.
    #[must_use]
    pub const fn mppt_settling(&self) -> Seconds {
        self.mppt_settling
    }

    /// Gate-drive/relay energy per switch actuation.
    #[must_use]
    pub const fn per_toggle_energy(&self) -> Joules {
        self.per_toggle_energy
    }

    /// Dead time of one event given the measured algorithm computation time.
    #[must_use]
    pub fn dead_time(&self, computation: Seconds) -> Seconds {
        self.sensing_delay
            + computation.max(Seconds::ZERO)
            + self.reconfiguration_delay
            + self.mppt_settling
    }

    /// Full overhead breakdown of one reconfiguration event.
    ///
    /// `current_power` is the array output power around the event (the power
    /// forfeited during the dead time), `computation` the algorithm runtime
    /// and `toggles` the number of switch actuations performed.
    #[must_use]
    pub fn event(
        &self,
        current_power: Watts,
        computation: Seconds,
        toggles: usize,
    ) -> OverheadBreakdown {
        let dead_time = self.dead_time(computation);
        let lost_energy = current_power.max(Watts::ZERO) * dead_time;
        let actuation_energy = self.per_toggle_energy * toggles as f64;
        OverheadBreakdown {
            dead_time,
            lost_energy,
            actuation_energy,
        }
    }

    /// Overhead of an evaluation-only step: the controller sensed and ran the
    /// algorithm but decided *not* to switch, so only the computation blocks
    /// harvesting (no reconfiguration delay, no MPPT re-settling, no switch
    /// actuation).  DNOR pays this reduced cost on most of its periods.
    #[must_use]
    pub fn evaluation_only(&self, current_power: Watts, computation: Seconds) -> OverheadBreakdown {
        let dead_time = self.sensing_delay + computation.max(Seconds::ZERO);
        OverheadBreakdown {
            dead_time,
            lost_energy: current_power.max(Watts::ZERO) * dead_time,
            actuation_energy: Joules::ZERO,
        }
    }
}

impl Default for SwitchingOverheadModel {
    /// Defaults calibrated so a 100-module array harvesting ~50–70 W and
    /// reconfiguring every 0.5 s accumulates on the order of 2 kJ of overhead
    /// over 800 s, matching Table I of the paper.
    fn default() -> Self {
        Self {
            sensing_delay: Seconds::new(0.002),
            reconfiguration_delay: Seconds::new(0.004),
            mppt_settling: Seconds::new(0.004),
            per_toggle_energy: Joules::new(0.0015),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_time_sums_all_components() {
        let model = SwitchingOverheadModel::new(
            Seconds::new(0.002),
            Seconds::new(0.003),
            Seconds::new(0.005),
            Joules::new(0.001),
        );
        let dt = model.dead_time(Seconds::new(0.004));
        assert!((dt.value() - 0.014).abs() < 1e-12);
        // Negative computation times (clock skew) are clamped.
        let dt = model.dead_time(Seconds::new(-1.0));
        assert!((dt.value() - 0.010).abs() < 1e-12);
    }

    #[test]
    fn event_energy_scales_with_power_and_toggles() {
        let model = SwitchingOverheadModel::default();
        let small = model.event(Watts::new(10.0), Seconds::new(0.002), 10);
        let big_power = model.event(Watts::new(100.0), Seconds::new(0.002), 10);
        let big_toggles = model.event(Watts::new(10.0), Seconds::new(0.002), 100);
        assert!(big_power.total_energy() > small.total_energy());
        assert!(big_toggles.total_energy() > small.total_energy());
        assert!(big_toggles.actuation_energy() > small.actuation_energy());
        assert_eq!(big_power.actuation_energy(), small.actuation_energy());
    }

    #[test]
    fn evaluation_only_is_cheaper_than_switching() {
        let model = SwitchingOverheadModel::default();
        let power = Watts::new(60.0);
        let compute = Seconds::new(0.003);
        let eval = model.evaluation_only(power, compute);
        let switch = model.event(power, compute, 30);
        assert!(eval.total_energy() < switch.total_energy());
        assert_eq!(eval.actuation_energy(), Joules::ZERO);
        assert!(eval.dead_time() < switch.dead_time());
    }

    #[test]
    fn default_magnitudes_match_table_one_scale() {
        // 1600 events (0.5 s period over 800 s) at ~60 W and ~4 ms compute
        // should land in the low thousands of joules, as EHTR/INOR do in
        // Table I.
        let model = SwitchingOverheadModel::default();
        let per_event = model
            .event(Watts::new(60.0), Seconds::new(0.004), 20)
            .total_energy();
        let total = per_event.value() * 1600.0;
        assert!(
            total > 800.0 && total < 5000.0,
            "800 s overhead {total} J is out of range"
        );
    }

    #[test]
    fn zero_power_events_only_cost_actuation() {
        let model = SwitchingOverheadModel::default();
        let b = model.event(Watts::ZERO, Seconds::new(0.002), 4);
        assert_eq!(b.lost_energy(), Joules::ZERO);
        assert!((b.total_energy().value() - 4.0 * model.per_toggle_energy().value()).abs() < 1e-12);
        // Negative power (sensor glitch) is clamped rather than crediting
        // energy back.
        let b = model.event(Watts::new(-5.0), Seconds::new(0.002), 0);
        assert_eq!(b.total_energy(), Joules::ZERO);
    }

    #[test]
    #[should_panic(expected = "per-toggle energy must be non-negative")]
    fn negative_parameters_are_rejected() {
        let _ = SwitchingOverheadModel::new(
            Seconds::new(0.001),
            Seconds::new(0.001),
            Seconds::new(0.001),
            Joules::new(-1.0),
        );
    }

    #[test]
    fn accessors_expose_parameters() {
        let model = SwitchingOverheadModel::default();
        assert!(model.sensing_delay().value() > 0.0);
        assert!(model.reconfiguration_delay().value() > 0.0);
        assert!(model.mppt_settling().value() > 0.0);
        assert!(model.per_toggle_energy().value() > 0.0);
    }
}
