//! Compiled solve plans and the reusable, batched electrical solver.
//!
//! The reconfiguration algorithms are candidate scans: INOR/EHTR evaluate
//! every feasible group count and DNOR additionally integrates predicted
//! power over a forecast horizon.  Routing each candidate through
//! [`TegArray::mpp_power`] re-validates the configuration, re-walks the
//! module list and re-derives every module's Seebeck EMF and internal
//! conductance from scratch — twice (once for the optimum current, once for
//! the operating point).  This module splits that work by how often it
//! changes:
//!
//! * [`ArrayPlan`] — a [`Configuration`] (+ optional [`FaultState`])
//!   **compiled once** into flat structure-of-arrays form: group offsets
//!   plus per-module fault constants (connected flag, EMF derating factor,
//!   short flag).  Validation happens at compile time, never per solve.
//! * [`ArraySolver`] — caller-owned scratch buffers plus the one solve
//!   kernel.  After the buffers warm up, every solve is allocation-free.
//!   [`ArraySolver::load`] derives the per-module EMF/conductance terms for
//!   one ΔT vector **once**, and [`ArraySolver::evaluate_candidates`]
//!   amortises them across any number of candidate configurations.
//!
//! The kernel performs the same IEEE-754 operations in the same order as
//! the original per-call path, so results are **bit-identical** — the
//! golden traces and the property suite below pin this down.
//!
//! # When to use which API
//!
//! * Scanning many candidate partitions at one ΔT vector (a reconfiguration
//!   inner loop): [`ArraySolver::load`] + [`ArraySolver::evaluate_candidates`]
//!   (or per-candidate [`ArraySolver::mpp_power`]).
//! * Re-solving one fixed wiring as temperatures evolve (a simulation
//!   session, an MPPT loop): compile an [`ArrayPlan`] once, call
//!   [`ArraySolver::solve_mpp`] / [`ArraySolver::solve_at`] per step.
//! * One-off solves where convenience beats throughput: the original
//!   [`TegArray`] methods, which are now thin wrappers over this kernel.
//!
//! # Examples
//!
//! ```
//! use teg_array::{ArrayPlan, ArraySolver, Configuration, TegArray};
//! use teg_device::{TegDatasheet, TegModule};
//! use teg_units::TemperatureDelta;
//!
//! # fn main() -> Result<(), teg_array::ArrayError> {
//! let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
//! let array = TegArray::uniform(module, 12);
//! let deltas: Vec<_> = (0..12).map(|i| TemperatureDelta::new(70.0 - 2.0 * i as f64)).collect();
//!
//! // Batched candidate scan: module terms derived once, shared by all.
//! let candidates: Vec<_> = (1..=6)
//!     .map(|n| Configuration::uniform(12, n).expect("valid"))
//!     .collect();
//! let mut solver = ArraySolver::new();
//! let mut powers = Vec::new();
//! solver.load(&array, &deltas, None)?;
//! solver.evaluate_candidates(&candidates, &mut powers)?;
//! assert_eq!(powers.len(), 6);
//!
//! // Compiled plan: validate once, re-solve as temperatures change.
//! let plan = ArrayPlan::compile(&array, &candidates[3], None)?;
//! let point = solver.solve_mpp(&array, &plan, &deltas)?;
//! assert_eq!(point.power(), powers[3]);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use teg_units::{Amps, KernelMode, TemperatureDelta, Volts, Watts};

use crate::configuration::Configuration;
use crate::electrical::{GroupOperatingPoint, TegArray};
use crate::error::ArrayError;
use crate::fault::{FaultState, ModuleFault};

/// A [`Configuration`] (+ optional [`FaultState`]) compiled into the flat
/// form the solve kernel consumes: group offsets plus per-module fault
/// constants, validated once at compile time.
///
/// Plans are plain data (`Clone + PartialEq`, no borrows), so a simulation
/// session can cache one per wiring and re-solve it against every new ΔT
/// row without re-validating anything.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayPlan {
    module_count: usize,
    /// Group boundaries as `group_count + 1` offsets: group `j` covers
    /// modules `offsets[j]..offsets[j + 1]`.
    offsets: Vec<usize>,
    /// Per module: `false` when an open-circuit fault removes the module
    /// from its group's Norton sums.
    connected: Vec<bool>,
    /// Per module: the EMF derating factor (1.0 when healthy).
    emf_factor: Vec<f64>,
    /// Per module: `true` when a short-circuit fault pins the enclosing
    /// group to zero volts.
    short: Vec<bool>,
}

impl ArrayPlan {
    /// Compiles a configuration (and optional fault state) for an array.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::InvalidConfiguration`] when the configuration
    /// or the fault state covers a different module count than the array.
    pub fn compile(
        array: &TegArray,
        config: &Configuration,
        faults: Option<&FaultState>,
    ) -> Result<Self, ArrayError> {
        let module_count = array.len();
        if config.module_count() != module_count {
            return Err(ArrayError::InvalidConfiguration {
                reason: format!(
                    "configuration covers {} modules but the array has {module_count}",
                    config.module_count()
                ),
            });
        }
        if let Some(faults) = faults {
            if faults.module_count() != module_count {
                return Err(ArrayError::InvalidConfiguration {
                    reason: format!(
                        "fault state covers {} modules but the array has {module_count}",
                        faults.module_count()
                    ),
                });
            }
        }
        let mut offsets = Vec::with_capacity(config.group_count() + 1);
        offsets.extend_from_slice(config.group_starts());
        offsets.push(module_count);
        let mut connected = vec![true; module_count];
        let mut emf_factor = vec![1.0; module_count];
        let mut short = vec![false; module_count];
        if let Some(faults) = faults {
            for i in 0..module_count {
                match faults.module_fault(i) {
                    Some(ModuleFault::OpenCircuit) => connected[i] = false,
                    Some(ModuleFault::ShortCircuit) => short[i] = true,
                    Some(ModuleFault::Derated(factor)) => emf_factor[i] = factor,
                    None => {}
                }
            }
        }
        Ok(Self {
            module_count,
            offsets,
            connected,
            emf_factor,
            short,
        })
    }

    /// Number of modules the plan covers.
    #[must_use]
    pub const fn module_count(&self) -> usize {
        self.module_count
    }

    /// Number of series groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// The solved array state one kernel invocation produces: string current,
/// terminal voltage and delivered power.  Per-group detail stays in the
/// solver's scratch ([`ArraySolver::group_points`]) so the summary is
/// `Copy` and allocation-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolvedPoint {
    current: Amps,
    voltage: Volts,
    power: Watts,
}

impl SolvedPoint {
    /// String current flowing through every group.
    #[must_use]
    pub const fn current(&self) -> Amps {
        self.current
    }

    /// Total array terminal voltage.
    #[must_use]
    pub const fn voltage(&self) -> Volts {
        self.voltage
    }

    /// Total delivered power.
    #[must_use]
    pub const fn power(&self) -> Watts {
        self.power
    }
}

/// Every `load`/`load_plan`/`set_mode` stamps the solver with a fresh value
/// from this process-wide counter, so a [`GroupSumMemo`] can tell "same
/// terms, same lane" apart from "anything changed" — even across distinct
/// solver instances sharing one memo.
static LOAD_GENERATION: AtomicU64 = AtomicU64::new(1);

fn next_generation() -> u64 {
    LOAD_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// An old/new incremental table for search-style candidate scans: memoised
/// per-range group sums `(S_g, G_g, shorted)` keyed by the half-open module
/// range `(start, end)`.
///
/// Population-based searches (the ACO scheme) evaluate many partitions that
/// differ from the incumbent in only a few boundaries, so most of their
/// group ranges repeat across ants and generations.  The per-candidate MPP
/// cost is dominated by the O(modules) range accumulation;
/// [`ArraySolver::evaluate_candidates_with_memo`] reuses a cached sum for
/// every range it has already accumulated under the current load generation
/// and kernel lane, and falls back to the lane's own range kernel on a miss
/// — cached or not, the value is produced by the same function, so results
/// are **bit-identical** to [`ArraySolver::evaluate_candidates`] in both
/// [`KernelMode`] lanes.
///
/// The memo self-invalidates: [`ArraySolver::load`],
/// [`ArraySolver::set_mode`] and plan solves stamp the solver with a fresh
/// generation, and a memo whose generation disagrees is cleared before use.
/// Stale reuse is therefore impossible, even when one memo is passed
/// between different solvers.
#[derive(Debug, Clone, Default)]
pub struct GroupSumMemo {
    generation: u64,
    entries: HashMap<(usize, usize), (f64, f64, bool)>,
    hits: u64,
    computed: u64,
}

impl GroupSumMemo {
    /// Creates an empty memo; it binds to a solver's loaded terms on first
    /// use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Range lookups served from the table since construction (cumulative
    /// across invalidations).
    #[must_use]
    pub const fn hits(&self) -> u64 {
        self.hits
    }

    /// Range sums computed and inserted since construction (cumulative
    /// across invalidations).
    #[must_use]
    pub const fn computed(&self) -> u64 {
        self.computed
    }

    /// Number of distinct ranges currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table currently caches nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all cached ranges (the statistics counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.generation = 0;
    }
}

/// The reusable electrical solve kernel with caller-owned scratch.
///
/// All buffers grow to the largest array solved and are then recycled:
/// after warm-up no method allocates.  A solver is cheap to create and
/// carries no observable state beyond its [`KernelMode`] — otherwise only
/// scratch — so cloning or defaulting one anywhere is always correct.
///
/// # Kernel modes
///
/// The solver defaults to [`KernelMode::BitExact`]: group sums run in
/// module order with the reference rounding, matching the legacy per-call
/// path bit for bit.  [`KernelMode::Fast`] (via [`ArraySolver::with_mode`]
/// or [`ArraySolver::set_mode`]) switches the group accumulation to a
/// branch-free 4-wide chunked sum — same mathematics, reordered rounding —
/// whose results agree with the bit-exact lane within the tolerance the
/// equivalence suite pins (see `TESTING.md`).
#[derive(Debug, Clone, Default)]
pub struct ArraySolver {
    mode: KernelMode,
    // Per-module terms of the loaded ΔT vector (zero while nothing loaded).
    loaded_modules: usize,
    // Stamp of the currently loaded terms + lane; see `LOAD_GENERATION`.
    load_generation: u64,
    g: Vec<f64>,
    ge: Vec<f64>,
    connected: Vec<bool>,
    short: Vec<bool>,
    // Per-group Norton sums of the most recent evaluation.
    group_s: Vec<f64>,
    group_g: Vec<f64>,
    group_shorted: Vec<bool>,
    // Per-group operating points of the most recent full solve.
    groups: Vec<GroupOperatingPoint>,
}

impl ArraySolver {
    /// Creates an empty solver; buffers are sized lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty solver running the given kernel mode.
    #[must_use]
    pub fn with_mode(mode: KernelMode) -> Self {
        Self {
            mode,
            ..Self::default()
        }
    }

    /// The kernel mode this solver runs.
    #[must_use]
    pub const fn mode(&self) -> KernelMode {
        self.mode
    }

    /// Switches the kernel mode (scratch and loaded terms are untouched;
    /// only subsequent accumulations change lane).
    pub fn set_mode(&mut self, mode: KernelMode) {
        // The two lanes round differently, so cached range sums from one
        // lane must never satisfy lookups in the other.
        self.load_generation = next_generation();
        self.mode = mode;
    }

    /// Derives the per-module EMF/conductance terms for one ΔT vector and
    /// optional fault state, to be shared by every subsequent candidate
    /// evaluation ([`ArraySolver::mpp`], [`ArraySolver::mpp_power`],
    /// [`ArraySolver::operate_at`], [`ArraySolver::evaluate_candidates`]).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::DimensionMismatch`] when the ΔT vector length
    /// does not match the array, or [`ArrayError::InvalidConfiguration`]
    /// when the fault state covers a different module count.
    pub fn load(
        &mut self,
        array: &TegArray,
        deltas: &[TemperatureDelta],
        faults: Option<&FaultState>,
    ) -> Result<(), ArrayError> {
        let n = array.len();
        if deltas.len() != n {
            return Err(ArrayError::DimensionMismatch {
                modules: n,
                temperatures: deltas.len(),
            });
        }
        if let Some(faults) = faults {
            if faults.module_count() != n {
                return Err(ArrayError::InvalidConfiguration {
                    reason: format!(
                        "fault state covers {} modules but the array has {n}",
                        faults.module_count()
                    ),
                });
            }
        }
        self.reset_terms(n);
        // Parallel indexing of the scratch arrays and the ΔT vector.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            self.short[i] =
                faults.is_some_and(|f| f.module_fault(i) == Some(ModuleFault::ShortCircuit));
            match array.module_source(i, deltas[i], faults) {
                Some((g, e)) => {
                    self.g[i] = g;
                    self.ge[i] = g * e;
                    self.connected[i] = true;
                }
                None => self.connected[i] = false,
            }
        }
        Ok(())
    }

    /// Loads per-module terms through a compiled plan's fault constants.
    fn load_plan(&mut self, array: &TegArray, plan: &ArrayPlan, deltas: &[TemperatureDelta]) {
        let n = plan.module_count;
        self.reset_terms(n);
        let modules = array.modules();
        for i in 0..n {
            self.short[i] = plan.short[i];
            if !plan.connected[i] {
                self.connected[i] = false;
                continue;
            }
            let g = modules[i].internal_conductance(deltas[i]);
            // Multiplying a healthy module's EMF by 1.0 is exact, so the
            // branch-free form matches the fault-aware path bit for bit.
            let e = modules[i].open_circuit_voltage(deltas[i]).value() * plan.emf_factor[i];
            self.g[i] = g;
            self.ge[i] = g * e;
            self.connected[i] = true;
        }
        self.loaded_modules = n;
    }

    fn reset_terms(&mut self, n: usize) {
        self.load_generation = next_generation();
        self.loaded_modules = n;
        self.g.clear();
        self.g.resize(n, 0.0);
        self.ge.clear();
        self.ge.resize(n, 0.0);
        self.connected.clear();
        self.connected.resize(n, true);
        self.short.clear();
        self.short.resize(n, false);
    }

    /// Analytic maximum power point of one candidate against the loaded
    /// terms (see [`TegArray::maximum_power_point`] for the electrical
    /// semantics; results are bit-identical).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::InvalidConfiguration`] when no terms are
    /// loaded or the candidate covers a different module count.
    pub fn mpp(&mut self, candidate: &Configuration) -> Result<SolvedPoint, ArrayError> {
        self.check_candidate(candidate)?;
        Ok(self.mpp_validated(candidate))
    }

    /// [`ArraySolver::mpp`] for a candidate that has already passed
    /// [`ArraySolver::check_candidate`] — the infallible inner scan.
    fn mpp_validated(&mut self, candidate: &Configuration) -> SolvedPoint {
        let n = candidate.group_count();
        if !self.accumulate_groups(candidate.group_starts(), self.loaded_modules) {
            return self.zero_point(n);
        }
        self.mpp_from_groups(n)
    }

    /// Total MPP power of one candidate against the loaded terms.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ArraySolver::mpp`].
    pub fn mpp_power(&mut self, candidate: &Configuration) -> Result<Watts, ArrayError> {
        Ok(self.mpp(candidate)?.power())
    }

    /// Solves one candidate at an imposed string current against the loaded
    /// terms (see [`TegArray::operate_at`]; results are bit-identical).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ArraySolver::mpp`].
    pub fn operate_at(
        &mut self,
        candidate: &Configuration,
        current: Amps,
    ) -> Result<SolvedPoint, ArrayError> {
        self.check_candidate(candidate)?;
        let n = candidate.group_count();
        if !self.accumulate_groups(candidate.group_starts(), self.loaded_modules) {
            return Ok(self.zero_point(n));
        }
        Ok(self.operate_from_groups(n, current))
    }

    /// Evaluates the MPP power of every candidate against the loaded terms,
    /// pushing one result per candidate into `out` (cleared first).  The
    /// per-module terms are computed once by [`ArraySolver::load`] and
    /// shared — the amortisation the reconfiguration scans rely on.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ArraySolver::mpp`], but every candidate is
    /// validated **up front**: on error `out` is left untouched (never
    /// partially filled), and the scan itself runs branch-free with no
    /// per-candidate early exit.
    pub fn evaluate_candidates(
        &mut self,
        candidates: &[Configuration],
        out: &mut Vec<Watts>,
    ) -> Result<(), ArrayError> {
        for candidate in candidates {
            self.check_candidate(candidate)?;
        }
        out.clear();
        out.reserve(candidates.len());
        for candidate in candidates {
            let point = self.mpp_validated(candidate);
            out.push(point.power());
        }
        Ok(())
    }

    /// [`ArraySolver::evaluate_candidates`] with an old/new incremental
    /// table: per-range group sums already accumulated under the current
    /// load generation are reused instead of re-summed, so candidates that
    /// share ranges with earlier ones (a search population mutating a few
    /// boundaries of an incumbent) cost O(groups) hash lookups instead of
    /// O(modules) arithmetic.  Results are bit-identical to the unmemoised
    /// scan in both kernel lanes — the cached value is whatever the lane's
    /// own range kernel produced on first sight.
    ///
    /// A memo bound to different loaded terms (or a different lane) is
    /// cleared automatically before use; pass the same memo across calls
    /// between two `load`s to accumulate reuse.
    ///
    /// # Errors
    ///
    /// Same contract as [`ArraySolver::evaluate_candidates`]: every
    /// candidate is validated up front and `out` is never partially filled.
    pub fn evaluate_candidates_with_memo(
        &mut self,
        candidates: &[Configuration],
        memo: &mut GroupSumMemo,
        out: &mut Vec<Watts>,
    ) -> Result<(), ArrayError> {
        for candidate in candidates {
            self.check_candidate(candidate)?;
        }
        if memo.generation != self.load_generation {
            memo.entries.clear();
            memo.generation = self.load_generation;
        }
        out.clear();
        out.reserve(candidates.len());
        for candidate in candidates {
            let n = candidate.group_count();
            let point =
                if self.accumulate_groups_memo(candidate.group_starts(), self.loaded_modules, memo)
                {
                    self.mpp_from_groups(n)
                } else {
                    self.zero_point(n)
                };
            out.push(point.power());
        }
        Ok(())
    }

    /// Analytic maximum power point of a compiled plan at one ΔT vector.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::InvalidConfiguration`] when the plan was
    /// compiled for a different array size, or
    /// [`ArrayError::DimensionMismatch`] when the ΔT vector disagrees.
    pub fn solve_mpp(
        &mut self,
        array: &TegArray,
        plan: &ArrayPlan,
        deltas: &[TemperatureDelta],
    ) -> Result<SolvedPoint, ArrayError> {
        self.check_plan(array, plan, deltas)?;
        self.load_plan(array, plan, deltas);
        let n = plan.group_count();
        if !self.accumulate_plan_groups(plan) {
            return Ok(self.zero_point(n));
        }
        Ok(self.mpp_from_groups(n))
    }

    /// Solves a compiled plan at an imposed string current.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ArraySolver::solve_mpp`].
    pub fn solve_at(
        &mut self,
        array: &TegArray,
        plan: &ArrayPlan,
        deltas: &[TemperatureDelta],
        current: Amps,
    ) -> Result<SolvedPoint, ArrayError> {
        self.check_plan(array, plan, deltas)?;
        self.load_plan(array, plan, deltas);
        let n = plan.group_count();
        if !self.accumulate_plan_groups(plan) {
            return Ok(self.zero_point(n));
        }
        Ok(self.operate_from_groups(n, current))
    }

    /// Per-group operating points of the most recent full solve, in series
    /// order (valid until the next solver call).
    #[must_use]
    pub fn group_points(&self) -> &[GroupOperatingPoint] {
        &self.groups
    }

    fn check_candidate(&self, candidate: &Configuration) -> Result<(), ArrayError> {
        if self.loaded_modules == 0 {
            return Err(ArrayError::InvalidConfiguration {
                reason: "solver has no ΔT terms loaded; call ArraySolver::load first".to_owned(),
            });
        }
        if candidate.module_count() != self.loaded_modules {
            return Err(ArrayError::InvalidConfiguration {
                reason: format!(
                    "configuration covers {} modules but the array has {}",
                    candidate.module_count(),
                    self.loaded_modules
                ),
            });
        }
        Ok(())
    }

    fn check_plan(
        &self,
        array: &TegArray,
        plan: &ArrayPlan,
        deltas: &[TemperatureDelta],
    ) -> Result<(), ArrayError> {
        if plan.module_count != array.len() {
            return Err(ArrayError::InvalidConfiguration {
                reason: format!(
                    "plan covers {} modules but the array has {}",
                    plan.module_count,
                    array.len()
                ),
            });
        }
        if deltas.len() != plan.module_count {
            return Err(ArrayError::DimensionMismatch {
                modules: plan.module_count,
                temperatures: deltas.len(),
            });
        }
        Ok(())
    }

    /// Accumulates the per-group Norton sums `S_g = Σ G·E`, `G_g = Σ G` and
    /// short flags for the partition described by `starts`.  Returns
    /// `false` when a fully open, non-shorted group breaks the string (the
    /// caller reports the dead operating point).
    fn accumulate_groups(&mut self, starts: &[usize], module_count: usize) -> bool {
        let n = starts.len();
        self.group_s.clear();
        self.group_g.clear();
        self.group_shorted.clear();
        let mut broken = false;
        let fast = self.mode.is_fast();
        for j in 0..n {
            let start = starts[j];
            let end = starts.get(j + 1).copied().unwrap_or(module_count);
            let (s_g, g_g, shorted) = if fast {
                self.sum_range_fast(start, end)
            } else {
                self.sum_range(start, end)
            };
            broken |= g_g <= 0.0 && !shorted;
            self.group_s.push(s_g);
            self.group_g.push(g_g);
            self.group_shorted.push(shorted);
        }
        !broken
    }

    /// [`ArraySolver::accumulate_groups`] through a [`GroupSumMemo`]: each
    /// range sum is looked up first and computed (by the active lane's own
    /// kernel) only on a miss, so repeated ranges across a candidate
    /// population are accumulated exactly once.
    fn accumulate_groups_memo(
        &mut self,
        starts: &[usize],
        module_count: usize,
        memo: &mut GroupSumMemo,
    ) -> bool {
        let n = starts.len();
        self.group_s.clear();
        self.group_g.clear();
        self.group_shorted.clear();
        let mut broken = false;
        let fast = self.mode.is_fast();
        for j in 0..n {
            let start = starts[j];
            let end = starts.get(j + 1).copied().unwrap_or(module_count);
            let (s_g, g_g, shorted) = match memo.entries.get(&(start, end)) {
                Some(&sums) => {
                    memo.hits += 1;
                    sums
                }
                None => {
                    let sums = if fast {
                        self.sum_range_fast(start, end)
                    } else {
                        self.sum_range(start, end)
                    };
                    memo.computed += 1;
                    memo.entries.insert((start, end), sums);
                    sums
                }
            };
            broken |= g_g <= 0.0 && !shorted;
            self.group_s.push(s_g);
            self.group_g.push(g_g);
            self.group_shorted.push(shorted);
        }
        !broken
    }

    /// [`ArraySolver::accumulate_groups`] over a plan's precompiled offsets
    /// (the offsets minus their trailing sentinel are exactly the group
    /// starts).
    fn accumulate_plan_groups(&mut self, plan: &ArrayPlan) -> bool {
        self.accumulate_groups(&plan.offsets[..plan.group_count()], plan.module_count)
    }

    /// Sums the loaded terms over `start..end` in module order — the same
    /// order (and therefore the same rounding) as the legacy per-call path.
    fn sum_range(&self, start: usize, end: usize) -> (f64, f64, bool) {
        let mut s_g = 0.0;
        let mut g_g = 0.0;
        let mut shorted = false;
        for i in start..end {
            shorted |= self.short[i];
            if !self.connected[i] {
                continue;
            }
            s_g += self.ge[i];
            g_g += self.g[i];
        }
        (s_g, g_g, shorted)
    }

    /// [`KernelMode::Fast`] lane of [`ArraySolver::sum_range`]: branch-free
    /// 4-wide chunked sums.
    ///
    /// Disconnected modules hold zeroed terms (`reset_terms` zero-fills and
    /// `load`/`load_plan` never write them), so the `connected` branch can
    /// be dropped: adding `0.0` to a finite accumulator is exact.  Four
    /// independent accumulators break the FP-add latency chain; the final
    /// pairwise combine reorders rounding relative to the in-order scan,
    /// which is why this lane is tolerance-checked rather than bit-exact.
    /// The string-broken predicate (`G_g <= 0.0` with no short) is
    /// unaffected: a group with no connected modules sums to exactly `0.0`
    /// in both lanes.
    fn sum_range_fast(&self, start: usize, end: usize) -> (f64, f64, bool) {
        let ge = &self.ge[start..end];
        let g = &self.g[start..end];
        let mut s = [0.0_f64; 4];
        let mut c = [0.0_f64; 4];
        let mut ge_chunks = ge.chunks_exact(4);
        let mut g_chunks = g.chunks_exact(4);
        for (e4, g4) in (&mut ge_chunks).zip(&mut g_chunks) {
            s[0] += e4[0];
            s[1] += e4[1];
            s[2] += e4[2];
            s[3] += e4[3];
            c[0] += g4[0];
            c[1] += g4[1];
            c[2] += g4[2];
            c[3] += g4[3];
        }
        for (&e, &gv) in ge_chunks.remainder().iter().zip(g_chunks.remainder()) {
            s[0] += e;
            c[0] += gv;
        }
        let s_g = (s[0] + s[1]) + (s[2] + s[3]);
        let g_g = (c[0] + c[1]) + (c[2] + c[3]);
        let shorted = self.short[start..end].iter().any(|&b| b);
        (s_g, g_g, shorted)
    }

    /// Derives the optimum string current from the accumulated group sums
    /// and solves the operating point there.
    fn mpp_from_groups(&mut self, n: usize) -> SolvedPoint {
        let mut sum_voc = 0.0; // Σ_g S_g / G_g  (total open-circuit voltage)
        let mut sum_res = 0.0; // Σ_g 1 / G_g    (total series resistance)
        for j in 0..n {
            if self.group_shorted[j] {
                continue; // zero volts, zero resistance — drops out of the MPP sums
            }
            sum_voc += self.group_s[j] / self.group_g[j];
            sum_res += 1.0 / self.group_g[j];
        }
        // `sum_res == 0` means every group is shorted: the array is a dead
        // short and delivers no power at any current.
        let optimum = if sum_res > 0.0 {
            (sum_voc / (2.0 * sum_res)).max(0.0)
        } else {
            0.0
        };
        self.operate_from_groups(n, Amps::new(optimum))
    }

    /// Solves the operating point at an imposed current from the
    /// accumulated group sums.
    fn operate_from_groups(&mut self, n: usize, current: Amps) -> SolvedPoint {
        self.groups.clear();
        let mut total_voltage = Volts::ZERO;
        for j in 0..n {
            let voltage = if self.group_shorted[j] {
                Volts::ZERO
            } else {
                Volts::new((self.group_s[j] - current.value()) / self.group_g[j])
            };
            let power = voltage * current;
            total_voltage += voltage;
            self.groups.push(GroupOperatingPoint::new(voltage, power));
        }
        SolvedPoint {
            current,
            voltage: total_voltage,
            power: total_voltage * current,
        }
    }

    /// The dead operating point of a string broken by an all-open group.
    fn zero_point(&mut self, n: usize) -> SolvedPoint {
        self.groups.clear();
        self.groups
            .resize(n, GroupOperatingPoint::new(Volts::ZERO, Watts::ZERO));
        SolvedPoint {
            current: Amps::ZERO,
            voltage: Volts::ZERO,
            power: Watts::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use teg_device::{TegDatasheet, TegModule};

    fn module() -> TegModule {
        TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8())
    }

    fn gradient_deltas(n: usize, base: f64, span: f64) -> Vec<TemperatureDelta> {
        (0..n)
            .map(|i| TemperatureDelta::new(base + span * i as f64 / n as f64))
            .collect()
    }

    /// Deterministically derives a fault pattern from a bit mask: two bits
    /// per module select healthy / open / short / derated (the same scheme
    /// the electrical proptests use).
    fn fault_pattern(n: usize, mask: u64) -> FaultState {
        let mut faults = FaultState::healthy(n);
        for i in 0..n {
            match (mask >> ((2 * i) % 64)) & 0b11 {
                1 => faults
                    .set_module_fault(i, ModuleFault::OpenCircuit)
                    .unwrap(),
                2 => faults
                    .set_module_fault(i, ModuleFault::ShortCircuit)
                    .unwrap(),
                3 => faults
                    .set_module_fault(i, ModuleFault::Derated(0.6))
                    .unwrap(),
                _ => {}
            }
        }
        faults
    }

    /// Derives an arbitrary (but always valid) partition from a bit mask:
    /// bit `i − 1` set ⇒ a group boundary before module `i`.
    fn partition_from_mask(n: usize, mask: u64) -> Configuration {
        let mut starts = vec![0usize];
        for i in 1..n {
            if (mask >> ((i - 1) % 64)) & 1 == 1 {
                starts.push(i);
            }
        }
        Configuration::new(starts, n).expect("mask-derived starts are strictly increasing")
    }

    #[test]
    fn plan_compile_validates_module_counts() {
        let array = TegArray::uniform(module(), 6);
        let config = Configuration::uniform(8, 2).unwrap();
        assert!(ArrayPlan::compile(&array, &config, None).is_err());
        let config = Configuration::uniform(6, 2).unwrap();
        let faults = FaultState::healthy(5);
        assert!(ArrayPlan::compile(&array, &config, Some(&faults)).is_err());
        let plan = ArrayPlan::compile(&array, &config, None).unwrap();
        assert_eq!(plan.module_count(), 6);
        assert_eq!(plan.group_count(), 2);
    }

    #[test]
    fn solver_rejects_unloaded_and_mismatched_candidates() {
        let array = TegArray::uniform(module(), 6);
        let deltas = gradient_deltas(6, 40.0, 20.0);
        let config = Configuration::uniform(6, 2).unwrap();
        let mut solver = ArraySolver::new();
        assert!(solver.mpp(&config).is_err());
        solver.load(&array, &deltas, None).unwrap();
        let wrong = Configuration::uniform(8, 2).unwrap();
        assert!(solver.mpp(&wrong).is_err());
        assert!(solver.operate_at(&wrong, Amps::new(0.1)).is_err());
        let short = gradient_deltas(5, 40.0, 20.0);
        assert!(solver.load(&array, &short, None).is_err());
        let faults = FaultState::healthy(5);
        assert!(solver.load(&array, &deltas, Some(&faults)).is_err());
    }

    #[test]
    fn plan_solves_match_the_legacy_methods_bitwise() {
        let array = TegArray::uniform(module(), 9);
        let deltas = gradient_deltas(9, 35.0, 30.0);
        let config = Configuration::new(vec![0, 2, 5], 9).unwrap();
        let plan = ArrayPlan::compile(&array, &config, None).unwrap();
        let mut solver = ArraySolver::new();

        let legacy = array.maximum_power_point(&config, &deltas).unwrap();
        let point = solver.solve_mpp(&array, &plan, &deltas).unwrap();
        assert_eq!(point.current(), legacy.current());
        assert_eq!(point.voltage(), legacy.voltage());
        assert_eq!(point.power(), legacy.power());
        assert_eq!(solver.group_points(), legacy.groups());

        let legacy = array.operate_at(&config, &deltas, Amps::new(0.42)).unwrap();
        let point = solver
            .solve_at(&array, &plan, &deltas, Amps::new(0.42))
            .unwrap();
        assert_eq!(point.voltage(), legacy.voltage());
        assert_eq!(point.power(), legacy.power());
        assert_eq!(solver.group_points(), legacy.groups());
    }

    #[test]
    fn plan_solves_validate_dimensions() {
        let array = TegArray::uniform(module(), 6);
        let other = TegArray::uniform(module(), 8);
        let config = Configuration::uniform(6, 3).unwrap();
        let plan = ArrayPlan::compile(&array, &config, None).unwrap();
        let mut solver = ArraySolver::new();
        let deltas = gradient_deltas(6, 40.0, 10.0);
        assert!(solver.solve_mpp(&other, &plan, &deltas).is_err());
        let short = gradient_deltas(5, 40.0, 10.0);
        assert!(solver.solve_mpp(&array, &plan, &short).is_err());
        assert!(solver
            .solve_at(&array, &plan, &short, Amps::new(0.1))
            .is_err());
    }

    #[test]
    fn batch_results_arrive_in_candidate_order() {
        let array = TegArray::uniform(module(), 12);
        let deltas = gradient_deltas(12, 30.0, 35.0);
        let candidates: Vec<_> = (1..=12)
            .map(|n| Configuration::uniform(12, n).unwrap())
            .collect();
        let mut solver = ArraySolver::new();
        solver.load(&array, &deltas, None).unwrap();
        let mut powers = Vec::new();
        solver
            .evaluate_candidates(&candidates, &mut powers)
            .unwrap();
        assert_eq!(powers.len(), candidates.len());
        for (candidate, power) in candidates.iter().zip(&powers) {
            assert_eq!(*power, array.mpp_power(candidate, &deltas).unwrap());
        }
        // The output buffer is cleared on reuse, not appended to.
        solver
            .evaluate_candidates(&candidates[..3], &mut powers)
            .unwrap();
        assert_eq!(powers.len(), 3);
    }

    #[test]
    fn default_mode_is_bit_exact_and_switchable() {
        let solver = ArraySolver::new();
        assert_eq!(solver.mode(), KernelMode::BitExact);
        let mut solver = ArraySolver::with_mode(KernelMode::Fast);
        assert_eq!(solver.mode(), KernelMode::Fast);
        solver.set_mode(KernelMode::BitExact);
        assert_eq!(solver.mode(), KernelMode::BitExact);
    }

    #[test]
    fn invalid_candidate_leaves_batch_output_untouched() {
        let array = TegArray::uniform(module(), 6);
        let deltas = gradient_deltas(6, 40.0, 20.0);
        let mut solver = ArraySolver::new();
        solver.load(&array, &deltas, None).unwrap();
        let mut powers = vec![Watts::new(1.0), Watts::new(2.0)];
        let candidates = vec![
            Configuration::uniform(6, 2).unwrap(),
            Configuration::uniform(8, 2).unwrap(), // wrong module count
        ];
        assert!(solver
            .evaluate_candidates(&candidates, &mut powers)
            .is_err());
        // Up-front validation: the stale contents survive, nothing partial.
        assert_eq!(powers.len(), 2);
        assert_eq!(powers[0], Watts::new(1.0));
    }

    #[test]
    fn fast_mode_matches_bit_exact_within_tolerance() {
        let array = TegArray::uniform(module(), 17);
        let deltas = gradient_deltas(17, 30.0, 40.0);
        let candidates: Vec<_> = (1..=17)
            .map(|n| Configuration::uniform(17, n).unwrap())
            .collect();
        let mut exact = ArraySolver::new();
        let mut fast = ArraySolver::with_mode(KernelMode::Fast);
        let (mut pe, mut pf) = (Vec::new(), Vec::new());
        exact.load(&array, &deltas, None).unwrap();
        fast.load(&array, &deltas, None).unwrap();
        exact.evaluate_candidates(&candidates, &mut pe).unwrap();
        fast.evaluate_candidates(&candidates, &mut pf).unwrap();
        for (a, b) in pe.iter().zip(&pf) {
            assert!(
                teg_units::approx_eq(a.value(), b.value(), 1e-12),
                "fast {b:?} drifted from exact {a:?}"
            );
        }
    }

    #[test]
    fn fast_mode_agrees_on_broken_strings() {
        // An all-open group kills the string identically in both lanes.
        let array = TegArray::uniform(module(), 8);
        let deltas = gradient_deltas(8, 40.0, 10.0);
        let mut faults = FaultState::healthy(8);
        for i in 0..4 {
            faults
                .set_module_fault(i, ModuleFault::OpenCircuit)
                .unwrap();
        }
        let config = Configuration::new(vec![0, 4], 8).unwrap();
        for mode in [KernelMode::BitExact, KernelMode::Fast] {
            let mut solver = ArraySolver::with_mode(mode);
            solver.load(&array, &deltas, Some(&faults)).unwrap();
            let point = solver.mpp(&config).unwrap();
            assert_eq!(point.power(), Watts::ZERO, "{mode:?}");
            assert_eq!(point.current(), Amps::ZERO, "{mode:?}");
        }
    }

    #[test]
    fn scratch_is_reusable_across_array_sizes() {
        let mut solver = ArraySolver::new();
        for n in [4usize, 16, 7] {
            let array = TegArray::uniform(module(), n);
            let deltas = gradient_deltas(n, 45.0, 15.0);
            let config = Configuration::uniform(n, (n / 2).max(1)).unwrap();
            solver.load(&array, &deltas, None).unwrap();
            let power = solver.mpp_power(&config).unwrap();
            assert_eq!(power, array.mpp_power(&config, &deltas).unwrap());
            assert_eq!(solver.group_points().len(), config.group_count());
        }
    }

    proptest! {
        /// The batched candidate API is exactly — bit for bit — the legacy
        /// per-candidate `mpp_power` / `mpp_power_faulted`, for arbitrary
        /// partitions, ΔT vectors and fault masks.  This is the contract
        /// that lets the schemes and the session switch to the kernel
        /// without re-blessing any golden trace.
        #[test]
        fn prop_batch_equals_legacy_per_candidate(
            n in 2usize..24,
            base in 0.0_f64..80.0,
            span in -30.0_f64..50.0,
            partition_seed in 0u64..u64::MAX,
            fault_mask in 0u64..u64::MAX,
        ) {
            let array = TegArray::uniform(module(), n);
            let deltas = gradient_deltas(n, base, span);
            let faults = fault_pattern(n, fault_mask);
            // A spread of candidates: every uniform split plus three
            // mask-derived arbitrary partitions.
            let mut candidates: Vec<_> = (1..=n)
                .map(|groups| Configuration::uniform(n, groups).unwrap())
                .collect();
            for rotate in [0, 13, 37] {
                candidates.push(partition_from_mask(n, partition_seed.rotate_left(rotate)));
            }

            let mut solver = ArraySolver::new();
            let mut powers = Vec::new();

            // Healthy: batch ≡ per-candidate mpp_power.
            solver.load(&array, &deltas, None).unwrap();
            solver.evaluate_candidates(&candidates, &mut powers).unwrap();
            for (candidate, power) in candidates.iter().zip(&powers) {
                let legacy = array.mpp_power(candidate, &deltas).unwrap();
                prop_assert_eq!(power.value().to_bits(), legacy.value().to_bits());
            }

            // Faulted: batch ≡ per-candidate mpp_power_faulted.
            solver.load(&array, &deltas, Some(&faults)).unwrap();
            solver.evaluate_candidates(&candidates, &mut powers).unwrap();
            for (candidate, power) in candidates.iter().zip(&powers) {
                let legacy = array.mpp_power_faulted(candidate, &deltas, &faults).unwrap();
                prop_assert_eq!(power.value().to_bits(), legacy.value().to_bits());
            }
        }

        /// Tolerance contract of the fast lane: for arbitrary partitions,
        /// ΔT vectors and fault masks, `KernelMode::Fast` candidate powers
        /// stay within a 1e-9 relative error of the bit-exact lane.  (The
        /// chunked sums only reorder a ≤64-term addition of like-scaled
        /// conductance terms, so the observed drift is orders of magnitude
        /// below the bound.)
        #[test]
        fn prop_fast_lane_within_tolerance_of_bit_exact(
            n in 2usize..24,
            base in 0.0_f64..80.0,
            span in -30.0_f64..50.0,
            partition_seed in 0u64..u64::MAX,
            fault_mask in 0u64..u64::MAX,
        ) {
            let array = TegArray::uniform(module(), n);
            let deltas = gradient_deltas(n, base, span);
            let faults = fault_pattern(n, fault_mask);
            let mut candidates: Vec<_> = (1..=n)
                .map(|groups| Configuration::uniform(n, groups).unwrap())
                .collect();
            for rotate in [0, 13, 37] {
                candidates.push(partition_from_mask(n, partition_seed.rotate_left(rotate)));
            }
            let mut exact = ArraySolver::new();
            let mut fast = ArraySolver::with_mode(KernelMode::Fast);
            let (mut pe, mut pf) = (Vec::new(), Vec::new());
            for active in [None, Some(&faults)] {
                exact.load(&array, &deltas, active).unwrap();
                fast.load(&array, &deltas, active).unwrap();
                exact.evaluate_candidates(&candidates, &mut pe).unwrap();
                fast.evaluate_candidates(&candidates, &mut pf).unwrap();
                for (a, b) in pe.iter().zip(&pf) {
                    prop_assert!(
                        teg_units::approx_eq(a.value(), b.value(), 1e-9),
                        "fast {} vs exact {}", b.value(), a.value()
                    );
                }
            }
        }

        /// A compiled plan solved per ΔT vector matches the legacy
        /// whole-operating-point methods bitwise, healthy and faulted, at
        /// the MPP and at arbitrary imposed currents.
        #[test]
        fn prop_plan_solver_matches_legacy_operating_points(
            n in 2usize..20,
            base in 0.0_f64..80.0,
            span in -30.0_f64..50.0,
            partition_seed in 0u64..u64::MAX,
            fault_mask in 0u64..u64::MAX,
            frac in 0.0_f64..2.0,
        ) {
            let array = TegArray::uniform(module(), n);
            let deltas = gradient_deltas(n, base, span);
            let config = partition_from_mask(n, partition_seed);
            let faults = fault_pattern(n, fault_mask);
            let mut solver = ArraySolver::new();

            for active in [None, Some(&faults)] {
                let plan = ArrayPlan::compile(&array, &config, active).unwrap();
                let legacy_mpp = match active {
                    None => array.maximum_power_point(&config, &deltas).unwrap(),
                    Some(f) => array
                        .maximum_power_point_faulted(&config, &deltas, f)
                        .unwrap(),
                };
                let point = solver.solve_mpp(&array, &plan, &deltas).unwrap();
                prop_assert_eq!(point.current(), legacy_mpp.current());
                prop_assert_eq!(point.voltage(), legacy_mpp.voltage());
                prop_assert_eq!(point.power().value().to_bits(), legacy_mpp.power().value().to_bits());
                prop_assert_eq!(solver.group_points(), legacy_mpp.groups());

                let probe = legacy_mpp.current() * frac;
                let legacy_at = match active {
                    None => array.operate_at(&config, &deltas, probe).unwrap(),
                    Some(f) => array
                        .operate_at_faulted(&config, &deltas, probe, f)
                        .unwrap(),
                };
                let at = solver.solve_at(&array, &plan, &deltas, probe).unwrap();
                prop_assert_eq!(at.current(), legacy_at.current());
                prop_assert_eq!(at.voltage(), legacy_at.voltage());
                prop_assert_eq!(at.power().value().to_bits(), legacy_at.power().value().to_bits());
            }
        }

        /// The memoised candidate scan is bit-identical to the direct one in
        /// both kernel lanes, for arbitrary partitions and fault patterns —
        /// whether a range sum is served from the table or freshly computed
        /// must be unobservable in the results.
        #[test]
        fn prop_memoised_scan_matches_direct_scan_bitwise(
            n in 2usize..20,
            base in 0.0_f64..80.0,
            span in -30.0_f64..50.0,
            seeds in collection::vec(0u64..u64::MAX, 1..8),
            fault_mask in 0u64..u64::MAX,
        ) {
            let array = TegArray::uniform(module(), n);
            let deltas = gradient_deltas(n, base, span);
            let faults = fault_pattern(n, fault_mask);
            let candidates: Vec<_> = seeds
                .iter()
                .map(|&s| partition_from_mask(n, s))
                .collect();
            for mode in [KernelMode::BitExact, KernelMode::Fast] {
                let mut solver = ArraySolver::with_mode(mode);
                solver.load(&array, &deltas, Some(&faults)).unwrap();
                let mut direct = Vec::new();
                solver.evaluate_candidates(&candidates, &mut direct).unwrap();
                let mut memo = GroupSumMemo::new();
                let mut memoised = Vec::new();
                // Twice through the same memo: the second pass is all hits.
                for _ in 0..2 {
                    solver
                        .evaluate_candidates_with_memo(&candidates, &mut memo, &mut memoised)
                        .unwrap();
                    for (a, b) in direct.iter().zip(&memoised) {
                        prop_assert_eq!(a.value().to_bits(), b.value().to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn memo_reuses_ranges_and_invalidates_on_reload_and_mode_switch() {
        let array = TegArray::uniform(module(), 8);
        let deltas = gradient_deltas(8, 50.0, 20.0);
        let candidates = vec![
            Configuration::new(vec![0, 4], 8).unwrap(),
            // Shares the leading [0, 4) range with the first candidate.
            Configuration::new(vec![0, 4, 6], 8).unwrap(),
        ];
        let mut solver = ArraySolver::new();
        solver.load(&array, &deltas, None).unwrap();
        let mut memo = GroupSumMemo::new();
        let mut out = Vec::new();
        solver
            .evaluate_candidates_with_memo(&candidates, &mut memo, &mut out)
            .unwrap();
        // Ranges [0,4) and [4,8) computed for the first candidate; the
        // second reuses [0,4) and computes [4,6) and [6,8).
        assert_eq!((memo.hits(), memo.computed()), (1, 4));
        assert_eq!(memo.len(), 4);

        // Same load generation: a repeat scan is served entirely from the
        // table.
        solver
            .evaluate_candidates_with_memo(&candidates, &mut memo, &mut out)
            .unwrap();
        assert_eq!((memo.hits(), memo.computed()), (6, 4));

        // Reloading the same terms still invalidates — the memo cannot tell
        // equal inputs apart and must never trust a stale generation.
        solver.load(&array, &deltas, None).unwrap();
        solver
            .evaluate_candidates_with_memo(&candidates, &mut memo, &mut out)
            .unwrap();
        assert_eq!((memo.hits(), memo.computed()), (7, 8));

        // A lane switch re-rounds every range sum, so it invalidates too.
        solver.set_mode(KernelMode::Fast);
        solver
            .evaluate_candidates_with_memo(&candidates, &mut memo, &mut out)
            .unwrap();
        assert_eq!((memo.hits(), memo.computed()), (8, 12));

        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.len(), 0);
    }

    #[test]
    fn memoised_scan_validates_like_the_direct_scan() {
        let array = TegArray::uniform(module(), 6);
        let deltas = gradient_deltas(6, 40.0, 10.0);
        let mut solver = ArraySolver::new();
        let mut memo = GroupSumMemo::new();
        let mut out = vec![Watts::ZERO];
        let ok = Configuration::uniform(6, 2).unwrap();
        let wrong = Configuration::uniform(8, 2).unwrap();
        assert!(solver
            .evaluate_candidates_with_memo(std::slice::from_ref(&ok), &mut memo, &mut out)
            .is_err());
        solver.load(&array, &deltas, None).unwrap();
        assert!(solver
            .evaluate_candidates_with_memo(&[ok, wrong], &mut memo, &mut out)
            .is_err());
        // On error `out` is untouched, exactly like the direct scan.
        assert_eq!(out.len(), 1);
    }
}
