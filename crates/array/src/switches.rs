//! The switch fabric between adjacent modules (Fig. 4 of the paper).
//!
//! Between every pair of adjacent modules sit three switches: a series switch
//! `S_S,i` and two parallel switches `S_PT,i` (top) and `S_PB,i` (bottom).
//! Exactly one *link type* is active per pair: closing the series switch puts
//! the modules in different series-connected groups; closing both parallel
//! switches merges them into the same parallel group.

use crate::configuration::Configuration;

/// The electrical link realised between one pair of adjacent modules.
///
/// # Examples
///
/// ```
/// use teg_array::PairLink;
///
/// assert_eq!(PairLink::Series.closed_switches(), 1);
/// assert_eq!(PairLink::Parallel.closed_switches(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairLink {
    /// The series switch is closed; the pair straddles a group boundary.
    Series,
    /// Both parallel switches are closed; the pair shares a group.
    Parallel,
}

impl PairLink {
    /// Number of physical switches held closed for this link type (1 series
    /// switch, or 2 parallel switches).
    #[must_use]
    pub const fn closed_switches(self) -> usize {
        match self {
            Self::Series => 1,
            Self::Parallel => 2,
        }
    }

    /// Number of switch actuations needed to change this link into `other`
    /// (opening the currently closed switches and closing the new ones).
    #[must_use]
    pub const fn toggles_to(self, other: Self) -> usize {
        match (self, other) {
            (Self::Series, Self::Series) | (Self::Parallel, Self::Parallel) => 0,
            // Series → parallel: open S_S (1) and close S_PT + S_PB (2).
            (Self::Series, Self::Parallel) => 3,
            // Parallel → series: open S_PT + S_PB (2) and close S_S (1).
            (Self::Parallel, Self::Series) => 3,
        }
    }
}

/// The complete switch state of an `N`-module array: one [`PairLink`] per
/// adjacent pair (`N − 1` entries).
///
/// # Examples
///
/// ```
/// use teg_array::{Configuration, SwitchBank, PairLink};
///
/// # fn main() -> Result<(), teg_array::ArrayError> {
/// let config = Configuration::new(vec![0, 2], 4)?;
/// let bank = config.switch_bank();
/// assert_eq!(bank.links(), &[PairLink::Parallel, PairLink::Series, PairLink::Parallel]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SwitchBank {
    links: Vec<PairLink>,
}

impl SwitchBank {
    /// Derives the switch states realising a configuration: adjacent modules
    /// inside the same group are linked in parallel, adjacent modules in
    /// different groups are linked in series.
    #[must_use]
    pub fn from_configuration(config: &Configuration) -> Self {
        let n = config.module_count();
        let links = (0..n.saturating_sub(1))
            .map(|i| {
                if config.group_of(i) == config.group_of(i + 1) {
                    PairLink::Parallel
                } else {
                    PairLink::Series
                }
            })
            .collect();
        Self { links }
    }

    /// The per-pair link states, entrance side first.
    #[must_use]
    pub fn links(&self) -> &[PairLink] {
        &self.links
    }

    /// Number of adjacent pairs (always `module_count − 1`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` for a single-module array (no switches).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Total number of physical switches currently held closed.
    #[must_use]
    pub fn closed_switch_count(&self) -> usize {
        self.links.iter().map(|l| l.closed_switches()).sum()
    }

    /// Number of switch actuations (opens plus closes) required to move to
    /// another bank.  Banks of different length are incomparable and cost
    /// `usize::MAX` (callers validate sizes before asking).
    #[must_use]
    pub fn toggles_to(&self, other: &Self) -> usize {
        if self.links.len() != other.links.len() {
            return usize::MAX;
        }
        self.links
            .iter()
            .zip(other.links.iter())
            .map(|(a, b)| a.toggles_to(*b))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configuration::Configuration;
    use proptest::prelude::*;

    #[test]
    fn link_toggle_costs() {
        assert_eq!(PairLink::Series.toggles_to(PairLink::Series), 0);
        assert_eq!(PairLink::Parallel.toggles_to(PairLink::Parallel), 0);
        assert_eq!(PairLink::Series.toggles_to(PairLink::Parallel), 3);
        assert_eq!(PairLink::Parallel.toggles_to(PairLink::Series), 3);
    }

    #[test]
    fn bank_from_uniform_configuration() {
        let config = Configuration::uniform(6, 3).unwrap();
        let bank = config.switch_bank();
        assert_eq!(
            bank.links(),
            &[
                PairLink::Parallel,
                PairLink::Series,
                PairLink::Parallel,
                PairLink::Series,
                PairLink::Parallel,
            ]
        );
        assert_eq!(bank.len(), 5);
        assert!(!bank.is_empty());
    }

    #[test]
    fn series_chain_has_all_series_links() {
        let config = Configuration::all_series(5).unwrap();
        let bank = config.switch_bank();
        assert!(bank.links().iter().all(|&l| l == PairLink::Series));
        assert_eq!(bank.closed_switch_count(), 4);
    }

    #[test]
    fn parallel_bank_has_all_parallel_links() {
        let config = Configuration::all_parallel(5).unwrap();
        let bank = config.switch_bank();
        assert!(bank.links().iter().all(|&l| l == PairLink::Parallel));
        assert_eq!(bank.closed_switch_count(), 8);
    }

    #[test]
    fn single_module_has_no_switches() {
        let config = Configuration::all_parallel(1).unwrap();
        let bank = config.switch_bank();
        assert!(bank.is_empty());
        assert_eq!(bank.closed_switch_count(), 0);
    }

    #[test]
    fn identical_configurations_need_no_toggles() {
        let a = Configuration::uniform(20, 4).unwrap();
        assert_eq!(a.switch_toggles_to(&a).unwrap(), 0);
    }

    #[test]
    fn toggles_count_changed_boundaries() {
        // 6 modules: 3+3 vs 2+4 differ at pairs (1,2) and (2,3): two link
        // flips of 3 actuations each.
        let a = Configuration::new(vec![0, 3], 6).unwrap();
        let b = Configuration::new(vec![0, 2], 6).unwrap();
        assert_eq!(a.switch_toggles_to(&b).unwrap(), 6);
    }

    #[test]
    fn mismatched_banks_are_incomparable() {
        let a = Configuration::uniform(5, 2).unwrap().switch_bank();
        let b = Configuration::uniform(6, 2).unwrap().switch_bank();
        assert_eq!(a.toggles_to(&b), usize::MAX);
    }

    proptest! {
        /// Toggle counting is symmetric and zero exactly on identical banks.
        #[test]
        fn prop_toggles_symmetric(modules in 2usize..60, ga in 1usize..20, gb in 1usize..20) {
            prop_assume!(ga <= modules && gb <= modules);
            let a = Configuration::uniform(modules, ga).unwrap();
            let b = Configuration::uniform(modules, gb).unwrap();
            let ab = a.switch_toggles_to(&b).unwrap();
            let ba = b.switch_toggles_to(&a).unwrap();
            prop_assert_eq!(ab, ba);
            if ga == gb {
                prop_assert_eq!(ab, 0);
            }
        }

        /// The number of series links equals the number of group boundaries.
        #[test]
        fn prop_series_links_equal_boundaries(modules in 1usize..80, groups in 1usize..20) {
            prop_assume!(groups <= modules);
            let config = Configuration::uniform(modules, groups).unwrap();
            let bank = config.switch_bank();
            let series = bank.links().iter().filter(|&&l| l == PairLink::Series).count();
            prop_assert_eq!(series, groups - 1);
        }
    }
}
