//! Criterion bench quantifying the streaming redesign.
//!
//! Three arms:
//!
//! 1. `lockstep_shared_trace` — one `Comparison` driving the scheme field
//!    (DNOR, INOR, baseline) over a single cached thermal trace;
//! 2. `sequential_sessions` — one `SimulationEngine::run` call per scheme on
//!    fresh scenarios, each paying its own thermal solve (but already using
//!    the streaming session internals);
//! 3. `legacy_unbounded` — a faithful emulation of the pre-redesign loop,
//!    which re-solved the radiator every run *and* rebuilt an unbounded
//!    history (with full `O(T)` re-validation per invocation, so `O(T²)`
//!    per run).
//!
//! The printed `comparison/speedup` line records the ratios.  The thermal
//! solve is cheap next to the schemes' decision work, so arm 1 vs arm 2 is
//! near parity; the redesign's real win — bounded telemetry — shows up
//! against arm 3 and grows quadratically with the drive length.  EHTR is
//! excluded from the field: its `O(N³)` decision cost dwarfs the loop
//! overhead under measurement (it has its own scalability bench).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use teg_array::{ideal_power, Configuration};
use teg_reconfig::{Dnor, Inor, Reconfigurer, RuntimeStats, StaticBaseline, TelemetryWindow};
use teg_sim::{Comparison, Scenario, SimulationEngine};
use teg_units::Joules;

const MODULES: usize = 40;
const SECONDS: usize = 1600;
const SEED: u64 = 2024;

fn scenario() -> Scenario {
    Scenario::builder()
        .module_count(MODULES)
        .duration_seconds(SECONDS)
        .seed(SEED)
        .build()
        .expect("scenario")
}

fn schemes() -> (Dnor, Inor, StaticBaseline) {
    (
        Dnor::default(),
        Inor::default(),
        StaticBaseline::square_grid(MODULES),
    )
}

fn run_comparison(s: &Scenario) {
    let (dnor, inor, baseline) = schemes();
    let report = Comparison::new(s)
        .scheme(dnor)
        .scheme(inor)
        .scheme(baseline)
        .run()
        .expect("comparison");
    black_box(report);
}

fn run_sequential() {
    // A fresh scenario per scheme: every run pays its own thermal solve,
    // like four independent pre-redesign engine invocations would.
    let (mut dnor, mut inor, mut baseline) = schemes();
    let field: [&mut dyn Reconfigurer; 3] = [&mut dnor, &mut inor, &mut baseline];
    for scheme in field {
        let engine = SimulationEngine::new(scenario());
        black_box(engine.run(scheme).expect("run"));
    }
}

/// The pre-redesign simulation loop: per-step radiator solve, unbounded
/// history, full re-validation on every invocation.
fn legacy_run(scenario: &Scenario, scheme: &mut dyn Reconfigurer) {
    let array = scenario.array();
    let module_count = array.len();
    let step = scenario.step();
    let initial_groups = (module_count as f64).sqrt().ceil().max(1.0) as usize;
    let mut config =
        Configuration::uniform(module_count, initial_groups.min(module_count)).expect("config");
    let invocations_per_step = (step.value() / scheme.period().value()).round().max(1.0) as usize;
    let mut history: Vec<Vec<f64>> = Vec::new();
    let mut runtime = RuntimeStats::new();
    scheme.reset();
    for sample in scenario.drive_cycle().iter() {
        let profile = scenario
            .radiator()
            .surface_profile(&sample.coolant(), &sample.ambient())
            .expect("thermal solve");
        let temps: Vec<f64> = profile
            .sample(scenario.placement())
            .iter()
            .map(|t| t.value())
            .collect();
        history.push(temps);
        let ambient = sample.ambient().temperature();
        let deltas = TelemetryWindow::deltas_from_row(history.last().expect("pushed"), ambient);
        black_box(ideal_power(array.modules(), &deltas).expect("ideal"));
        let mut overhead_energy = Joules::ZERO;
        for _ in 0..invocations_per_step {
            // The expensive part being benchmarked: the window is rebuilt
            // over (and re-validates) the entire history every invocation.
            let window = TelemetryWindow::new(array, &history, ambient).expect("window");
            let decision = scheme.decide(&window, &config).expect("decision");
            runtime.record(decision.computation());
            let applied = decision.applied();
            let computation = decision.computation();
            let next = decision.into_configuration();
            let toggles = match &next {
                Some(next) => config.switch_toggles_to(next).expect("toggles"),
                None => 0,
            };
            let current_power = array.mpp_power(&config, &deltas).expect("power");
            if applied {
                let event = scenario
                    .overhead()
                    .event(current_power, computation, toggles);
                overhead_energy += event.total_energy();
                if toggles > 0 {
                    config = next.expect("a rewiring decision carries its configuration");
                }
            }
        }
        black_box(array.maximum_power_point(&config, &deltas).expect("mpp"));
        black_box(overhead_energy);
    }
}

fn run_legacy() {
    let (mut dnor, mut inor, mut baseline) = schemes();
    let field: [&mut dyn Reconfigurer; 3] = [&mut dnor, &mut inor, &mut baseline];
    for scheme in field {
        legacy_run(&scenario(), scheme);
    }
}

fn bench_comparison_vs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group(format!("comparison/{SECONDS}s_{MODULES}_modules"));
    group.sample_size(5);

    group.bench_function("lockstep_shared_trace", |b| {
        b.iter(|| {
            // A fresh scenario per iteration so the trace solve is included
            // (the comparison still solves it only once for all schemes).
            let s = scenario();
            run_comparison(&s)
        })
    });
    group.bench_function("sequential_sessions", |b| b.iter(run_sequential));
    group.bench_function("legacy_unbounded", |b| b.iter(run_legacy));
    group.finish();

    // Direct ratio measurements, printed for the record.
    let timed = |f: &dyn Fn()| {
        let samples = 3u32;
        let start = Instant::now();
        for _ in 0..samples {
            f();
        }
        start.elapsed().as_secs_f64() / f64::from(samples)
    };
    let shared = timed(&|| {
        let s = scenario();
        run_comparison(&s)
    });
    let sequential = timed(&run_sequential);
    let legacy = timed(&run_legacy);
    println!(
        "comparison/speedup: lockstep {shared:.3} s | sequential sessions {sequential:.3} s \
         ({:.2}x vs lockstep) | legacy unbounded {legacy:.3} s ({:.2}x vs lockstep)",
        sequential / shared,
        legacy / shared,
    );
}

criterion_group!(benches, bench_comparison_vs_sequential);
criterion_main!(benches);
