//! Criterion bench behind Fig. 1: cost of evaluating the TEG module model
//! and sampling its I-V / P-V characteristics.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use teg_bench::paper_module;
use teg_device::IvCurve;
use teg_units::{Ohms, TemperatureDelta};

fn bench_module_queries(c: &mut Criterion) {
    let module = paper_module();
    let dt = TemperatureDelta::new(70.0);

    c.bench_function("device/mpp_single_module", |b| {
        b.iter(|| black_box(module.mpp(black_box(dt))))
    });

    c.bench_function("device/power_at_load", |b| {
        b.iter(|| black_box(module.power_at_load(black_box(dt), black_box(Ohms::new(2.5)))))
    });
}

fn bench_curve_sampling(c: &mut Criterion) {
    let module = paper_module();
    let mut group = c.benchmark_group("device/iv_curve_sampling");
    for &samples in &[16usize, 64, 256] {
        group.bench_function(format!("{samples}_points"), |b| {
            b.iter_batched(
                || module.clone(),
                |m| black_box(IvCurve::sample(&m, TemperatureDelta::new(90.0), samples)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_module_queries, bench_curve_sampling);
criterion_main!(benches);
