//! Criterion bench behind Fig. 5: fitting and querying the three temperature
//! predictors on drive-cycle data.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teg_predict::{
    BackPropagationNetwork, MultipleLinearRegression, Predictor, SupportVectorRegression,
};
use teg_thermal::DriveCycle;

fn training_series() -> Vec<f64> {
    DriveCycle::porter_ii_800s(7)
        .expect("drive cycle")
        .coolant_temperature_series()
        .values()
        .to_vec()
}

fn bench_fitting(c: &mut Criterion) {
    let series = training_series();
    let train = &series[..600];
    let mut group = c.benchmark_group("prediction/fit_600_samples");
    group.sample_size(20);

    group.bench_function("mlr", |b| {
        b.iter(|| {
            let mut model = MultipleLinearRegression::new(5).expect("window");
            model.fit(black_box(train)).expect("fit");
            black_box(model)
        })
    });
    group.bench_function("svr", |b| {
        b.iter(|| {
            let mut model = SupportVectorRegression::new(5, 42).expect("window");
            model.fit(black_box(train)).expect("fit");
            black_box(model)
        })
    });
    group.bench_function("bpnn", |b| {
        b.iter(|| {
            let mut model = BackPropagationNetwork::new(5, 8, 42).expect("hyper-parameters");
            model.fit(black_box(train)).expect("fit");
            black_box(model)
        })
    });
    group.finish();
}

fn bench_one_step_prediction(c: &mut Criterion) {
    let series = training_series();
    let train = &series[..600];
    let mut mlr = MultipleLinearRegression::new(5).expect("window");
    mlr.fit(train).expect("fit");
    let mut bpnn = BackPropagationNetwork::new(5, 8, 42).expect("hyper-parameters");
    bpnn.fit(train).expect("fit");
    let mut svr = SupportVectorRegression::new(5, 42).expect("window");
    svr.fit(train).expect("fit");

    let mut group = c.benchmark_group("prediction/one_step");
    group.bench_function("mlr", |b| {
        b.iter(|| black_box(mlr.predict_next(black_box(&series))).expect("prediction"))
    });
    group.bench_function("bpnn", |b| {
        b.iter(|| black_box(bpnn.predict_next(black_box(&series))).expect("prediction"))
    });
    group.bench_function("svr", |b| {
        b.iter(|| black_box(svr.predict_next(black_box(&series))).expect("prediction"))
    });
    group.finish();
}

criterion_group!(benches, bench_fitting, bench_one_step_prediction);
criterion_main!(benches);
