//! Criterion bench behind the "Average Runtime" column of Table I: one
//! reconfiguration decision of each scheme on the paper's 100-module array.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teg_array::Configuration;
use teg_bench::{exponential_temperatures, paper_array};
use teg_reconfig::{Dnor, Ehtr, Inor, ReconfigInputs, Reconfigurer};
use teg_units::Celsius;

fn bench_decisions(c: &mut Criterion) {
    let n = 100;
    let array = paper_array(n);
    let history: Vec<Vec<f64>> = (0..10)
        .map(|step| exponential_temperatures(n, 68.0 + step as f64 * 0.2, 1.5, 25.0))
        .collect();
    let inputs = ReconfigInputs::new(&array, &history, Celsius::new(25.0)).expect("inputs");
    let current = Configuration::uniform(n, 10).expect("config");

    let mut group = c.benchmark_group("reconfig/decision_100_modules");
    group.sample_size(50);

    group.bench_function("inor", |b| {
        let mut scheme = Inor::default();
        b.iter(|| {
            black_box(scheme.decide(black_box(&inputs), black_box(&current))).expect("decision")
        })
    });
    group.bench_function("ehtr", |b| {
        let mut scheme = Ehtr::default();
        b.iter(|| {
            black_box(scheme.decide(black_box(&inputs), black_box(&current))).expect("decision")
        })
    });
    group.bench_function("dnor_full_evaluation", |b| {
        let mut scheme = Dnor::default();
        b.iter(|| {
            // Reset so every measured iteration performs the full INOR +
            // prediction evaluation rather than the cheap skip path.
            scheme.reset();
            black_box(scheme.decide(black_box(&inputs), black_box(&current))).expect("decision")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_decisions);
criterion_main!(benches);
