//! Criterion bench behind the scalability claim: decision runtime of the
//! O(N) INOR versus the polynomial EHTR as the array grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use teg_array::Configuration;
use teg_bench::{exponential_temperatures, paper_array};
use teg_reconfig::{Ehtr, Inor, ReconfigInputs, Reconfigurer};
use teg_units::Celsius;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconfig/scaling");
    group.sample_size(10);

    for &n in &[50usize, 100, 200, 400] {
        let array = paper_array(n);
        let history = vec![exponential_temperatures(n, 70.0, 1.5, 25.0)];
        let inputs = ReconfigInputs::new(&array, &history, Celsius::new(25.0)).expect("inputs");
        let current = Configuration::uniform(n, (n as f64).sqrt().ceil() as usize).expect("config");

        group.bench_with_input(BenchmarkId::new("inor", n), &n, |b, _| {
            let mut scheme = Inor::default();
            b.iter(|| black_box(scheme.decide(&inputs, &current)).expect("decision"))
        });
        group.bench_with_input(BenchmarkId::new("ehtr", n), &n, |b, _| {
            let mut scheme = Ehtr::default();
            b.iter(|| black_box(scheme.decide(&inputs, &current)).expect("decision"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
