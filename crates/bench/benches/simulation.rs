//! Criterion bench of the full co-simulation loop (the machinery behind
//! Figs. 6–7 and Table I): one simulated drive second per scheme, end to
//! end (radiator solve → decision → array MPP → charger).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use teg_reconfig::{Dnor, Inor, StaticBaseline};
use teg_sim::{Scenario, SimulationEngine};

fn bench_short_runs(c: &mut Criterion) {
    let scenario = Scenario::builder()
        .module_count(100)
        .duration_seconds(10)
        .seed(2024)
        .build()
        .expect("scenario");
    let engine = SimulationEngine::new(scenario);

    let mut group = c.benchmark_group("simulation/10s_100_modules");
    group.sample_size(10);

    group.bench_function("baseline", |b| {
        b.iter_batched(
            StaticBaseline::grid_10x10,
            |mut scheme| black_box(engine.run(&mut scheme)).expect("run"),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("inor", |b| {
        b.iter_batched(
            Inor::default,
            |mut scheme| black_box(engine.run(&mut scheme)).expect("run"),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("dnor", |b| {
        b.iter_batched(
            Dnor::default,
            |mut scheme| black_box(engine.run(&mut scheme)).expect("run"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_short_runs);
criterion_main!(benches);
