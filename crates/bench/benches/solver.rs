//! Compiled-plan solver vs the legacy per-call electrical path.
//!
//! Two shapes of the hot loop are measured:
//!
//! * the **candidate scan** (INOR's inner loop): one ΔT vector, many
//!   configurations — batch kernel vs one `mpp_power` call per candidate;
//! * the **fixed-wiring re-solve** (a session's physics step): one
//!   configuration, fresh ΔT every call — compiled `ArrayPlan` vs
//!   `maximum_power_point`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use teg_array::{ArrayPlan, ArraySolver, Configuration};
use teg_bench::{exponential_deltas, paper_array};
use teg_reconfig::Inor;

fn bench_candidate_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/candidate_scan");
    group.sample_size(20);
    for modules in [50usize, 100, 200] {
        let array = paper_array(modules);
        let deltas = exponential_deltas(modules, 70.0, 0.8);
        let currents = array.mpp_currents(&deltas).expect("deltas match");
        let (n_min, n_max) = Inor::default().group_bounds(&array, &deltas);
        let candidates: Vec<Configuration> = (n_min..=n_max)
            .map(|n| Inor::balanced_partition(&currents, n))
            .collect();

        group.bench_with_input(
            BenchmarkId::new("legacy_per_call", modules),
            &modules,
            |b, _| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for candidate in &candidates {
                        acc += array
                            .mpp_power(black_box(candidate), &deltas)
                            .expect("solve")
                            .value();
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compiled_batch", modules),
            &modules,
            |b, _| {
                let mut solver = ArraySolver::new();
                let mut powers = Vec::new();
                b.iter(|| {
                    solver.load(&array, &deltas, None).expect("load");
                    solver
                        .evaluate_candidates(black_box(&candidates), &mut powers)
                        .expect("batch");
                    powers.last().copied()
                })
            },
        );
    }
    group.finish();
}

fn bench_fixed_wiring_resolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/fixed_wiring_resolve");
    group.sample_size(20);
    for modules in [50usize, 200] {
        let array = paper_array(modules);
        let deltas = exponential_deltas(modules, 70.0, 0.8);
        let config = Configuration::uniform(modules, 10).expect("valid");

        group.bench_with_input(
            BenchmarkId::new("legacy_full_point", modules),
            &modules,
            |b, _| {
                b.iter(|| {
                    array
                        .maximum_power_point(black_box(&config), &deltas)
                        .expect("solve")
                        .power()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compiled_plan", modules),
            &modules,
            |b, _| {
                let plan = ArrayPlan::compile(&array, &config, None).expect("compile");
                let mut solver = ArraySolver::new();
                b.iter(|| {
                    solver
                        .solve_mpp(&array, black_box(&plan), &deltas)
                        .expect("solve")
                        .power()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_candidate_scan, bench_fixed_wiring_resolve);
criterion_main!(benches);
