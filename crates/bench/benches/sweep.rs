//! Sweep throughput versus worker count: the same scenario grid executed by
//! the work-stealing [`SweepRunner`] with 1, 2, 4 and 8 workers.
//!
//! The grid's thermal traces are solved during the first (warm-up)
//! execution, so the timed region measures pure simulation throughput — the
//! quantity that should scale with cores.  On a multi-core host the
//! per-sweep wall clock must drop as workers are added; the shim prints
//! mean/min per-iteration times for the record.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use teg_sim::{RuntimePolicy, ScenarioGrid, SchemeLineup, SweepRunner};
use teg_units::Seconds;

fn bench_sweep_workers(c: &mut Criterion) {
    let grid = ScenarioGrid::builder()
        .module_counts([20, 40])
        .seeds([1, 2, 3, 4])
        .duration_seconds(60)
        .lineups([SchemeLineup::paper()])
        .build()
        .expect("valid grid");
    // Solve every sample's thermal trace up front so each timed sweep does
    // identical work regardless of worker count.
    SweepRunner::new()
        .workers(1)
        .run(&grid)
        .expect("warm-up sweep");

    let mut group = c.benchmark_group("sweep/workers");
    group.sample_size(10);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    for &workers in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(format!("cells{}", grid.len()), workers),
            &workers,
            |b, &workers| {
                let runner = SweepRunner::new()
                    .workers(workers)
                    .runtime_policy(RuntimePolicy::Fixed(Seconds::new(0.001)));
                b.iter(|| black_box(runner.run(&grid)).expect("sweep"))
            },
        );
    }
    group.finish();
    println!("host parallelism: {cores} threads");
}

criterion_group!(benches, bench_sweep_workers);
criterion_main!(benches);
