//! Ablation — DNOR's sensitivity to its prediction horizon `t_p` and to the
//! magnitude of the switching-overhead model (a design-choice study that is
//! not in the paper but supports its Section III-C discussion).

use teg_array::SwitchingOverheadModel;
use teg_reconfig::{Dnor, DnorConfig, InorConfig};
use teg_sim::{Scenario, SimulationEngine};
use teg_units::{Joules, Seconds};

fn scaled_overhead(factor: f64) -> SwitchingOverheadModel {
    let base = SwitchingOverheadModel::default();
    SwitchingOverheadModel::new(
        base.sensing_delay() * factor,
        base.reconfiguration_delay() * factor,
        base.mppt_settling() * factor,
        Joules::new(base.per_toggle_energy().value() * factor),
    )
}

fn main() {
    // A 240-second slice keeps the ablation grid affordable while spanning
    // several drive phases.
    let scenario = Scenario::builder()
        .module_count(100)
        .duration_seconds(240)
        .seed(2024)
        .build()
        .expect("scenario");

    println!("# DNOR ablation over prediction horizon and overhead scale");
    println!("horizon_s,overhead_scale,energy_j,overhead_j,switches,avg_runtime_ms");
    for &horizon in &[1usize, 2, 4, 8] {
        for &scale in &[0.1_f64, 1.0, 10.0] {
            let overhead = scaled_overhead(scale);
            let scenario = Scenario::builder()
                .module_count(100)
                .duration_seconds(240)
                .seed(2024)
                .overhead(overhead)
                .build()
                .expect("scenario");
            let engine = SimulationEngine::new(scenario);
            let config = DnorConfig::new(
                InorConfig::default(),
                horizon,
                5,
                overhead,
                Seconds::new(1.0),
            )
            .expect("config");
            let report = engine.run(&mut Dnor::new(config)).expect("simulation");
            println!(
                "{horizon},{scale},{:.1},{:.3},{},{:.4}",
                report.net_energy().value(),
                report.overhead_energy().value(),
                report.switch_count(),
                report.average_runtime().value()
            );
        }
    }
    let _ = SimulationEngine::new(scenario); // keep the base scenario alive for clarity
    println!("# Longer horizons amortise evaluation cost; inflated overhead suppresses switching.");
}
