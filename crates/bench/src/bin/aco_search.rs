//! ACO search vs the greedy heuristics on degraded arrays — the regime
//! where searching the full partition space pays.
//!
//! On a healthy, homogeneous array INOR's balanced-current greedy is
//! near-optimal and a metaheuristic can only match it.  Degrade the array —
//! strong module-to-module parameter variation plus injected electrical
//! faults — and the surrogate the greedy optimises (equal group currents)
//! pulls away from the true array MPP optimum, leaving energy on the table
//! that a search recovers.  This binary sweeps a degradation ladder with
//! ACO, INOR, EHTR and the static baseline in one lineup, prints a
//! Table-I-style report per preset, writes `BENCH_aco.json` and **exits
//! non-zero** if ACO's harvested energy drops below the committed floor
//! relative to the best greedy scheme on any gated preset (`heavy` and up).
//!
//! Before any comparison it asserts the determinism contracts: one worker
//! must equal four workers bit for bit, and rerunning the same grid must
//! reproduce the report exactly — the ACO colony is seeded, so the whole
//! sweep is a pure function of the grid.

use std::fmt::Write as _;
use std::process::ExitCode;

use teg_device::VariationModel;
use teg_sim::{
    FaultProfile, FaultSeverity, RuntimePolicy, ScenarioGrid, SchemeLineup, SweepReport,
    SweepRunner,
};
use teg_units::Seconds;

/// Fixed per-decision charge: keeps every run bit-reproducible.
const CHARGE: Seconds = Seconds::new(0.002);
const MODULES: usize = 40;
const DRIVE_SECONDS: usize = 120;
const SEEDS: [u64; 4] = [7, 11, 13, 19];
const WORKERS: usize = 4;

/// The committed floor for ACO's mean net energy relative to the best
/// greedy scheme (INOR or EHTR) on every gated preset.  The colony is
/// seeded with INOR's own candidates, so per decision it can never find a
/// worse wiring; at the energy level the guarantee is kept with a little
/// headroom to spare (the snapshot in `BENCH_aco.json` shows the measured
/// advantage).  The results are seeded and bit-reproducible, so this gate
/// cannot flake — it moves only when the algorithms move.
const ADVANTAGE_FLOOR: f64 = 1.0;

struct Preset {
    name: &'static str,
    /// Module-to-module manufacturing variation (Seebeck, resistance).
    variation: (f64, f64),
    severity: FaultSeverity,
    /// Whether the preset enforces `ADVANTAGE_FLOOR` ("heavy" and up).
    gating: bool,
}

const PRESETS: [Preset; 3] = [
    Preset {
        name: "mild",
        variation: (0.05, 0.05),
        severity: FaultSeverity::light(),
        gating: false,
    },
    Preset {
        name: "heavy",
        variation: (0.20, 0.20),
        severity: FaultSeverity::severe(),
        gating: true,
    },
    Preset {
        name: "extreme",
        variation: (0.30, 0.30),
        severity: FaultSeverity::severe(),
        gating: true,
    },
];

fn grid(preset: &Preset) -> ScenarioGrid {
    let (seebeck, resistance) = preset.variation;
    ScenarioGrid::builder()
        .module_counts([MODULES])
        .seeds(SEEDS)
        .duration_seconds(DRIVE_SECONDS)
        .variations([VariationModel::new(seebeck, resistance).expect("valid tolerances")])
        .faults([FaultProfile::random(
            preset.name.to_owned(),
            preset.severity,
        )])
        // The search scheme registers through the ordinary lineup token
        // grammar — the same string works in a serve SUBMIT request.
        .lineups([
            SchemeLineup::parse("fixed:aco-field:aco+inor+ehtr+baseline")
                .expect("valid lineup token"),
        ])
        .build()
        .expect("valid grid")
}

fn runner(workers: usize) -> SweepRunner {
    SweepRunner::new()
        .workers(workers)
        .runtime_policy(RuntimePolicy::Fixed(CHARGE))
}

/// Runs the preset's grid with the determinism gates: serial ≡ parallel and
/// rerun ≡ first run, bit for bit.
fn sweep(preset: &Preset) -> SweepReport {
    let serial = runner(1).run(&grid(preset)).expect("serial sweep");
    let parallel = runner(WORKERS).run(&grid(preset)).expect("parallel sweep");
    assert_eq!(
        serial, parallel,
        "{}: the seeded search must be worker-count independent",
        preset.name
    );
    let again = runner(WORKERS).run(&grid(preset)).expect("repeat sweep");
    assert_eq!(
        parallel, again,
        "{}: the seeded search must be bit-reproducible across runs",
        preset.name
    );
    parallel
}

struct Case {
    name: &'static str,
    gating: bool,
    cells: usize,
    aco_energy: f64,
    best_greedy: String,
    best_greedy_energy: f64,
    baseline_energy: f64,
}

impl Case {
    fn advantage(&self) -> f64 {
        self.aco_energy / self.best_greedy_energy
    }
}

fn measure(preset: &Preset) -> Case {
    let report = sweep(preset);
    println!("\n## degradation: {}", preset.name);
    println!("{report}");
    let energy = |scheme: &str| {
        report
            .summary(scheme)
            .unwrap_or_else(|| panic!("{scheme} ran"))
            .mean_net_energy()
            .value()
    };
    let (best_greedy, best_greedy_energy) = [("INOR", energy("INOR")), ("EHTR", energy("EHTR"))]
        .into_iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("two greedy schemes");
    Case {
        name: preset.name,
        gating: preset.gating,
        cells: report.cells().len(),
        aco_energy: energy("ACO"),
        best_greedy: best_greedy.to_owned(),
        best_greedy_energy,
        baseline_energy: energy("Baseline"),
    }
}

fn render_json(cases: &[Case]) -> String {
    let gating_advantage = cases
        .iter()
        .filter(|c| c.gating)
        .map(Case::advantage)
        .fold(f64::INFINITY, f64::min);
    let mut out = String::from("{\n  \"bench\": \"aco_search\",\n");
    out.push_str("  \"unit\": \"mean_net_energy_joules\",\n");
    let _ = writeln!(
        out,
        "  \"modules\": {MODULES},\n  \"drive_seconds\": {DRIVE_SECONDS},\n  \"cases\": ["
    );
    for (i, case) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"preset\": \"{}\", \"cells\": {}, \"aco_energy\": {:.3}, \
             \"best_greedy\": \"{}\", \"best_greedy_energy\": {:.3}, \
             \"baseline_energy\": {:.3}, \"advantage\": {:.4}, \"gating\": {}}}{comma}",
            case.name,
            case.cells,
            case.aco_energy,
            case.best_greedy,
            case.best_greedy_energy,
            case.baseline_energy,
            case.advantage(),
            case.gating,
        );
    }
    let _ = writeln!(
        out,
        "  ],\n  \"gating_advantage\": {gating_advantage:.4},\n  \
         \"advantage_floor\": {ADVANTAGE_FLOOR}\n}}"
    );
    out
}

fn main() -> ExitCode {
    println!(
        "# ACO search vs greedy heuristics: {MODULES}-module array, {DRIVE_SECONDS}-second \
         drives, seeds {SEEDS:?}, fixed {} ms runtime charge",
        CHARGE.to_milliseconds().value()
    );

    let cases: Vec<Case> = PRESETS.iter().map(measure).collect();

    println!("\npreset,cells,aco_energy,best_greedy,best_greedy_energy,baseline_energy,advantage");
    for case in &cases {
        println!(
            "{},{},{:.3},{},{:.3},{:.3},{:.4}",
            case.name,
            case.cells,
            case.aco_energy,
            case.best_greedy,
            case.best_greedy_energy,
            case.baseline_energy,
            case.advantage()
        );
    }

    let json = render_json(&cases);
    if let Err(e) = std::fs::write("BENCH_aco.json", &json) {
        eprintln!("failed to write BENCH_aco.json: {e}");
        return ExitCode::FAILURE;
    }
    println!("# wrote BENCH_aco.json");

    let mut ok = true;
    for case in cases.iter().filter(|c| c.gating) {
        let advantage = case.advantage();
        println!(
            "# {} ACO advantage {advantage:.4}x over {} (committed floor: {ADVANTAGE_FLOOR}x)",
            case.name, case.best_greedy
        );
        if advantage < ADVANTAGE_FLOOR {
            eprintln!(
                "FAIL: {} ACO-vs-{} energy ratio {advantage:.4}x fell below the committed \
                 floor {ADVANTAGE_FLOOR}x",
                case.name, case.best_greedy
            );
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
