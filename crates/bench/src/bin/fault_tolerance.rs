//! Table I under degradation — how much of each scheme's energy gain
//! survives module, switch and sensor faults.
//!
//! For each fault severity (healthy → severe) the paper's four-scheme field
//! runs over the same drives with seeded random fault plans injected, under
//! the bit-reproducible fixed runtime policy.  The report shows each
//! scheme's mean net energy, its retention relative to its own healthy run,
//! and the fault-exposure accounting (events fired, share of decisions made
//! under active faults).

use teg_sim::{
    FaultProfile, FaultSeverity, RuntimePolicy, ScenarioGrid, SchemeLineup, SweepReport,
    SweepRunner,
};
use teg_units::Seconds;

const FIXED_CHARGE: Seconds = Seconds::new(0.002);
const MODULES: usize = 40;
const DRIVE_SECONDS: usize = 300;
const SEEDS: [u64; 2] = [7, 11];

fn sweep(label: &str, severity: FaultSeverity) -> SweepReport {
    let grid = ScenarioGrid::builder()
        .module_counts([MODULES])
        .seeds(SEEDS)
        .duration_seconds(DRIVE_SECONDS)
        .faults([if label == "healthy" {
            FaultProfile::none()
        } else {
            FaultProfile::random(label.to_owned(), severity)
        }])
        .lineups([SchemeLineup::paper_fixed(FIXED_CHARGE)])
        .build()
        .expect("valid grid");
    let report = SweepRunner::new()
        .runtime_policy(RuntimePolicy::Fixed(FIXED_CHARGE))
        .run(&grid)
        .expect("sweep");
    for cell in report.cells() {
        let plan = grid
            .scenario(&grid.cells()[cell.key().index()])
            .fault_plan();
        println!("#   {} plan: {}", cell.key(), plan);
    }
    report
}

fn main() {
    println!(
        "# Table I under degradation: {MODULES}-module array, {DRIVE_SECONDS}-second drives, \
         seeds {SEEDS:?}, fixed {} ms runtime charge",
        FIXED_CHARGE.to_milliseconds().value()
    );

    let severities = [
        ("healthy", FaultSeverity::none()),
        ("light", FaultSeverity::light()),
        ("moderate", FaultSeverity::moderate()),
        ("severe", FaultSeverity::severe()),
    ];

    let mut healthy_energy: Vec<(String, f64)> = Vec::new();
    for (label, severity) in severities {
        println!("\n## severity: {label}");
        let report = sweep(label, severity);
        if label == "healthy" {
            healthy_energy = report
                .summaries()
                .iter()
                .map(|s| (s.scheme().to_owned(), s.mean_net_energy().value()))
                .collect();
        }
        println!("{report}");
        println!("# retention vs healthy run and fault exposure:");
        for summary in report.summaries() {
            let healthy = healthy_energy
                .iter()
                .find(|(name, _)| name == summary.scheme())
                .map_or(f64::NAN, |(_, e)| *e);
            let mut fault_events = 0usize;
            let mut faulted = 0usize;
            let mut invocations = 0usize;
            for cell in report.cells() {
                if let Some(scheme_report) = cell.report().report(summary.scheme()) {
                    fault_events += scheme_report
                        .records()
                        .iter()
                        .map(teg_sim::StepRecord::fault_events)
                        .sum::<usize>();
                    faulted += scheme_report.runtime().faulted_invocations();
                    invocations += scheme_report.runtime().invocations();
                }
            }
            println!(
                "#   {:<10} {:>7.1} J  retained {:>5.1} %   fault events {:>3}   \
                 {:>5.1} % of decisions under faults",
                summary.scheme(),
                summary.mean_net_energy().value(),
                100.0 * summary.mean_net_energy().value() / healthy,
                fault_events,
                100.0 * faulted as f64 / invocations.max(1) as f64,
            );
        }
    }
}
