//! Fig. 1 — I-V and P-V output characteristics of the TGM-199-1.4-0.8 module
//! for several temperature differences, with the maximum power points marked.
//!
//! Prints one CSV block per ΔT; pipe into a plotting tool to recreate the
//! figure.

use teg_bench::paper_module;
use teg_device::{curve_family, IvCurve};
use teg_units::TemperatureDelta;

fn main() {
    let module = paper_module();
    let delta_ts = [30.0, 50.0, 70.0, 90.0, 110.0];
    let family: Vec<IvCurve> = curve_family(&module, &delta_ts, 41);

    println!("# Fig. 1 reproduction: I-V and P-V curves of TGM-199-1.4-0.8");
    println!("delta_t_k,voltage_v,current_a,power_w");
    for curve in &family {
        for point in curve.points() {
            println!(
                "{:.0},{:.4},{:.4},{:.4}",
                curve.delta_t().kelvin(),
                point.voltage().value(),
                point.current().value(),
                point.power().value()
            );
        }
    }

    println!();
    println!("# Maximum power points (the black dots of Fig. 1)");
    println!("delta_t_k,v_mpp_v,i_mpp_a,p_mpp_w");
    for curve in &family {
        let mpp = curve.mpp();
        println!(
            "{:.0},{:.4},{:.4},{:.4}",
            curve.delta_t().kelvin(),
            mpp.voltage().value(),
            mpp.current().value(),
            mpp.power().value()
        );
    }

    // Sanity echo of the qualitative shape: hotter curves dominate.
    let p30 = module.mpp(TemperatureDelta::new(30.0)).power().value();
    let p110 = module.mpp(TemperatureDelta::new(110.0)).power().value();
    println!();
    println!("# P_mpp grows from {p30:.2} W at dT=30 K to {p110:.2} W at dT=110 K");
}
