//! Fig. 5 — 1-second-ahead prediction percentage error of MLR, BPNN and SVR
//! on the drive-cycle temperature, plus the 2-second MLR error quoted in the
//! text (≤ ~0.3 %).

use teg_predict::metrics::mape;
use teg_predict::{
    BackPropagationNetwork, MultipleLinearRegression, Predictor, SupportVectorRegression,
};
use teg_thermal::DriveCycle;

fn percentage_errors(predictor: &mut dyn Predictor, values: &[f64], split: usize) -> Vec<f64> {
    predictor.fit(&values[..split]).expect("fit");
    (split..values.len())
        .map(|t| {
            let forecast = predictor.predict_next(&values[..t]).expect("prediction");
            100.0 * ((values[t] - forecast) / values[t]).abs()
        })
        .collect()
}

fn main() {
    let cycle = DriveCycle::porter_ii_800s(7).expect("drive cycle");
    let series = cycle.coolant_temperature_series();
    let values = series.values();
    let split = 600;

    let mut mlr = MultipleLinearRegression::new(5).expect("window");
    let mut bpnn = BackPropagationNetwork::new(5, 8, 42).expect("hyper-parameters");
    let mut svr = SupportVectorRegression::new(5, 42).expect("window");

    let err_mlr = percentage_errors(&mut mlr, values, split);
    let err_bpnn = percentage_errors(&mut bpnn, values, split);
    let err_svr = percentage_errors(&mut svr, values, split);

    println!("# Fig. 5 reproduction: 1-second prediction percentage error per second");
    println!("t_s,mlr_pct,bpnn_pct,svr_pct");
    for (i, ((m, b), s)) in err_mlr.iter().zip(&err_bpnn).zip(&err_svr).enumerate() {
        println!("{},{m:.5},{b:.5},{s:.5}", split + i);
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0.0_f64, f64::max);
    println!();
    println!("# summary (mean / max percentage error over the evaluation window)");
    println!(
        "MLR : mean {:.4} %, max {:.4} %",
        mean(&err_mlr),
        max(&err_mlr)
    );
    println!(
        "BPNN: mean {:.4} %, max {:.4} %",
        mean(&err_bpnn),
        max(&err_bpnn)
    );
    println!(
        "SVR : mean {:.4} %, max {:.4} %",
        mean(&err_svr),
        max(&err_svr)
    );

    // The 2-second MLR prediction the paper highlights (error around 0.3 %).
    let mut mlr2 = MultipleLinearRegression::new(5).expect("window");
    mlr2.fit(&values[..split]).expect("fit");
    let mut actual = Vec::new();
    let mut forecast = Vec::new();
    for t in split..(values.len() - 2) {
        let prediction = mlr2.forecast(&values[..t], 2).expect("forecast");
        forecast.push(prediction[1]);
        actual.push(values[t + 1]);
    }
    println!();
    println!(
        "# 2-second MLR prediction MAPE: {:.4} % (paper reports ~0.3 % peak error)",
        mape(&actual, &forecast).expect("mape")
    );
}
