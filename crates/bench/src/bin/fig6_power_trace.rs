//! Fig. 6 — output power of DNOR, INOR, EHTR and the baseline over a
//! 120-second window of the drive, produced by one lockstep comparison over
//! the window's shared thermal trace.

use teg_sim::{Comparison, Scenario};

fn main() {
    // The same 800-second scenario Table I uses, restricted to the 120-second
    // window starting at t = 300 s (well after warm-up).
    let scenario = Scenario::paper_table1(2024)
        .expect("scenario")
        .window(300, 420)
        .expect("window");
    let comparison = Comparison::paper_schemes(&scenario)
        .run()
        .expect("comparison");
    let reports = comparison.reports();

    println!("# Fig. 6 reproduction: array output power (W) over 120 s");
    println!("t_s,dnor_w,inor_w,ehtr_w,baseline_w");
    let n = reports[0].records().len();
    for i in 0..n {
        let t = reports[0].records()[i].time().value();
        let row: Vec<String> = reports
            .iter()
            .map(|r| format!("{:.3}", r.records()[i].array_power().value()))
            .collect();
        println!("{t:.0},{}", row.join(","));
    }

    println!();
    println!("# window totals");
    for report in reports {
        println!(
            "# {:<9} net energy {:>10.1} J, overhead {:>8.2} J, switches {}",
            report.scheme(),
            report.net_energy().value(),
            report.overhead_energy().value(),
            report.switch_count()
        );
    }
}
