//! Fig. 7 — ratio of each scheme's output power to the ideal power
//! `P_ideal` over the 120-second window, with DNOR's switch instants marked,
//! produced by one lockstep comparison over the window's shared thermal
//! trace.

use teg_sim::{Comparison, Scenario};

fn main() {
    let scenario = Scenario::paper_table1(2024)
        .expect("scenario")
        .window(300, 420)
        .expect("window");
    let comparison = Comparison::paper_schemes(&scenario)
        .run()
        .expect("comparison");
    let reports = comparison.reports();

    println!("# Fig. 7 reproduction: output power ratio P / P_ideal over 120 s");
    println!("t_s,dnor_ratio,inor_ratio,ehtr_ratio,baseline_ratio,dnor_switched");
    let n = reports[0].records().len();
    for i in 0..n {
        let t = reports[0].records()[i].time().value();
        let ratios: Vec<String> = reports
            .iter()
            .map(|r| format!("{:.5}", r.records()[i].ideal_ratio()))
            .collect();
        let switched = u8::from(reports[0].records()[i].switched());
        println!("{t:.0},{},{switched}", ratios.join(","));
    }

    println!();
    println!("# average ratio over the window (paper: reconfiguring schemes sit close to 1)");
    for report in reports {
        println!("# {:<9} {:.4}", report.scheme(), report.ideal_fraction());
    }
    println!(
        "# DNOR switch instants (s): {:?}",
        reports[0].switch_times()
    );
}
