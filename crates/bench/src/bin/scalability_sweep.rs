//! Scalability sweep — per-scheme decision runtime as the array grows,
//! measured end-to-end by the parallel scenario-sweep subsystem rather than
//! a hand-rolled timing loop.
//!
//! One [`ScenarioGrid`] per array size spans three drive seeds for
//! stability; the [`SweepRunner`] executes the cells with a *single* worker
//! — the schemes time their own decisions with the wall clock, and
//! concurrent cells would contend for cache and turbo headroom, inflating
//! exactly the numbers this binary publishes — and its
//! [`SweepReport`](teg_sim::SweepReport)
//! summaries provide the mean per-invocation runtime of each scheme.  The
//! output backs the paper's claim that the linear-time algorithm is the one
//! that survives on industrial-scale systems: EHTR's dynamic program blows
//! up with N while INOR stays linear.

use teg_sim::{ScenarioGrid, SchemeLineup, SimError, SweepRunner};

fn main() -> Result<(), SimError> {
    println!("# Scalability: mean per-invocation runtime (ms), 60 s drive x 3 seeds");
    println!("modules,inor_ms,dnor_ms,ehtr_ms,ehtr_over_inor");
    for &n in &[25usize, 50, 100, 200, 400] {
        let grid = ScenarioGrid::builder()
            .module_counts([n])
            .seeds([1, 2, 3])
            .duration_seconds(60)
            .lineups([SchemeLineup::paper()])
            .build()?;
        // One worker: this grid exists to *time* decisions, and parallel
        // cells would contend for the cores being measured.
        let report = SweepRunner::new().workers(1).run(&grid)?;
        let runtime_ms = |scheme: &str| {
            report
                .summary(scheme)
                .map_or(f64::NAN, |s| s.mean_runtime().value())
        };
        let (inor, dnor, ehtr) = (runtime_ms("INOR"), runtime_ms("DNOR"), runtime_ms("EHTR"));
        println!("{n},{inor:.4},{dnor:.4},{ehtr:.4},{:.1}", ehtr / inor);
    }
    println!("# INOR grows linearly with N; EHTR's dynamic program grows polynomially.");
    Ok(())
}
