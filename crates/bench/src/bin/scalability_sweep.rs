//! Scalability sweep — single-decision runtime of INOR, EHTR and DNOR as the
//! array grows, backing the paper's claim that the linear-time algorithm is
//! the one that survives on industrial-scale systems.

use std::time::Instant;

use teg_array::Configuration;
use teg_bench::{exponential_temperatures, paper_array};
use teg_reconfig::{Dnor, Ehtr, Inor, ReconfigInputs, Reconfigurer};
use teg_units::Celsius;

fn time_decisions(scheme: &mut dyn Reconfigurer, n: usize, reps: usize) -> f64 {
    let array = paper_array(n);
    let history: Vec<Vec<f64>> = (0..10)
        .map(|_| exponential_temperatures(n, 70.0, 1.5, 25.0))
        .collect();
    let inputs = ReconfigInputs::new(&array, &history, Celsius::new(25.0)).expect("inputs");
    let current = Configuration::uniform(n, (n as f64).sqrt().ceil() as usize).expect("config");
    scheme.reset();
    // Warm-up decision outside the timed region.
    scheme.decide(&inputs, &current).expect("decision");
    let start = Instant::now();
    for _ in 0..reps {
        scheme.reset();
        scheme.decide(&inputs, &current).expect("decision");
    }
    start.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn main() {
    println!("# Scalability: average single-decision runtime (ms)");
    println!("modules,inor_ms,dnor_ms,ehtr_ms,ehtr_over_inor");
    for &n in &[25usize, 50, 100, 200, 400, 800] {
        let reps = if n >= 400 { 3 } else { 10 };
        let inor = time_decisions(&mut Inor::default(), n, reps);
        let dnor = time_decisions(&mut Dnor::default(), n, reps);
        let ehtr = time_decisions(&mut Ehtr::default(), n, reps);
        println!("{n},{inor:.4},{dnor:.4},{ehtr:.4},{:.1}", ehtr / inor);
    }
    println!("# INOR grows linearly with N; EHTR's dynamic program grows polynomially.");
}
