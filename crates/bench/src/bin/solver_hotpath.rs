//! Solver hot-path microbenchmark — the candidate scan that dominates every
//! reconfiguration decision, measured on the legacy per-call path
//! (`TegArray::mpp_power` per candidate) against the compiled batch path
//! (`ArraySolver::load` + `evaluate_candidates`), and the batch path's
//! opt-in fast kernel lane against its bit-exact default.
//!
//! Emits a machine-readable `BENCH_solver.json` next to the working
//! directory (and a human-readable table on stdout) so CI can archive the
//! perf trajectory of the electrical kernel across commits.  The bit-exact
//! paths are asserted to agree **bitwise** before any timing happens, and
//! the fast lane within its documented `1e-9` relative bound, so the binary
//! doubles as a release-mode equivalence smoke check.  The process **exits
//! non-zero** if the best fast-vs-bit-exact scan speedup drops below the
//! committed floor.

use std::fmt::Write as _;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use teg_array::{ArraySolver, Configuration, TegArray};
use teg_bench::{exponential_deltas, paper_array};
use teg_reconfig::{Ehtr, Inor};
use teg_units::{KernelMode, TemperatureDelta};

/// The committed floor for the **best** fast-vs-bit-exact candidate-scan
/// speedup across the cases below.  The fast lane's chunked sums pay off
/// most on the larger arrays; smaller cases may sit near 1x, so the gate is
/// on the maximum, matching the opt-in nature of the lane.
const FAST_SPEEDUP_FLOOR: f64 = 1.2;
/// The fast solver's documented kernel-level relative error bound.
const FAST_TOLERANCE: f64 = 1e-9;

/// One measured case: a scheme's candidate set over an array size.
struct Case {
    scheme: &'static str,
    modules: usize,
    candidates: usize,
    legacy_ns: f64,
    compiled_ns: f64,
    fast_ns: f64,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.legacy_ns / self.compiled_ns
    }

    fn fast_speedup(&self) -> f64 {
        self.compiled_ns / self.fast_ns
    }
}

/// Times one full candidate scan: best-of-seven samples of an adaptively
/// sized batch, reported as nanoseconds per scan.
fn time_scan_ns<F: FnMut()>(mut scan: F) -> f64 {
    let start = Instant::now();
    scan();
    let estimate = start.elapsed().max(Duration::from_nanos(100));
    let budget = Duration::from_millis(25).as_secs_f64();
    let iters = ((budget / estimate.as_secs_f64()).ceil() as u64).clamp(1, 1_000_000);
    let mut best = f64::INFINITY;
    for _ in 0..7 {
        let start = Instant::now();
        for _ in 0..iters {
            scan();
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best * 1e9
}

/// The candidate set a scheme would scan: one partition per feasible group
/// count inside the charger-derived window.
fn candidates_for(
    scheme: &'static str,
    array: &TegArray,
    deltas: &[TemperatureDelta],
) -> Vec<Configuration> {
    let inor = Inor::default();
    let currents = array.mpp_currents(deltas).expect("deltas match the array");
    let (n_min, n_max) = inor.group_bounds(array, deltas);
    (n_min..=n_max)
        .map(|n| match scheme {
            "INOR" => Inor::balanced_partition(&currents, n),
            _ => Ehtr::optimal_partition(&currents, n),
        })
        .collect()
}

fn measure(scheme: &'static str, modules: usize) -> Case {
    let array = paper_array(modules);
    let deltas = exponential_deltas(modules, 70.0, 0.8);
    let candidates = candidates_for(scheme, &array, &deltas);

    // Equivalence gates: the batch kernel must reproduce the legacy path bit
    // for bit, and the fast lane must stay inside its documented relative
    // bound, before their speed means anything.
    let mut solver = ArraySolver::new();
    let mut powers = Vec::new();
    solver.load(&array, &deltas, None).expect("load");
    solver
        .evaluate_candidates(&candidates, &mut powers)
        .expect("batch evaluation");
    for (candidate, batch) in candidates.iter().zip(&powers) {
        let legacy = array.mpp_power(candidate, &deltas).expect("legacy solve");
        assert_eq!(
            batch.value().to_bits(),
            legacy.value().to_bits(),
            "batch kernel diverged from the legacy path on {scheme} n={modules}"
        );
    }
    let mut fast_solver = ArraySolver::with_mode(KernelMode::Fast);
    let mut fast_powers = Vec::new();
    fast_solver.load(&array, &deltas, None).expect("fast load");
    fast_solver
        .evaluate_candidates(&candidates, &mut fast_powers)
        .expect("fast batch evaluation");
    for (exact, fast) in powers.iter().zip(&fast_powers) {
        let (e, f) = (exact.value(), fast.value());
        let scale = e.abs().max(f.abs()).max(1e-12);
        assert!(
            (e - f).abs() <= FAST_TOLERANCE * scale,
            "fast kernel left its tolerance on {scheme} n={modules}: {e} vs {f}"
        );
    }

    let legacy_ns = time_scan_ns(|| {
        let mut acc = 0.0;
        for candidate in &candidates {
            acc += array
                .mpp_power(black_box(candidate), &deltas)
                .expect("legacy solve")
                .value();
        }
        black_box(acc);
    });
    let compiled_ns = time_scan_ns(|| {
        solver.load(&array, &deltas, None).expect("load");
        solver
            .evaluate_candidates(black_box(&candidates), &mut powers)
            .expect("batch evaluation");
        black_box(&powers);
    });
    let fast_ns = time_scan_ns(|| {
        fast_solver.load(&array, &deltas, None).expect("fast load");
        fast_solver
            .evaluate_candidates(black_box(&candidates), &mut fast_powers)
            .expect("fast batch evaluation");
        black_box(&fast_powers);
    });

    Case {
        scheme,
        modules,
        candidates: candidates.len(),
        legacy_ns,
        compiled_ns,
        fast_ns,
    }
}

fn render_json(cases: &[Case]) -> String {
    let min_speedup = cases
        .iter()
        .map(Case::speedup)
        .fold(f64::INFINITY, f64::min);
    let mean_speedup = cases.iter().map(Case::speedup).sum::<f64>() / cases.len().max(1) as f64;
    let max_fast_speedup = cases
        .iter()
        .map(Case::fast_speedup)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut out = String::from("{\n  \"bench\": \"solver_hotpath\",\n");
    out.push_str("  \"unit\": \"ns_per_candidate_scan\",\n  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"scheme\": \"{}\", \"modules\": {}, \"candidates\": {}, \
             \"legacy_ns\": {:.1}, \"compiled_ns\": {:.1}, \"fast_ns\": {:.1}, \
             \"speedup\": {:.2}, \"fast_speedup\": {:.2}}}{comma}",
            case.scheme,
            case.modules,
            case.candidates,
            case.legacy_ns,
            case.compiled_ns,
            case.fast_ns,
            case.speedup(),
            case.fast_speedup(),
        );
    }
    let _ = writeln!(
        out,
        "  ],\n  \"min_speedup\": {min_speedup:.2},\n  \
         \"mean_speedup\": {mean_speedup:.2},\n  \
         \"max_fast_speedup\": {max_fast_speedup:.2},\n  \
         \"fast_speedup_floor\": {FAST_SPEEDUP_FLOOR}\n}}"
    );
    out
}

fn main() -> ExitCode {
    let mut cases = Vec::new();
    for modules in [50usize, 100, 200] {
        cases.push(measure("INOR", modules));
    }
    for modules in [50usize, 100] {
        cases.push(measure("EHTR", modules));
    }

    println!("# Candidate-scan hot path: compiled batch kernel vs legacy per-call solves");
    println!("scheme,modules,candidates,legacy_ns,compiled_ns,fast_ns,speedup,fast_speedup");
    for case in &cases {
        println!(
            "{},{},{},{:.1},{:.1},{:.1},{:.2},{:.2}",
            case.scheme,
            case.modules,
            case.candidates,
            case.legacy_ns,
            case.compiled_ns,
            case.fast_ns,
            case.speedup(),
            case.fast_speedup()
        );
    }
    let min = cases
        .iter()
        .map(Case::speedup)
        .fold(f64::INFINITY, f64::min);
    println!("# min speedup {min:.2}x (acceptance floor: 2x)");
    let max_fast = cases
        .iter()
        .map(Case::fast_speedup)
        .fold(f64::NEG_INFINITY, f64::max);
    println!("# best fast-lane speedup {max_fast:.2}x (committed floor: {FAST_SPEEDUP_FLOOR}x)");

    let json = render_json(&cases);
    if let Err(e) = std::fs::write("BENCH_solver.json", &json) {
        eprintln!("failed to write BENCH_solver.json: {e}");
        return ExitCode::FAILURE;
    }
    println!("# wrote BENCH_solver.json");

    if max_fast < FAST_SPEEDUP_FLOOR {
        eprintln!(
            "FAIL: best fast-vs-bit-exact scan speedup {max_fast:.2}x fell below the \
             committed floor {FAST_SPEEDUP_FLOOR}x"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
