//! Sweep hot-path benchmark — end-to-end cells/second of a scenario sweep
//! with the cross-cell thermal trace cache on and off, and with the opt-in
//! fast kernel lane against the bit-exact default.
//!
//! PR 4's `solver_hotpath` snapshot covers the electrical candidate scan;
//! this binary extends the perf trajectory to the full sweep pipeline, where
//! the radiator solve is the dominant shared cost and the EHTR partition
//! search dominates the paper lineup.  Before any timing it asserts the
//! correctness contracts: the cached and uncached (isolated-trace) sweeps
//! must produce identical cells and summaries, one worker must equal four
//! workers bit for bit, and the fast-lane sweep must reproduce the bit-exact
//! per-scheme summaries within a 1% relative bound.  It then times the
//! configurations end to end, prints a table, writes `BENCH_sweep.json` and
//! **exits non-zero** if the headline grid's cached-vs-uncached speedup, a
//! fast-gated grid's fast-vs-bit-exact speedup, or a presolve-gated grid's
//! planner-on throughput drops below its committed floor — so CI catches a
//! regressing cache, fast lane, or decision/pre-solve pipeline.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use teg_sim::{
    FaultProfile, FaultSeverity, RuntimePolicy, ScenarioGrid, SchemeLineup, SweepRunner,
};
use teg_units::{KernelMode, Seconds};

/// Fixed per-decision charge: keeps every run bit-reproducible so the
/// equivalence gates below are exact.
const CHARGE: Seconds = Seconds::new(0.002);
/// Worker count used for the timed runs (fixed for comparable snapshots).
const WORKERS: usize = 4;
/// The committed floor for the headline (gating) grid's cached-vs-uncached
/// speedup.  The snapshot in `BENCH_sweep.json` shows the measured value;
/// the floor is deliberately conservative so CI noise cannot flake the gate.
const SPEEDUP_FLOOR: f64 = 1.5;
/// The committed floor for the fast-gated grids' fast-vs-bit-exact speedup
/// (both cached).  Re-based from 1.3 when the reference EHTR partition DP
/// adopted the fast lane's flat scratch layout and a reachability bound
/// (bit-identical outputs, pinned by the golden traces): the paper-field
/// grid's fast edge was almost entirely that layout difference and is now
/// ~1.0x, so the gate moved to the monitoring grid, where the fast thermal
/// sampling path still carries a measured 1.13–1.16x.  The floor sits below
/// the worst measured value so CI noise cannot flake the gate.
const FAST_SPEEDUP_FLOOR: f64 = 1.05;
/// The committed end-to-end throughput of the paper-field grid at 4 workers
/// as of the PR-8 snapshot (cached, bit-exact, demand-solved traces), in
/// cells per second.  The presolve gate below holds the planner-enabled run
/// to a multiple of this absolute baseline rather than to a same-run ratio,
/// so the gate tracks the cumulative decision-memo + planner win.
const PRESOLVE_BASELINE_CPS: f64 = 39.7;
/// Committed floor on `presolve_cells_per_s / PRESOLVE_BASELINE_CPS` for
/// presolve-gated grids.
const PRESOLVE_FLOOR: f64 = 2.0;
/// Relative bound on the per-scheme summary statistics between the fast and
/// bit-exact sweeps.  Per-kernel error is `1e-9`, but the fast solver's
/// reordered sums may legally flip near-tie candidate decisions, moving
/// delivered energy by up to a few percent on a single cell; averaged over a
/// grid the summaries stay well inside 1%.
const FAST_SUMMARY_TOLERANCE: f64 = 1e-2;

struct GridSpec {
    name: &'static str,
    /// Whether this case enforces `SPEEDUP_FLOOR` (cache gate).
    gating: bool,
    /// Whether this case enforces `FAST_SPEEDUP_FLOOR` (fast-lane gate).
    fast_gating: bool,
    /// Whether this case enforces `PRESOLVE_FLOOR` against
    /// `PRESOLVE_BASELINE_CPS` (pre-solve planner gate).
    presolve_gating: bool,
    build: fn(bool, KernelMode) -> ScenarioGrid,
}

/// The headline grid: a seed × fault-severity matrix over the paper's
/// 100-module array, replayed by the static field lineup (the monitoring
/// workload whose per-step cost is dominated by the thermal solve).  Thirty-three
/// of its 36 samples differ only by fault profile, so the cache
/// collapses 36 trace solves to 3.
fn monitoring_grid(shared: bool, mode: KernelMode) -> ScenarioGrid {
    let builder = ScenarioGrid::builder()
        .module_counts([100])
        .seeds([1, 2, 3])
        .duration_seconds(160)
        .kernel_mode(mode)
        .faults([FaultProfile::none()].into_iter().chain((0..11).map(|i| {
            // Electrical-degradation variants (aging derates and one
            // open circuit), deterministic in the cell coordinates.
            // All eleven replay the same radiator inputs as the healthy
            // profile, so they share its thermal key.
            FaultProfile::parameterised(format!("degraded-{i}"), move |modules, duration, seed| {
                let at = |k: usize| (k * duration / 4).min(duration - 1);
                let module = |k: usize| (seed as usize + i as usize * 3 + k * 7) % modules;
                teg_sim::FaultPlan::new(vec![
                    teg_sim::FaultEvent::new(
                        at(1),
                        teg_sim::FaultAction::Module {
                            module: module(0),
                            fault: teg_array::ModuleFault::Derated(0.5 + 0.04 * i as f64),
                        },
                    ),
                    teg_sim::FaultEvent::new(
                        at(2),
                        teg_sim::FaultAction::Module {
                            module: module(1),
                            fault: teg_array::ModuleFault::OpenCircuit,
                        },
                    ),
                    teg_sim::FaultEvent::new(
                        at(3),
                        teg_sim::FaultAction::ModuleRepair { module: module(1) },
                    ),
                ])
            })
        })))
        .lineups([SchemeLineup::parameterised("static-field", |n| {
            vec![teg_reconfig::SchemeSpec::baseline_square_grid(n)]
        })]);
    let builder = if shared {
        builder
    } else {
        builder.isolated_traces()
    };
    builder.build().expect("monitoring grid")
}

/// A full paper-lineup grid: all four schemes per cell.  The electrical
/// candidate search — above all the EHTR partition DP — dominates its
/// end-to-end cost, which makes it the gating case for the pre-solve
/// planner's absolute-throughput floor (the cumulative decision-memo and
/// DP-layout wins are what move this grid).
fn paper_grid(shared: bool, mode: KernelMode) -> ScenarioGrid {
    let builder = ScenarioGrid::builder()
        .module_counts([40])
        .seeds([1, 2])
        .duration_seconds(120)
        .kernel_mode(mode)
        .faults([
            FaultProfile::none(),
            FaultProfile::random("moderate", FaultSeverity::moderate()),
            FaultProfile::random("severe", FaultSeverity::severe()),
        ])
        .lineups([SchemeLineup::paper_fixed(CHARGE)]);
    let builder = if shared {
        builder
    } else {
        builder.isolated_traces()
    };
    builder.build().expect("paper grid")
}

struct Case {
    name: &'static str,
    gating: bool,
    fast_gating: bool,
    presolve_gating: bool,
    cells: usize,
    samples: usize,
    unique_solves: usize,
    isolated_solves: usize,
    presolve_planned: usize,
    presolve_solved: usize,
    uncached_cps: f64,
    cached_cps: f64,
    fast_cps: f64,
    presolve_cps: f64,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.cached_cps / self.uncached_cps
    }

    fn fast_speedup(&self) -> f64 {
        self.fast_cps / self.cached_cps
    }

    fn presolve_ratio(&self) -> f64 {
        self.presolve_cps / PRESOLVE_BASELINE_CPS
    }
}

/// Runner for the legacy columns: planner off, so `uncached_cps`,
/// `cached_cps` and `fast_cps` keep the meaning of earlier snapshots
/// (traces demand-solved by the first cell that needs them).
fn runner(workers: usize) -> SweepRunner {
    SweepRunner::new()
        .workers(workers)
        .runtime_policy(RuntimePolicy::Fixed(CHARGE))
        .presolve(false)
}

/// Runner for the `presolve_cells_per_s` column: the default planner-on
/// configuration that `SweepRunner::new()` ships with.
fn presolve_runner(workers: usize) -> SweepRunner {
    SweepRunner::new()
        .workers(workers)
        .runtime_policy(RuntimePolicy::Fixed(CHARGE))
}

fn relative_close(a: f64, b: f64, context: &str) {
    let scale = a.abs().max(b.abs()).max(1e-12);
    assert!(
        (a - b).abs() <= FAST_SUMMARY_TOLERANCE * scale,
        "{context}: {a} vs {b} (relative {})",
        (a - b).abs() / scale
    );
}

/// Best-of-N end-to-end run times for all four timed configurations,
/// rebuilding a cold grid outside the timed region each iteration so every
/// run pays its own thermal solves.  The configurations are interleaved
/// within each iteration — a transient load spike on shared hardware then
/// hits every configuration about equally, which keeps the speedup *ratios*
/// the gates check far more stable than timing each configuration in its
/// own best-of-N window.
fn time_runs_secs(build: fn(bool, KernelMode) -> ScenarioGrid) -> [f64; 4] {
    // (shared, mode, planner-on) per slot: uncached, cached, fast, presolve.
    let configs = [
        (false, KernelMode::BitExact, false),
        (true, KernelMode::BitExact, false),
        (true, KernelMode::Fast, false),
        (true, KernelMode::BitExact, true),
    ];
    let mut best = [f64::INFINITY; 4];
    for _ in 0..5 {
        for (slot, &(shared, mode, presolve)) in configs.iter().enumerate() {
            let grid = build(shared, mode);
            let sweep = if presolve {
                presolve_runner(WORKERS)
            } else {
                runner(WORKERS)
            };
            let start = Instant::now();
            let report = sweep.run(&grid).expect("sweep");
            let elapsed = start.elapsed().as_secs_f64();
            assert!(!report.cells().is_empty());
            best[slot] = best[slot].min(elapsed);
        }
    }
    best
}

fn measure(spec: &GridSpec) -> Case {
    // Correctness gates first: sharing must be observationally invisible
    // (identical cells and summaries cached vs isolated; the solve *count*
    // legitimately differs), worker-count independent, and the fast lane
    // must reproduce the bit-exact summaries within the documented bound.
    let exact = KernelMode::BitExact;
    let cached_serial = runner(1).run(&(spec.build)(true, exact)).expect("serial");
    let cached_parallel = runner(WORKERS)
        .run(&(spec.build)(true, exact))
        .expect("parallel");
    let isolated = runner(WORKERS)
        .run(&(spec.build)(false, exact))
        .expect("isolated");
    assert_eq!(
        cached_serial, cached_parallel,
        "{}: cached sweep must be worker-count independent",
        spec.name
    );
    assert_eq!(
        cached_parallel.cells(),
        isolated.cells(),
        "{}: trace sharing changed a cell report",
        spec.name
    );
    assert_eq!(
        cached_parallel.summaries(),
        isolated.summaries(),
        "{}: trace sharing changed a summary",
        spec.name
    );
    let presolved = presolve_runner(WORKERS)
        .run(&(spec.build)(true, exact))
        .expect("presolved sweep");
    assert_eq!(
        cached_parallel, presolved,
        "{}: the pre-solve planner changed the report",
        spec.name
    );
    let stats = presolved
        .presolve()
        .copied()
        .expect("planner-on run records presolve stats");
    let fast = runner(WORKERS)
        .run(&(spec.build)(true, KernelMode::Fast))
        .expect("fast sweep");
    assert_eq!(fast.summaries().len(), cached_parallel.summaries().len());
    for (e, f) in cached_parallel.summaries().iter().zip(fast.summaries()) {
        assert_eq!(e.scheme(), f.scheme());
        relative_close(
            e.mean_net_energy().value(),
            f.mean_net_energy().value(),
            &format!("{}: {} fast-lane mean net energy", spec.name, e.scheme()),
        );
        relative_close(
            e.mean_power_ratio(),
            f.mean_power_ratio(),
            &format!("{}: {} fast-lane mean power ratio", spec.name, e.scheme()),
        );
    }

    let shared_grid = (spec.build)(true, exact);
    let isolated_grid = (spec.build)(false, exact);
    let [uncached_secs, cached_secs, fast_secs, presolve_secs] = time_runs_secs(spec.build);
    let cells = shared_grid.len();
    Case {
        name: spec.name,
        gating: spec.gating,
        fast_gating: spec.fast_gating,
        presolve_gating: spec.presolve_gating,
        cells,
        samples: shared_grid.samples().len(),
        unique_solves: shared_grid.expected_thermal_solves(),
        isolated_solves: isolated_grid.expected_thermal_solves(),
        presolve_planned: stats.planned(),
        presolve_solved: stats.solved(),
        uncached_cps: cells as f64 / uncached_secs,
        cached_cps: cells as f64 / cached_secs,
        fast_cps: cells as f64 / fast_secs,
        presolve_cps: cells as f64 / presolve_secs,
    }
}

fn render_json(cases: &[Case]) -> String {
    let gating_speedup = cases
        .iter()
        .filter(|c| c.gating)
        .map(Case::speedup)
        .fold(f64::INFINITY, f64::min);
    let fast_gating_speedup = cases
        .iter()
        .filter(|c| c.fast_gating)
        .map(Case::fast_speedup)
        .fold(f64::INFINITY, f64::min);
    let presolve_gating_ratio = cases
        .iter()
        .filter(|c| c.presolve_gating)
        .map(Case::presolve_ratio)
        .fold(f64::INFINITY, f64::min);
    let mut out = String::from("{\n  \"bench\": \"sweep_hotpath\",\n");
    out.push_str("  \"unit\": \"cells_per_second\",\n");
    let _ = writeln!(out, "  \"workers\": {WORKERS},\n  \"cases\": [");
    for (i, case) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"grid\": \"{}\", \"cells\": {}, \"samples\": {}, \
             \"unique_thermal_solves\": {}, \"isolated_thermal_solves\": {}, \
             \"presolve_planned\": {}, \"presolve_solved\": {}, \
             \"uncached_cells_per_s\": {:.1}, \"cached_cells_per_s\": {:.1}, \
             \"fast_cells_per_s\": {:.1}, \"presolve_cells_per_s\": {:.1}, \
             \"speedup\": {:.2}, \"fast_speedup\": {:.2}, \
             \"gating\": {}, \"fast_gating\": {}, \
             \"presolve_gating\": {}}}{comma}",
            case.name,
            case.cells,
            case.samples,
            case.unique_solves,
            case.isolated_solves,
            case.presolve_planned,
            case.presolve_solved,
            case.uncached_cps,
            case.cached_cps,
            case.fast_cps,
            case.presolve_cps,
            case.speedup(),
            case.fast_speedup(),
            case.gating,
            case.fast_gating,
            case.presolve_gating,
        );
    }
    let _ = writeln!(
        out,
        "  ],\n  \"gating_speedup\": {gating_speedup:.2},\n  \
         \"speedup_floor\": {SPEEDUP_FLOOR},\n  \
         \"fast_gating_speedup\": {fast_gating_speedup:.2},\n  \
         \"fast_speedup_floor\": {FAST_SPEEDUP_FLOOR},\n  \
         \"presolve_baseline_cells_per_s\": {PRESOLVE_BASELINE_CPS},\n  \
         \"presolve_gating_ratio\": {presolve_gating_ratio:.2},\n  \
         \"presolve_floor\": {PRESOLVE_FLOOR}\n}}"
    );
    out
}

fn main() -> ExitCode {
    let specs = [
        GridSpec {
            name: "monitoring-100mod",
            gating: true,
            fast_gating: true,
            presolve_gating: false,
            build: monitoring_grid,
        },
        GridSpec {
            name: "paper-field-40mod",
            gating: false,
            fast_gating: false,
            presolve_gating: true,
            build: paper_grid,
        },
    ];
    let cases: Vec<Case> = specs.iter().map(measure).collect();

    println!("# Sweep hot path: shared trace cache, fast kernel lane, pre-solve planner");
    println!(
        "grid,cells,samples,unique_solves,isolated_solves,presolve_planned,presolve_solved,\
         uncached_cps,cached_cps,fast_cps,presolve_cps,speedup,fast_speedup"
    );
    for case in &cases {
        println!(
            "{},{},{},{},{},{},{},{:.1},{:.1},{:.1},{:.1},{:.2},{:.2}",
            case.name,
            case.cells,
            case.samples,
            case.unique_solves,
            case.isolated_solves,
            case.presolve_planned,
            case.presolve_solved,
            case.uncached_cps,
            case.cached_cps,
            case.fast_cps,
            case.presolve_cps,
            case.speedup(),
            case.fast_speedup()
        );
    }

    let json = render_json(&cases);
    if let Err(e) = std::fs::write("BENCH_sweep.json", &json) {
        eprintln!("failed to write BENCH_sweep.json: {e}");
        return ExitCode::FAILURE;
    }
    println!("# wrote BENCH_sweep.json");

    let mut ok = true;
    for case in cases.iter().filter(|c| c.gating) {
        let speedup = case.speedup();
        println!(
            "# {} cache speedup {speedup:.2}x (committed floor: {SPEEDUP_FLOOR}x)",
            case.name
        );
        if speedup < SPEEDUP_FLOOR {
            eprintln!(
                "FAIL: {} cached-vs-uncached speedup {speedup:.2}x fell below the \
                 committed floor {SPEEDUP_FLOOR}x",
                case.name
            );
            ok = false;
        }
    }
    for case in cases.iter().filter(|c| c.fast_gating) {
        let speedup = case.fast_speedup();
        println!(
            "# {} fast-lane speedup {speedup:.2}x (committed floor: {FAST_SPEEDUP_FLOOR}x)",
            case.name
        );
        if speedup < FAST_SPEEDUP_FLOOR {
            eprintln!(
                "FAIL: {} fast-vs-bit-exact speedup {speedup:.2}x fell below the \
                 committed floor {FAST_SPEEDUP_FLOOR}x",
                case.name
            );
            ok = false;
        }
    }
    for case in cases.iter().filter(|c| c.presolve_gating) {
        let ratio = case.presolve_ratio();
        println!(
            "# {} planner-on throughput {:.1} cells/s = {ratio:.2}x the committed \
             PR-8 baseline {PRESOLVE_BASELINE_CPS} cells/s (floor: {PRESOLVE_FLOOR}x)",
            case.name, case.presolve_cps
        );
        if ratio < PRESOLVE_FLOOR {
            eprintln!(
                "FAIL: {} planner-on throughput {:.1} cells/s is {ratio:.2}x the \
                 committed baseline {PRESOLVE_BASELINE_CPS} cells/s, below the \
                 floor {PRESOLVE_FLOOR}x",
                case.name, case.presolve_cps
            );
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
