//! Table I — total output energy, switching overhead and average runtime of
//! DNOR, INOR, EHTR and the baseline over the full 800-second drive with a
//! 100-module array.

use teg_reconfig::{Dnor, Ehtr, Inor, Reconfigurer, StaticBaseline};
use teg_sim::{Scenario, SimulationEngine};

fn main() {
    let scenario = Scenario::paper_table1(2024).expect("scenario");
    let engine = SimulationEngine::new(scenario);

    let mut schemes: Vec<Box<dyn Reconfigurer>> = vec![
        Box::new(Dnor::default()),
        Box::new(Inor::default()),
        Box::new(Ehtr::default()),
        Box::new(StaticBaseline::grid_10x10()),
    ];

    println!("# Table I reproduction: 800-second drive, 100-module array");
    println!(
        "{:<10} {:>16} {:>18} {:>12} {:>18} {:>14}",
        "scheme", "energy (J)", "overhead (J)", "switches", "avg runtime (ms)", "ideal frac"
    );
    let mut rows = Vec::new();
    for scheme in &mut schemes {
        let report = engine.run(scheme.as_mut()).expect("simulation");
        let (energy, overhead, runtime) = report.table1_row();
        println!(
            "{:<10} {:>16.1} {:>18.2} {:>12} {:>18.4} {:>14.4}",
            report.scheme(),
            energy,
            overhead,
            report.switch_count(),
            runtime,
            report.ideal_fraction()
        );
        rows.push((report.scheme().to_owned(), energy, overhead, runtime));
    }

    // Echo the paper's headline ratios for quick comparison.
    let find = |name: &str| rows.iter().find(|r| r.0 == name).expect("scheme present");
    let dnor = find("DNOR");
    let inor = find("INOR");
    let ehtr = find("EHTR");
    let baseline = find("Baseline");
    println!();
    println!("# headline ratios (paper values in parentheses)");
    println!(
        "# DNOR vs baseline energy gain : {:+.1} %   (paper: +30 %)",
        100.0 * (dnor.1 / baseline.1 - 1.0)
    );
    println!(
        "# EHTR / DNOR overhead ratio   : {:.0}x      (paper: ~100x)",
        ehtr.2 / dnor.2.max(1e-9)
    );
    println!(
        "# EHTR / INOR runtime ratio    : {:.1}x      (paper: ~8x)",
        ehtr.3 / inor.3.max(1e-9)
    );
    println!(
        "# EHTR / DNOR runtime ratio    : {:.1}x      (paper: ~13x)",
        ehtr.3 / dnor.3.max(1e-9)
    );
}
