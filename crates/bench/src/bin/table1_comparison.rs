//! Table I — total output energy, switching overhead and average runtime of
//! DNOR, INOR, EHTR and the baseline over the full 800-second drive with a
//! 100-module array, produced by one lockstep [`Comparison`] pass over the
//! shared thermal trace.

use teg_reconfig::SchemeSpec;
use teg_sim::{Comparison, Scenario};

fn main() {
    let scenario = Scenario::paper_table1(2024).expect("scenario");
    let comparison = Comparison::from_specs(&scenario, &SchemeSpec::paper_field(100))
        .run()
        .expect("comparison");

    println!("# Table I reproduction: 800-second drive, 100-module array");
    println!(
        "# thermal solves: {} (one per drive second, shared by all four schemes)",
        scenario.thermal_solve_count()
    );
    println!("{}", comparison.table1());

    // Echo the paper's headline ratios for quick comparison.
    let row = |name: &str| comparison.report(name).expect("scheme present");
    let dnor = row("DNOR");
    let inor = row("INOR");
    let ehtr = row("EHTR");
    let baseline = row("Baseline");
    println!("# headline ratios (paper values in parentheses)");
    println!(
        "# DNOR vs baseline energy gain : {:+.1} %   (paper: +30 %)",
        100.0 * (dnor.net_energy().value() / baseline.net_energy().value() - 1.0)
    );
    println!(
        "# EHTR / DNOR overhead ratio   : {:.0}x      (paper: ~100x)",
        ehtr.overhead_energy().value() / dnor.overhead_energy().value().max(1e-9)
    );
    println!(
        "# EHTR / INOR runtime ratio    : {:.1}x      (paper: ~8x)",
        ehtr.average_runtime().value() / inor.average_runtime().value().max(1e-9)
    );
    println!(
        "# EHTR / DNOR runtime ratio    : {:.1}x      (paper: ~13x)",
        ehtr.average_runtime().value() / dnor.average_runtime().value().max(1e-9)
    );
}
