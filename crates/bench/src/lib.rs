//! Shared helpers for the benchmark harness and the experiment binaries that
//! regenerate every table and figure of the paper.
//!
//! Each binary under `src/bin/` reproduces one artefact:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `fig1_iv_pv` | Fig. 1 — I-V / P-V characteristics of the TGM-199-1.4-0.8 |
//! | `fig5_prediction_error` | Fig. 5 — 1-second prediction error of MLR/BPNN/SVR |
//! | `fig6_power_trace` | Fig. 6 — output power of the four schemes over 120 s |
//! | `fig7_power_ratio` | Fig. 7 — output power ratio against `P_ideal` |
//! | `table1_comparison` | Table I — 800-second energy / overhead / runtime |
//! | `scalability_sweep` | §I/§VI scalability claim — runtime vs array size |
//! | `ablation_dnor` | (ours) DNOR sensitivity to horizon and overhead |
//!
//! The Criterion benches under `benches/` measure the runtime column of
//! Table I and the scalability trend with statistical rigour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use teg_array::TegArray;
use teg_device::{TegDatasheet, TegModule};
use teg_units::TemperatureDelta;

/// The module model every experiment uses (the paper's TGM-199-1.4-0.8).
#[must_use]
pub fn paper_module() -> TegModule {
    TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8())
}

/// A uniform array of `n` paper modules.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn paper_array(n: usize) -> TegArray {
    TegArray::uniform(paper_module(), n)
}

/// An exponential hot-to-cold ΔT profile like the radiator produces:
/// `ΔT_i = hot · exp(−decay · i / n)`.
#[must_use]
pub fn exponential_deltas(n: usize, hot: f64, decay: f64) -> Vec<TemperatureDelta> {
    (0..n)
        .map(|i| TemperatureDelta::new(hot * (-(i as f64) * decay / n as f64).exp()))
        .collect()
}

/// The same profile expressed as module temperatures (°C) above an ambient.
#[must_use]
pub fn exponential_temperatures(n: usize, hot: f64, decay: f64, ambient: f64) -> Vec<f64> {
    exponential_deltas(n, hot, decay)
        .into_iter()
        .map(|dt| ambient + dt.kelvin())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_consistent_shapes() {
        let array = paper_array(10);
        assert_eq!(array.len(), 10);
        let deltas = exponential_deltas(10, 70.0, 1.0);
        assert_eq!(deltas.len(), 10);
        assert!(deltas[0] > deltas[9]);
        let temps = exponential_temperatures(10, 70.0, 1.0, 25.0);
        assert!((temps[0] - 95.0).abs() < 1e-9);
        assert!(temps[9] > 25.0);
    }
}
