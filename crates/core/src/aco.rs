//! ACO — ant-colony reconfiguration search (metaheuristic scheme family).
//!
//! The paper's schemes (INOR, EHTR, DNOR) scan a small fixed candidate set
//! per period: one greedily balanced partition per feasible group count.
//! On heavily degraded arrays — strong module-to-module parameter variation
//! on top of electrical faults — the surrogate those heuristics optimise
//! (balanced group currents) diverges from the true array MPP power, and
//! a search over the full partition space finds strictly better wirings.
//!
//! [`AcoReconfigurer`] runs an ant-colony optimisation over contiguous
//! partitions each period:
//!
//! * a **pheromone table** `τ[module][group]` over module→group
//!   assignments, evaporated each generation and reinforced along the
//!   generation-best and global-best partitions;
//! * **visibility** derived from the per-module ΔT via the module MPP
//!   currents: ants prefer to close a group once its summed MPP current
//!   reaches the ideal share `Σ I_MPP / n`, which is exactly the greedy
//!   signal INOR uses — the colony starts from the heuristic's intuition
//!   and explores around it;
//! * each generation's ant population is scored in **one SoA batch**
//!   through [`ArraySolver::evaluate_candidates_with_memo`], whose old/new
//!   incremental table ([`GroupSumMemo`]) reuses every group-range sum that
//!   repeats across ants and generations, so ants differing from the
//!   incumbent in a few boundaries cost hash lookups, not re-solves.
//!
//! The colony is seeded memetically with both greedy heuristics' candidate
//! sets — INOR's balanced partitions and EHTR's least-imbalance DP
//! partitions for every feasible group count — plus the currently applied
//! wiring, so the search result is **never worse than the best greedy
//! proposal** under the same kernel lane.
//!
//! # Determinism
//!
//! All randomness flows through a seeded ChaCha generator owned by the
//! scheme: the same [`AcoConfig::seed`] produces bit-identical decision
//! schedules, [`Reconfigurer::reset`] rewinds the generator to the seed,
//! and decisions are pure functions of telemetry — wall clock is read only
//! for the *reported* computation time, never for control flow.  Sweeps
//! therefore satisfy `workers=1 ≡ workers=4`, because every cell builds its
//! own scheme instance from the same [`SchemeSpec`](crate::SchemeSpec).

use std::time::Instant;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use teg_array::{ArraySolver, Configuration, GroupSumMemo, TegArray};
use teg_units::{Amps, KernelMode, Seconds, TemperatureDelta, Watts};

use crate::ehtr::Ehtr;
use crate::error::ReconfigError;
use crate::inor::{Inor, InorConfig};
use crate::telemetry::TelemetryWindow;
use crate::traits::{ReconfigDecision, Reconfigurer};

/// Pheromone floor and ceiling: evaporation can never extinguish a choice
/// entirely, and reinforcement can never lock the colony into one.
const TAU_MIN: f64 = 0.01;
const TAU_MAX: f64 = 10.0;

/// Tuning parameters of the ACO search.
///
/// The electrical feasibility window (which group counts keep the charger
/// efficient) is delegated to an embedded [`InorConfig`], so ACO, INOR and
/// EHTR compare under identical converter constraints and periods.
#[derive(Debug, Clone, PartialEq)]
pub struct AcoConfig {
    inor: InorConfig,
    generations: usize,
    ants: usize,
    evaporation: f64,
    greediness: f64,
    seed: u64,
}

impl AcoConfig {
    /// Creates a configuration from the shared electrical tuning
    /// ([`InorConfig`]) and the colony parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigError::InvalidParameter`] when `generations` or
    /// `ants` is zero, `evaporation` is not in `(0, 1)`, or `greediness`
    /// is not in `[0, 1]`.
    pub fn new(
        inor: InorConfig,
        generations: usize,
        ants: usize,
        evaporation: f64,
        greediness: f64,
        seed: u64,
    ) -> Result<Self, ReconfigError> {
        if generations == 0 {
            return Err(ReconfigError::InvalidParameter {
                name: "ACO generations",
                value: 0.0,
            });
        }
        if ants == 0 {
            return Err(ReconfigError::InvalidParameter {
                name: "ACO ants per generation",
                value: 0.0,
            });
        }
        if !(evaporation > 0.0 && evaporation < 1.0) {
            return Err(ReconfigError::InvalidParameter {
                name: "ACO evaporation rate",
                value: evaporation,
            });
        }
        if !(0.0..=1.0).contains(&greediness) {
            return Err(ReconfigError::InvalidParameter {
                name: "ACO greediness",
                value: greediness,
            });
        }
        Ok(Self {
            inor,
            generations,
            ants,
            evaporation,
            greediness,
            seed,
        })
    }

    /// The embedded electrical tuning (charger window, efficiency floor,
    /// reconfiguration period).
    #[must_use]
    pub const fn inor(&self) -> &InorConfig {
        &self.inor
    }

    /// Number of colony generations per decision.
    #[must_use]
    pub const fn generations(&self) -> usize {
        self.generations
    }

    /// Number of ants constructed per generation.
    #[must_use]
    pub const fn ants(&self) -> usize {
        self.ants
    }

    /// Pheromone evaporation rate `ρ ∈ (0, 1)` applied each generation.
    #[must_use]
    pub const fn evaporation(&self) -> f64 {
        self.evaporation
    }

    /// Probability `q₀ ∈ [0, 1]` that an ant exploits the locally best
    /// choice outright instead of sampling the pheromone roulette (the ACS
    /// pseudo-random-proportional rule).
    #[must_use]
    pub const fn greediness(&self) -> f64 {
        self.greediness
    }

    /// The ChaCha seed all colony randomness derives from.
    #[must_use]
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// The same configuration with a different seed — the knob sweeps vary.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for AcoConfig {
    /// A compact colony tuned for per-period use: 10 generations of 12
    /// ants explores a few hundred partitions per decision — enough to
    /// beat the greedy heuristics on degraded arrays (see the `aco_search`
    /// bench) while staying far below EHTR's dynamic-programming cost on
    /// large arrays.  Moderate evaporation (0.4) forgets stale gradients
    /// within a few generations; greediness 0.35 keeps most construction
    /// steps exploratory.
    fn default() -> Self {
        Self {
            inor: InorConfig::default(),
            generations: 10,
            ants: 12,
            evaporation: 0.4,
            greediness: 0.35,
            seed: 2018,
        }
    }
}

/// The ant-colony reconfiguration scheme (see the module docs for the
/// algorithm and determinism contract).
///
/// # Examples
///
/// ```
/// use teg_array::{Configuration, TegArray};
/// use teg_device::{TegDatasheet, TegModule};
/// use teg_reconfig::{AcoReconfigurer, Reconfigurer, TelemetryWindow};
/// use teg_units::Celsius;
///
/// # fn main() -> Result<(), teg_reconfig::ReconfigError> {
/// let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let array = TegArray::uniform(module, 30);
/// let temps: Vec<f64> = (0..30).map(|i| 96.0 - 1.2 * i as f64).collect();
/// let history = vec![temps];
/// let inputs = TelemetryWindow::new(&array, &history, Celsius::new(25.0))?;
/// let current = Configuration::uniform(30, 5).expect("valid");
/// let decision = AcoReconfigurer::default().decide(&inputs, &current)?;
/// assert!(decision.evaluated());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AcoReconfigurer {
    config: AcoConfig,
    /// Embedded INOR: supplies the group-count window and the balanced
    /// partitions seeding the colony.
    inner: Inor,
    mode: KernelMode,
    rng: ChaCha8Rng,
}

impl AcoReconfigurer {
    /// Creates the scheme with explicit tuning parameters.
    #[must_use]
    pub fn new(config: AcoConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        Self {
            inner: Inor::new(config.inor.clone()),
            config,
            mode: KernelMode::default(),
            rng,
        }
    }

    /// The tuning parameters in use.
    #[must_use]
    pub const fn config(&self) -> &AcoConfig {
        &self.config
    }

    /// The kernel mode the fitness evaluations run in.
    #[must_use]
    pub const fn kernel_mode(&self) -> KernelMode {
        self.mode
    }

    /// Runs one full colony search on the given ΔT vector, returning the
    /// best configuration found and its array MPP power.  Advances the
    /// scheme's generator: calling this twice gives two (deterministic but
    /// different) searches, exactly like two successive periods.
    ///
    /// # Errors
    ///
    /// Propagates [`ReconfigError::Array`] if the ΔT vector does not match
    /// the array.
    pub fn optimise(
        &mut self,
        array: &TegArray,
        deltas: &[TemperatureDelta],
        current: Option<&Configuration>,
    ) -> Result<(Configuration, Watts), ReconfigError> {
        let modules = array.len();
        let mpp_currents = array.mpp_currents(deltas)?;
        let (n_min, n_max) = self.inner.group_bounds(array, deltas);

        // Seed the colony memetically with both greedy heuristics' full
        // candidate sets — INOR's balanced partitions and EHTR's
        // least-imbalance DP partitions for every feasible group count —
        // plus the wiring currently applied: the search starts from the
        // best greedy proposal and can only improve on it, never regress.
        let mut population: Vec<Configuration> = Vec::with_capacity(2 * (n_max - n_min + 1) + 1);
        for n in n_min..=n_max {
            let balanced = Inor::balanced_partition(&mpp_currents, n);
            let dp = if self.mode.is_fast() {
                Ehtr::optimal_partition_fast(&mpp_currents, n)
            } else {
                Ehtr::optimal_partition(&mpp_currents, n)
            };
            if !population.contains(&balanced) {
                population.push(balanced);
            }
            if !population.contains(&dp) {
                population.push(dp);
            }
        }
        if let Some(current) = current {
            if current.module_count() == modules && !population.contains(current) {
                population.push(current.clone());
            }
        }

        let mut solver = ArraySolver::with_mode(self.mode);
        solver.load(array, deltas, None)?;
        let mut memo = GroupSumMemo::new();
        let mut powers = Vec::with_capacity(population.len());
        solver.evaluate_candidates_with_memo(&population, &mut memo, &mut powers)?;

        // Pheromone over module→group assignments, uniform to start.  The
        // table is sized by the widest seed (the applied wiring may have
        // more groups than today's feasibility window allows), so a winning
        // out-of-window incumbent can still deposit its trail.
        let groups = population
            .iter()
            .map(Configuration::group_count)
            .max()
            .unwrap_or(1)
            .max(n_max);
        let mut tau = vec![vec![1.0_f64; groups]; modules];
        let (mut best, mut best_power) = take_earliest_max(population, &powers);
        let total_current: f64 = mpp_currents.iter().map(|c| c.value()).sum();

        let mut ants: Vec<Configuration> = Vec::with_capacity(self.config.ants);
        for _ in 0..self.config.generations {
            ants.clear();
            for _ in 0..self.config.ants {
                let ant = self.construct_ant(&tau, &mpp_currents, total_current, n_min, n_max);
                // Duplicate partitions add no information and would skew the
                // earliest-max tie-break by power-equal copies.
                if !ants.contains(&ant) {
                    ants.push(ant);
                }
            }
            solver.evaluate_candidates_with_memo(&ants, &mut memo, &mut powers)?;
            let (gen_best, gen_power) = take_earliest_max(std::mem::take(&mut ants), &powers);

            // Evaporate, then reinforce the generation-best trail scaled by
            // its quality relative to the incumbent, and the global-best
            // trail at full strength (ACS-style elitism).
            let keep = 1.0 - self.config.evaporation;
            for row in &mut tau {
                for t in row.iter_mut() {
                    *t = (*t * keep).max(TAU_MIN);
                }
            }
            let scale = if best_power.value() > 0.0 {
                (gen_power.value() / best_power.value()).clamp(0.0, 1.0)
            } else {
                1.0
            };
            deposit(&mut tau, &gen_best, scale);
            if gen_power > best_power {
                best = gen_best;
                best_power = gen_power;
            }
            deposit(&mut tau, &best, 1.0);
        }
        Ok((best, best_power))
    }

    /// Constructs one ant: a monotone left-to-right walk assigning each
    /// module to the current group or opening the next one, weighted by
    /// pheromone × visibility, under the ACS pseudo-random-proportional
    /// rule.  The forced-move guards make every walk a valid contiguous
    /// partition with exactly `n` groups by construction.
    fn construct_ant(
        &mut self,
        tau: &[Vec<f64>],
        mpp_currents: &[Amps],
        total_current: f64,
        n_min: usize,
        n_max: usize,
    ) -> Configuration {
        let modules = mpp_currents.len();
        // Half-open shim range: `n_max + 1` makes the draw inclusive.
        let n = self.rng.gen_range(n_min..n_max + 1);
        let ideal = if n > 0 { total_current / n as f64 } else { 0.0 };

        let mut starts = Vec::with_capacity(n);
        starts.push(0usize);
        let mut group = 0usize;
        let mut group_sum = mpp_currents[0].value();
        for module in 1..modules {
            let boundaries_left = n - 1 - group;
            if boundaries_left == 0 {
                // All groups are open: the rest of the chain joins the last.
                group_sum += mpp_currents[module].value();
                continue;
            }
            if modules - module == boundaries_left {
                // Every remaining module must open a group of its own.
                group += 1;
                starts.push(module);
                group_sum = mpp_currents[module].value();
                continue;
            }
            // Visibility: how far the open group is from its ideal current
            // share.  An underfilled group attracts the module (stay); an
            // overfilled one pushes the boundary here (advance).  Both
            // weights stay ≥ 1 so neither choice is ever starved.
            let fill = if ideal > 0.0 { group_sum / ideal } else { 1.0 };
            let stay_vis = 1.0 + (1.0 - fill).max(0.0);
            let advance_vis = 1.0 + (fill - 1.0).max(0.0);
            let stay = tau[module][group] * stay_vis;
            let advance = tau[module][group + 1] * advance_vis;
            let advancing = if self.rng.gen::<f64>() < self.config.greediness {
                // Exploit: take the locally best option (ties stay, which
                // keeps equal-weight walks deterministic).
                advance > stay
            } else {
                // Explore: pheromone-proportional roulette.
                self.rng.gen::<f64>() * (stay + advance) >= stay
            };
            if advancing {
                group += 1;
                starts.push(module);
                group_sum = mpp_currents[module].value();
            } else {
                group_sum += mpp_currents[module].value();
            }
        }
        Configuration::new(starts, modules).expect("monotone ant walk is always a valid partition")
    }
}

/// Reinforces the pheromone trail along one partition's module→group
/// assignments by `amount`, clamped to the stability ceiling.
fn deposit(tau: &mut [Vec<f64>], config: &Configuration, amount: f64) {
    let starts = config.group_starts();
    let modules = config.module_count();
    for (group, &start) in starts.iter().enumerate() {
        let end = starts.get(group + 1).copied().unwrap_or(modules);
        for row in &mut tau[start..end] {
            let t = &mut row[group];
            *t = (*t + amount).min(TAU_MAX);
        }
    }
}

/// Consumes a population and returns its earliest maximum-power member —
/// the same tie-break every candidate scan in this crate uses.
fn take_earliest_max(population: Vec<Configuration>, powers: &[Watts]) -> (Configuration, Watts) {
    debug_assert_eq!(population.len(), powers.len());
    let mut best = 0;
    for (i, power) in powers.iter().enumerate() {
        if *power > powers[best] {
            best = i;
        }
    }
    let power = powers[best];
    let configuration = population
        .into_iter()
        .nth(best)
        .expect("population is never empty");
    (configuration, power)
}

impl Default for AcoReconfigurer {
    fn default() -> Self {
        Self::new(AcoConfig::default())
    }
}

impl Reconfigurer for AcoReconfigurer {
    fn name(&self) -> &'static str {
        "ACO"
    }

    fn period(&self) -> Seconds {
        self.config.inor.period()
    }

    fn decide(
        &mut self,
        window: &TelemetryWindow<'_>,
        current: &Configuration,
    ) -> Result<ReconfigDecision, ReconfigError> {
        let started = Instant::now();
        let deltas = window.current_deltas();
        let (configuration, _) = self.optimise(window.array(), &deltas, Some(current))?;
        let elapsed = Seconds::new(started.elapsed().as_secs_f64());
        // Fixed-period scheme, like INOR: the result is re-applied every
        // period and the controller charges the reconfiguration dead time.
        Ok(ReconfigDecision::new(configuration, elapsed, true, true))
    }

    fn reset(&mut self) {
        // Rewind the colony's randomness to the seed: a reset scheme
        // reproduces its decision schedule bit for bit.
        self.rng = ChaCha8Rng::seed_from_u64(self.config.seed);
    }

    fn set_kernel_mode(&mut self, mode: KernelMode) {
        self.mode = mode;
        self.inner.set_kernel_mode(mode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use teg_array::ideal_power;
    use teg_device::{TegDatasheet, TegModule, VariationModel};
    use teg_units::Celsius;

    fn array(n: usize) -> TegArray {
        TegArray::uniform(
            TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8()),
            n,
        )
    }

    /// An array with strong module-to-module parameter variation — the
    /// degraded regime the search targets.
    fn varied_array(n: usize, seed: u64) -> TegArray {
        let base = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
        let variation = VariationModel::new(0.25, 0.25).expect("valid tolerances");
        let modules = variation
            .apply(&base, n, seed)
            .expect("tolerances in range");
        TegArray::new(modules).expect("non-empty module list")
    }

    fn radiator_like_deltas(n: usize) -> Vec<TemperatureDelta> {
        (0..n)
            .map(|i| TemperatureDelta::new(70.0 * (-(i as f64) * 0.8 / n as f64).exp()))
            .collect()
    }

    #[test]
    fn config_validation() {
        let inor = InorConfig::default();
        assert!(AcoConfig::new(inor.clone(), 0, 12, 0.4, 0.35, 1).is_err());
        assert!(AcoConfig::new(inor.clone(), 10, 0, 0.4, 0.35, 1).is_err());
        assert!(AcoConfig::new(inor.clone(), 10, 12, 0.0, 0.35, 1).is_err());
        assert!(AcoConfig::new(inor.clone(), 10, 12, 1.0, 0.35, 1).is_err());
        assert!(AcoConfig::new(inor.clone(), 10, 12, 0.4, -0.1, 1).is_err());
        assert!(AcoConfig::new(inor.clone(), 10, 12, 0.4, 1.1, 1).is_err());
        assert!(AcoConfig::new(inor.clone(), 10, 12, 0.4, f64::NAN, 1).is_err());
        let cfg = AcoConfig::new(inor, 5, 8, 0.3, 0.5, 7).unwrap();
        assert_eq!(cfg.generations(), 5);
        assert_eq!(cfg.ants(), 8);
        assert_eq!(cfg.evaporation(), 0.3);
        assert_eq!(cfg.greediness(), 0.5);
        assert_eq!(cfg.seed(), 7);
        assert_eq!(cfg.with_seed(11).seed(), 11);
    }

    #[test]
    fn aco_never_loses_to_either_greedy_scheme() {
        for seed in [3, 17, 99] {
            let a = varied_array(40, seed);
            let deltas = radiator_like_deltas(40);
            let (_, inor_power) = Inor::default().optimise(&a, &deltas).unwrap();
            let (_, ehtr_power) = Ehtr::default().optimise(&a, &deltas).unwrap();
            let mut aco = AcoReconfigurer::default();
            let (config, aco_power) = aco.optimise(&a, &deltas, None).unwrap();
            let greedy_best = inor_power.value().max(ehtr_power.value());
            assert!(
                aco_power.value() >= greedy_best,
                "seed {seed}: ACO {aco_power} lost to a greedy scheme ({greedy_best} W)"
            );
            assert_eq!(config.module_count(), 40);
            // And never exceeds the physical bound.
            let ideal = ideal_power(a.modules(), &deltas).unwrap();
            assert!(aco_power.value() <= ideal.value() + 1e-9);
        }
    }

    #[test]
    fn an_out_of_window_incumbent_is_still_a_valid_seed() {
        // Regression: a currently applied wiring with more groups than the
        // feasibility window allows must not overflow the pheromone table
        // when it wins a generation deposit.
        let a = varied_array(20, 9);
        let deltas = radiator_like_deltas(20);
        let wide = Configuration::uniform(20, 20).unwrap();
        let mut aco = AcoReconfigurer::default();
        let (config, _) = aco.optimise(&a, &deltas, Some(&wide)).unwrap();
        assert_eq!(config.module_count(), 20);
    }

    #[test]
    fn same_seed_is_bit_identical_and_reset_rewinds() {
        let a = varied_array(30, 5);
        let deltas = radiator_like_deltas(30);
        let mut first = AcoReconfigurer::default();
        let mut second = AcoReconfigurer::default();
        for _ in 0..3 {
            let (ca, pa) = first.optimise(&a, &deltas, None).unwrap();
            let (cb, pb) = second.optimise(&a, &deltas, None).unwrap();
            assert_eq!(ca, cb);
            assert_eq!(pa.value().to_bits(), pb.value().to_bits());
        }
        // After a reset the schedule replays from the top.
        let (c0, p0) = AcoReconfigurer::default()
            .optimise(&a, &deltas, None)
            .unwrap();
        first.reset();
        let (c1, p1) = first.optimise(&a, &deltas, None).unwrap();
        assert_eq!(c0, c1);
        assert_eq!(p0.value().to_bits(), p1.value().to_bits());
    }

    #[test]
    fn different_seeds_explore_differently() {
        let a = varied_array(30, 5);
        let deltas = radiator_like_deltas(30);
        let mut base = AcoReconfigurer::default();
        let mut other = AcoReconfigurer::new(AcoConfig::default().with_seed(777));
        // The generators diverge even when both searches land on the same
        // optimum, so compare the full stream state after one search.
        base.optimise(&a, &deltas, None).unwrap();
        other.optimise(&a, &deltas, None).unwrap();
        assert_ne!(base.rng, other.rng);
    }

    #[test]
    fn decide_reports_evaluation_and_runtime() {
        let a = array(40);
        let temps: Vec<f64> = (0..40).map(|i| 95.0 - 0.9 * i as f64).collect();
        let history = vec![temps];
        let inputs = TelemetryWindow::new(&a, &history, Celsius::new(25.0)).unwrap();
        let current = Configuration::uniform(40, 4).unwrap();
        let mut aco = AcoReconfigurer::default();
        assert_eq!(aco.name(), "ACO");
        assert_eq!(aco.period(), Seconds::new(0.5));
        let decision = aco.decide(&inputs, &current).unwrap();
        assert!(decision.evaluated());
        assert!(decision.applied());
        assert!(decision.computation().value() >= 0.0);
        let adopted = decision
            .configuration()
            .expect("ACO always proposes a configuration");
        assert_eq!(adopted.module_count(), 40);
    }

    proptest! {
        /// Every ant-constructed partition is valid by construction — the
        /// solver's pre-validation never rejects one — and the group count
        /// stays inside the feasibility window it was drawn from.
        #[test]
        fn prop_ant_walks_are_valid_partitions(
            n in 2usize..40,
            seed in 0u64..u64::MAX,
            hot in 20.0_f64..100.0,
            decay in 0.0_f64..2.0,
            n_lo in 1usize..8,
            n_span in 0usize..8,
        ) {
            let a = array(n);
            let deltas: Vec<_> = (0..n)
                .map(|i| TemperatureDelta::new(hot * (-(i as f64) * decay / n as f64).exp()))
                .collect();
            let currents = a.mpp_currents(&deltas).unwrap();
            let total: f64 = currents.iter().map(|c| c.value()).sum();
            let n_min = n_lo.min(n);
            let n_max = (n_lo + n_span).min(n);
            let tau = vec![vec![1.0_f64; n_max]; n];
            let mut aco = AcoReconfigurer::new(AcoConfig::default().with_seed(seed));
            let mut solver = ArraySolver::new();
            solver.load(&a, &deltas, None).unwrap();
            let mut out = Vec::new();
            for _ in 0..8 {
                let ant = aco.construct_ant(&tau, &currents, total, n_min, n_max);
                prop_assert_eq!(ant.module_count(), n);
                prop_assert!(ant.group_count() >= n_min && ant.group_count() <= n_max);
                // The solver accepts it (pre-validation cannot reject).
                prop_assert!(solver
                    .evaluate_candidates(std::slice::from_ref(&ant), &mut out)
                    .is_ok());
            }
        }
    }
}
