//! The static (non-reconfigurable) baseline wiring.

use teg_array::Configuration;
use teg_units::Seconds;

use crate::error::ReconfigError;
use crate::telemetry::TelemetryWindow;
use crate::traits::{ReconfigDecision, Reconfigurer};

/// The paper's baseline: a fixed series/parallel grid (10 × 10 for the
/// 100-module array) that is wired once and never reconfigured.
///
/// # Examples
///
/// ```
/// use teg_array::{Configuration, TegArray};
/// use teg_device::{TegDatasheet, TegModule};
/// use teg_reconfig::{Reconfigurer, StaticBaseline, TelemetryWindow};
/// use teg_units::Celsius;
///
/// # fn main() -> Result<(), teg_reconfig::ReconfigError> {
/// let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let array = TegArray::uniform(module, 100);
/// let history = vec![vec![90.0; 100]];
/// let inputs = TelemetryWindow::new(&array, &history, Celsius::new(25.0))?;
/// let mut baseline = StaticBaseline::grid_10x10();
/// let current = Configuration::uniform(100, 4).expect("valid");
/// let decision = baseline.decide(&inputs, &current)?;
/// assert_eq!(decision.configuration().expect("rewires once").group_count(), 10);
/// // Once the grid is wired, later decisions keep it without cloning.
/// let grid = Configuration::uniform(100, 10).expect("valid");
/// assert!(baseline.decide(&inputs, &grid)?.keeps_current());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticBaseline {
    groups: usize,
}

impl StaticBaseline {
    /// Creates a baseline wiring with the given number of series groups.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigError::InvalidParameter`] if `groups` is zero.
    pub fn new(groups: usize) -> Result<Self, ReconfigError> {
        if groups == 0 {
            return Err(ReconfigError::InvalidParameter {
                name: "groups",
                value: 0.0,
            });
        }
        Ok(Self { groups })
    }

    /// The paper's 10 × 10 baseline for the 100-module array.
    #[must_use]
    pub fn grid_10x10() -> Self {
        Self { groups: 10 }
    }

    /// A square-ish grid for an arbitrary module count: `⌈√N⌉` series groups.
    #[must_use]
    pub fn square_grid(module_count: usize) -> Self {
        let groups = (module_count.max(1) as f64).sqrt().ceil() as usize;
        Self {
            groups: groups.max(1),
        }
    }

    /// Number of series groups in the fixed wiring.
    #[must_use]
    pub const fn groups(&self) -> usize {
        self.groups
    }
}

impl Reconfigurer for StaticBaseline {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn period(&self) -> Seconds {
        // The baseline never reacts; polling it once a second is harmless and
        // keeps the simulation loop uniform across schemes.
        Seconds::new(1.0)
    }

    fn decide(
        &mut self,
        window: &TelemetryWindow<'_>,
        current: &Configuration,
    ) -> Result<ReconfigDecision, ReconfigError> {
        let modules = window.array().len();
        let groups = self.groups.min(modules);
        let target = Configuration::uniform(modules, groups)?;
        // No computation worth metering: the wiring is fixed and is only
        // applied once, when the array is first connected.  Every later
        // invocation keeps the current wiring without cloning it.
        if current == &target {
            return Ok(ReconfigDecision::keep(Seconds::ZERO, false, false));
        }
        Ok(ReconfigDecision::new(target, Seconds::ZERO, true, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_array::TegArray;
    use teg_device::{TegDatasheet, TegModule};
    use teg_units::Celsius;

    fn array(n: usize) -> TegArray {
        TegArray::uniform(
            TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8()),
            n,
        )
    }

    #[test]
    fn construction() {
        assert!(StaticBaseline::new(0).is_err());
        assert_eq!(StaticBaseline::new(7).unwrap().groups(), 7);
        assert_eq!(StaticBaseline::grid_10x10().groups(), 10);
        assert_eq!(StaticBaseline::square_grid(100).groups(), 10);
        assert_eq!(StaticBaseline::square_grid(50).groups(), 8);
        assert_eq!(StaticBaseline::square_grid(1).groups(), 1);
    }

    #[test]
    fn decision_is_always_the_same_grid() {
        let a = array(100);
        let history = vec![vec![92.0; 100]];
        let inputs = TelemetryWindow::new(&a, &history, Celsius::new(25.0)).unwrap();
        let mut baseline = StaticBaseline::grid_10x10();
        let grid = Configuration::uniform(100, 10).unwrap();
        let first = baseline
            .decide(&inputs, &Configuration::uniform(100, 4).unwrap())
            .unwrap();
        assert_eq!(first.configuration(), Some(&grid));
        assert!(first.evaluated());
        // Once wired, subsequent decisions keep the grid without cloning.
        let second = baseline.decide(&inputs, &grid).unwrap();
        assert!(second.keeps_current());
        assert!(!second.evaluated());
        assert_eq!(second.computation(), Seconds::ZERO);
        assert_eq!(baseline.name(), "Baseline");
        assert!(baseline.period().value() > 0.0);
    }

    #[test]
    fn group_count_is_capped_by_module_count() {
        let a = array(4);
        let history = vec![vec![90.0; 4]];
        let inputs = TelemetryWindow::new(&a, &history, Celsius::new(25.0)).unwrap();
        let mut baseline = StaticBaseline::grid_10x10();
        let decision = baseline
            .decide(&inputs, &Configuration::uniform(4, 1).unwrap())
            .unwrap();
        let adopted = decision.configuration().expect("rewires to the grid");
        assert_eq!(adopted.group_count(), 4);
    }
}
