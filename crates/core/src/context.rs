//! The per-invocation view a reconfiguration algorithm receives.

use teg_array::TegArray;
use teg_units::{Celsius, TemperatureDelta};

use crate::error::ReconfigError;

/// Everything a reconfigurer may consult when proposing a configuration:
/// the array, the ambient (heatsink) temperature, and the history of module
/// hot-side temperatures observed so far (most recent row last, one entry per
/// module, in °C).
///
/// The history is what the paper's controller accumulates from its
/// thermocouple/flow measurements through the radiator model; DNOR's
/// per-module predictors are trained on it while INOR/EHTR only consume the
/// latest row.
///
/// # Examples
///
/// ```
/// use teg_array::TegArray;
/// use teg_device::{TegDatasheet, TegModule};
/// use teg_reconfig::ReconfigInputs;
/// use teg_units::Celsius;
///
/// # fn main() -> Result<(), teg_reconfig::ReconfigError> {
/// let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let array = TegArray::uniform(module, 4);
/// let history = vec![vec![90.0, 85.0, 80.0, 75.0]];
/// let inputs = ReconfigInputs::new(&array, &history, Celsius::new(25.0))?;
/// let deltas = inputs.current_deltas();
/// assert_eq!(deltas.len(), 4);
/// assert!(deltas[0] > deltas[3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ReconfigInputs<'a> {
    array: &'a TegArray,
    history: &'a [Vec<f64>],
    ambient: Celsius,
}

impl<'a> ReconfigInputs<'a> {
    /// Creates the inputs, validating that the history is non-empty and every
    /// row has one temperature per module.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigError::EmptyHistory`] for an empty history and
    /// [`ReconfigError::InconsistentHistory`] when any row's length differs
    /// from the array's module count.
    pub fn new(
        array: &'a TegArray,
        history: &'a [Vec<f64>],
        ambient: Celsius,
    ) -> Result<Self, ReconfigError> {
        if history.is_empty() {
            return Err(ReconfigError::EmptyHistory);
        }
        for row in history {
            if row.len() != array.len() {
                return Err(ReconfigError::InconsistentHistory {
                    modules: array.len(),
                    row_len: row.len(),
                });
            }
        }
        Ok(Self { array, history, ambient })
    }

    /// The TEG array under control.
    #[must_use]
    pub const fn array(&self) -> &'a TegArray {
        self.array
    }

    /// The observed per-module temperature history (°C), most recent last.
    #[must_use]
    pub const fn history(&self) -> &'a [Vec<f64>] {
        self.history
    }

    /// The ambient / heatsink temperature.
    #[must_use]
    pub const fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// The most recent per-module temperatures (°C).
    #[must_use]
    pub fn current_temperatures(&self) -> &'a [f64] {
        self.history.last().expect("validated non-empty")
    }

    /// The most recent per-module temperature differences ΔT relative to the
    /// ambient (clamped at zero) — the quantity Eq. 2 consumes.
    #[must_use]
    pub fn current_deltas(&self) -> Vec<TemperatureDelta> {
        Self::deltas_from_row(self.current_temperatures(), self.ambient)
    }

    /// Converts an arbitrary temperature row (°C) into ΔT values against the
    /// same ambient, clamped at zero.
    #[must_use]
    pub fn deltas_from_row(row: &[f64], ambient: Celsius) -> Vec<TemperatureDelta> {
        row.iter()
            .map(|&t| (Celsius::new(t) - ambient).clamp_non_negative())
            .collect()
    }

    /// The history of a single module as a scalar series (°C), oldest first.
    ///
    /// # Panics
    ///
    /// Panics if `module_index` is out of range; callers iterate over
    /// `0..array.len()`.
    #[must_use]
    pub fn module_series(&self, module_index: usize) -> Vec<f64> {
        assert!(module_index < self.array.len(), "module index out of range");
        self.history.iter().map(|row| row[module_index]).collect()
    }

    /// Number of history rows available.
    #[must_use]
    pub fn history_len(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_device::{TegDatasheet, TegModule};

    fn array(n: usize) -> TegArray {
        TegArray::uniform(TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8()), n)
    }

    #[test]
    fn validation() {
        let a = array(3);
        assert!(matches!(
            ReconfigInputs::new(&a, &[], Celsius::new(25.0)),
            Err(ReconfigError::EmptyHistory)
        ));
        let bad = vec![vec![90.0, 80.0]];
        assert!(matches!(
            ReconfigInputs::new(&a, &bad, Celsius::new(25.0)),
            Err(ReconfigError::InconsistentHistory { .. })
        ));
    }

    #[test]
    fn accessors_and_deltas() {
        let a = array(3);
        let history = vec![vec![80.0, 75.0, 70.0], vec![90.0, 85.0, 20.0]];
        let inputs = ReconfigInputs::new(&a, &history, Celsius::new(25.0)).unwrap();
        assert_eq!(inputs.history_len(), 2);
        assert_eq!(inputs.current_temperatures(), &[90.0, 85.0, 20.0]);
        let deltas = inputs.current_deltas();
        assert!((deltas[0].kelvin() - 65.0).abs() < 1e-12);
        assert!((deltas[1].kelvin() - 60.0).abs() < 1e-12);
        // Below-ambient modules clamp to zero instead of going negative.
        assert_eq!(deltas[2].kelvin(), 0.0);
        assert_eq!(inputs.ambient(), Celsius::new(25.0));
        assert_eq!(inputs.array().len(), 3);
        assert_eq!(inputs.history().len(), 2);
    }

    #[test]
    fn module_series_extracts_columns() {
        let a = array(2);
        let history = vec![vec![80.0, 70.0], vec![81.0, 71.0], vec![82.0, 72.0]];
        let inputs = ReconfigInputs::new(&a, &history, Celsius::new(25.0)).unwrap();
        assert_eq!(inputs.module_series(0), vec![80.0, 81.0, 82.0]);
        assert_eq!(inputs.module_series(1), vec![70.0, 71.0, 72.0]);
    }

    #[test]
    #[should_panic(expected = "module index out of range")]
    fn module_series_bounds_checked() {
        let a = array(2);
        let history = vec![vec![80.0, 70.0]];
        let inputs = ReconfigInputs::new(&a, &history, Celsius::new(25.0)).unwrap();
        let _ = inputs.module_series(2);
    }
}
