//! DNOR — Durable Near-Optimal Reconfiguration (Algorithm 2).

use std::time::Instant;

use teg_array::{ArraySolver, Configuration, SwitchingOverheadModel};
use teg_predict::{MultipleLinearRegression, Predictor};
use teg_units::{Joules, Seconds, TemperatureDelta, Watts};

use crate::error::ReconfigError;
use crate::inor::{Inor, InorConfig};
use crate::telemetry::TelemetryWindow;
use crate::traits::{ReconfigDecision, Reconfigurer};

/// Tuning parameters of DNOR.
#[derive(Debug, Clone, PartialEq)]
pub struct DnorConfig {
    inor: InorConfig,
    prediction_horizon: usize,
    prediction_window: usize,
    overhead: SwitchingOverheadModel,
    period: Seconds,
    assumed_computation: Option<Seconds>,
}

impl DnorConfig {
    /// Creates a DNOR configuration.
    ///
    /// * `inor` — tuning of the inner INOR invocation,
    /// * `prediction_horizon` — `t_p`, the number of future seconds the
    ///   predictor looks ahead (the algorithm re-evaluates every `t_p + 1`
    ///   periods),
    /// * `prediction_window` — autoregressive window of the per-module MLR,
    /// * `overhead` — switching-overhead model used in the switch/no-switch
    ///   comparison,
    /// * `period` — how often the controller invokes DNOR (one second in the
    ///   paper, matching the 1 Hz temperature sampling).
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigError::InvalidParameter`] if the horizon or window
    /// is zero or the period is not strictly positive.
    pub fn new(
        inor: InorConfig,
        prediction_horizon: usize,
        prediction_window: usize,
        overhead: SwitchingOverheadModel,
        period: Seconds,
    ) -> Result<Self, ReconfigError> {
        if prediction_horizon == 0 {
            return Err(ReconfigError::InvalidParameter {
                name: "prediction horizon",
                value: 0.0,
            });
        }
        if prediction_window == 0 {
            return Err(ReconfigError::InvalidParameter {
                name: "prediction window",
                value: 0.0,
            });
        }
        if !(period.value() > 0.0) {
            return Err(ReconfigError::InvalidParameter {
                name: "period",
                value: period.value(),
            });
        }
        Ok(Self {
            inor,
            prediction_horizon,
            prediction_window,
            overhead,
            period,
            assumed_computation: None,
        })
    }

    /// Replaces the measured wall clock with a fixed assumed computation
    /// time per decision.
    ///
    /// DNOR's switch economics compare the predicted energy gain of a new
    /// configuration against the overhead of switching to it, and that
    /// overhead includes the algorithm's *own* computation time — measured
    /// with `Instant::now()` by default, which makes two otherwise identical
    /// runs differ by timing jitter.  With an assumed computation time the
    /// gate (and the decision's reported computation) becomes a pure
    /// function of the telemetry, so a DNOR run is bit-reproducible — the
    /// property the golden-trace regression harness and the parallel sweep's
    /// serial-equivalence guarantee need.  Pair it with the simulation
    /// session's `RuntimePolicy::Fixed` charging the same value.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigError::InvalidParameter`] when the duration is
    /// negative or non-finite.
    pub fn with_assumed_computation(mut self, computation: Seconds) -> Result<Self, ReconfigError> {
        if !(computation.value() >= 0.0 && computation.value().is_finite()) {
            return Err(ReconfigError::InvalidParameter {
                name: "assumed computation",
                value: computation.value(),
            });
        }
        self.assumed_computation = Some(computation);
        Ok(self)
    }

    /// The fixed per-decision computation time in force, if any.
    #[must_use]
    pub const fn assumed_computation(&self) -> Option<Seconds> {
        self.assumed_computation
    }

    /// The inner INOR tuning.
    #[must_use]
    pub const fn inor(&self) -> &InorConfig {
        &self.inor
    }

    /// The prediction horizon `t_p` in seconds/steps.
    #[must_use]
    pub const fn prediction_horizon(&self) -> usize {
        self.prediction_horizon
    }

    /// The autoregressive window of the per-module predictors.
    #[must_use]
    pub const fn prediction_window(&self) -> usize {
        self.prediction_window
    }

    /// The switching-overhead model used in the switch decision.
    #[must_use]
    pub const fn overhead(&self) -> &SwitchingOverheadModel {
        &self.overhead
    }

    /// The invocation period.
    #[must_use]
    pub const fn period(&self) -> Seconds {
        self.period
    }

    /// How many multiples of the autoregressive window the bounded history
    /// keeps for training.
    pub const TRAINING_SPAN_FACTOR: usize = 8;

    /// Telemetry rows DNOR asks the controller to retain: enough for the
    /// autoregressive MLR to fit on several multiples of its window (the
    /// fit needs `window + 2` rows at minimum; more rows stabilise the
    /// least-squares solve without reintroducing unbounded history).
    #[must_use]
    pub const fn lookback(&self) -> usize {
        self.prediction_window * Self::TRAINING_SPAN_FACTOR + 2
    }
}

impl Default for DnorConfig {
    /// The paper's setting: 2-second MLR prediction with a 5-sample window,
    /// default overhead model, invoked once per second.
    fn default() -> Self {
        Self {
            inor: InorConfig::default(),
            prediction_horizon: 2,
            prediction_window: 5,
            overhead: SwitchingOverheadModel::default(),
            period: Seconds::new(1.0),
            assumed_computation: None,
        }
    }
}

/// The prediction-gated reconfiguration algorithm (the paper's headline
/// contribution).
///
/// Every `t_p + 1` invocations DNOR runs INOR on the current temperatures to
/// obtain a candidate configuration, forecasts each module's temperature for
/// the next `t_p` seconds with MLR, integrates the predicted array MPP power
/// of the old and new configurations over those `t_p + 1` seconds, and only
/// switches when the new configuration's predicted energy advantage exceeds
/// the energy cost of switching.
///
/// # Examples
///
/// ```
/// use teg_array::{Configuration, TegArray};
/// use teg_device::{TegDatasheet, TegModule};
/// use teg_reconfig::{Dnor, Reconfigurer, TelemetryWindow};
/// use teg_units::Celsius;
///
/// # fn main() -> Result<(), teg_reconfig::ReconfigError> {
/// let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let array = TegArray::uniform(module, 20);
/// // Ten seconds of history with a stable gradient.
/// let history: Vec<Vec<f64>> = (0..10)
///     .map(|_| (0..20).map(|i| 94.0 - 1.3 * i as f64).collect())
///     .collect();
/// let inputs = TelemetryWindow::new(&array, &history, Celsius::new(25.0))?;
/// let current = Configuration::uniform(20, 4).expect("valid");
/// let mut dnor = Dnor::default();
/// let decision = dnor.decide(&inputs, &current)?;
/// assert!(decision.evaluated());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dnor {
    config: DnorConfig,
    inner: Inor,
    periods_until_evaluation: usize,
    evaluations: usize,
    switches: usize,
}

impl Dnor {
    /// Creates DNOR with explicit tuning parameters.
    #[must_use]
    pub fn new(config: DnorConfig) -> Self {
        let inner = Inor::new(config.inor().clone());
        Self {
            config,
            inner,
            periods_until_evaluation: 0,
            evaluations: 0,
            switches: 0,
        }
    }

    /// The tuning parameters in use.
    #[must_use]
    pub const fn config(&self) -> &DnorConfig {
        &self.config
    }

    /// Number of full evaluations (INOR + prediction) performed so far.
    #[must_use]
    pub const fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Number of times a new configuration was actually adopted.
    #[must_use]
    pub const fn switches(&self) -> usize {
        self.switches
    }

    /// Forecasts each module's temperature for the next `t_p` steps.
    ///
    /// All module temperatures are driven by the same coolant inlet signal
    /// through the radiator model, so their autoregressive dynamics are
    /// identical: one MLR is fitted on the entrance module (the strongest
    /// signal) and its coefficients are applied to every module's own recent
    /// window.  This keeps the prediction cost `O(N)` per evaluation, which
    /// is what lets DNOR undercut INOR's amortised runtime.  Modules with too
    /// little history fall back to persistence (repeating their latest
    /// temperature), which is also what the paper's controller would do
    /// before its history buffer fills.
    // `module` indexes both the window's series and the forecast rows.
    #[allow(clippy::needless_range_loop)]
    fn predict_rows(&self, window: &TelemetryWindow<'_>) -> Vec<Vec<f64>> {
        let horizon = self.config.prediction_horizon;
        let ar_window = self.config.prediction_window;
        let modules = window.array().len();
        let mut rows = vec![vec![0.0; modules]; horizon];

        let reference = window.module_series(0);
        let shared_model = if reference.len() >= ar_window + 2 {
            let mut mlr =
                MultipleLinearRegression::new(ar_window).expect("window validated at construction");
            mlr.fit(&reference).ok().map(|()| mlr)
        } else {
            None
        };

        for module in 0..modules {
            let series = window.module_series(module);
            let forecast = match &shared_model {
                Some(model) => model
                    .forecast(&series, horizon)
                    .unwrap_or_else(|_| vec![*series.last().expect("non-empty history"); horizon]),
                None => vec![*series.last().expect("non-empty history"); horizon],
            };
            for (step, value) in forecast.into_iter().enumerate() {
                rows[step][module] = value;
            }
        }
        rows
    }

    /// Integrates the predicted array MPP energy of the incumbent and the
    /// candidate configuration over the current second plus the `t_p`
    /// predicted seconds, sharing one batch solve per ΔT row.
    ///
    /// Also returns the incumbent's instantaneous MPP power (the first term
    /// of its energy integral), which the switching-overhead gate needs —
    /// the kernel is deterministic, so reusing the solve is exact.
    fn predicted_energies(
        &self,
        solver: &mut ArraySolver,
        window: &TelemetryWindow<'_>,
        incumbent: &Configuration,
        candidate: &Configuration,
        current_deltas: &[TemperatureDelta],
        predicted_rows: &[Vec<f64>],
    ) -> Result<(Joules, Joules, Watts), ReconfigError> {
        let step = self.config.period;
        let array = window.array();
        // The per-module EMF/conductance terms are derived once per ΔT row
        // and amortised over both configurations; each configuration's
        // energy still accumulates in row order, so the sums are
        // bit-identical to integrating the two configurations separately.
        // The first load repeats what `optimise_with` left in the solver at
        // the call site — kept so this function never depends on what a
        // caller loaded before it.
        solver.load(array, current_deltas, None)?;
        let current_power = solver.mpp_power(incumbent)?;
        let mut energy_old = current_power * step;
        let mut energy_new = solver.mpp_power(candidate)? * step;
        for row in predicted_rows {
            let deltas = TelemetryWindow::deltas_from_row(row, window.ambient());
            solver.load(array, &deltas, None)?;
            energy_old += solver.mpp_power(incumbent)? * step;
            energy_new += solver.mpp_power(candidate)? * step;
        }
        Ok((energy_old, energy_new, current_power))
    }
}

impl Default for Dnor {
    fn default() -> Self {
        Self::new(DnorConfig::default())
    }
}

impl Reconfigurer for Dnor {
    fn name(&self) -> &'static str {
        "DNOR"
    }

    fn period(&self) -> Seconds {
        self.config.period
    }

    fn lookback(&self) -> usize {
        self.config.lookback()
    }

    fn decide(
        &mut self,
        window: &TelemetryWindow<'_>,
        current: &Configuration,
    ) -> Result<ReconfigDecision, ReconfigError> {
        let started = Instant::now();
        // With an assumed computation time the overhead gate and the
        // reported timing are pure functions of the telemetry: the wall
        // clock is never consulted and the decision is bit-reproducible.
        let assumed = self.config.assumed_computation;
        let elapsed_or_assumed = |started: &Instant| {
            assumed.unwrap_or_else(|| Seconds::new(started.elapsed().as_secs_f64()))
        };

        if self.periods_until_evaluation > 0 {
            self.periods_until_evaluation -= 1;
            let elapsed = elapsed_or_assumed(&started);
            return Ok(ReconfigDecision::keep(elapsed, false, false));
        }

        self.evaluations += 1;
        let mut solver = ArraySolver::with_mode(self.inner.kernel_mode());
        let current_deltas = window.current_deltas();
        let (candidate, _) =
            self.inner
                .optimise_with(&mut solver, window.array(), &current_deltas)?;
        let predicted_rows = self.predict_rows(window);

        let (energy_old, energy_new, current_power) = self.predicted_energies(
            &mut solver,
            window,
            current,
            &candidate,
            &current_deltas,
            &predicted_rows,
        )?;

        let toggles = current.switch_toggles_to(&candidate)?;
        let computation_so_far = elapsed_or_assumed(&started);
        let overhead = self
            .config
            .overhead
            .event(current_power, computation_so_far, toggles)
            .total_energy();

        let switch = energy_old <= energy_new - overhead && &candidate != current;
        self.periods_until_evaluation = self.config.prediction_horizon;
        let elapsed = elapsed_or_assumed(&started);
        // DNOR evaluates in the background while the array keeps harvesting;
        // only an actual switch interrupts the output.
        if switch {
            self.switches += 1;
            Ok(ReconfigDecision::new(candidate, elapsed, true, true))
        } else {
            Ok(ReconfigDecision::keep(elapsed, true, false))
        }
    }

    fn reset(&mut self) {
        self.periods_until_evaluation = 0;
        self.evaluations = 0;
        self.switches = 0;
    }

    fn set_kernel_mode(&mut self, mode: teg_units::KernelMode) {
        // The inner INOR performs every numerical solve DNOR makes, so
        // forwarding covers the whole scheme.
        self.inner.set_kernel_mode(mode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_array::TegArray;
    use teg_device::{TegDatasheet, TegModule};
    use teg_units::Celsius;

    fn array(n: usize) -> TegArray {
        TegArray::uniform(
            TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8()),
            n,
        )
    }

    fn gradient_history(n: usize, steps: usize, hot: f64) -> Vec<Vec<f64>> {
        (0..steps)
            .map(|_| (0..n).map(|i| hot - 1.2 * i as f64).collect())
            .collect()
    }

    #[test]
    fn config_validation() {
        let base = InorConfig::default();
        let overhead = SwitchingOverheadModel::default();
        assert!(DnorConfig::new(base.clone(), 0, 5, overhead, Seconds::new(1.0)).is_err());
        assert!(DnorConfig::new(base.clone(), 2, 0, overhead, Seconds::new(1.0)).is_err());
        assert!(DnorConfig::new(base.clone(), 2, 5, overhead, Seconds::ZERO).is_err());
        let cfg = DnorConfig::new(base, 3, 6, overhead, Seconds::new(1.0)).unwrap();
        assert_eq!(cfg.prediction_horizon(), 3);
        assert_eq!(cfg.prediction_window(), 6);
        assert!(cfg.overhead().per_toggle_energy().value() > 0.0);
        assert_eq!(cfg.period(), Seconds::new(1.0));
        assert_eq!(cfg.inor().min_converter_efficiency(), 0.9);
    }

    #[test]
    fn evaluation_happens_every_horizon_plus_one_periods() {
        let a = array(20);
        let history = gradient_history(20, 12, 94.0);
        let inputs = TelemetryWindow::new(&a, &history, Celsius::new(25.0)).unwrap();
        let current = Configuration::uniform(20, 4).unwrap();
        let mut dnor = Dnor::default();
        let mut evaluated_pattern = Vec::new();
        let mut config = current;
        for _ in 0..9 {
            let decision = dnor.decide(&inputs, &config).unwrap();
            evaluated_pattern.push(decision.evaluated());
            if let Some(next) = decision.into_configuration() {
                config = next;
            }
        }
        // Horizon 2 → evaluate on one period, skip the next two, repeat.
        assert_eq!(
            evaluated_pattern,
            vec![true, false, false, true, false, false, true, false, false]
        );
        assert_eq!(dnor.evaluations(), 3);
    }

    #[test]
    fn stable_temperatures_lead_to_few_switches() {
        // With a constant gradient the first evaluation may adopt a better
        // configuration, but subsequent evaluations must find no advantage
        // worth the overhead and keep it — the core durability claim.
        let a = array(40);
        let history = gradient_history(40, 20, 95.0);
        let inputs = TelemetryWindow::new(&a, &history, Celsius::new(25.0)).unwrap();
        let mut config = Configuration::uniform(40, 4).unwrap();
        let mut dnor = Dnor::default();
        let mut switch_events = 0;
        for _ in 0..30 {
            let decision = dnor.decide(&inputs, &config).unwrap();
            if let Some(next) = decision.into_configuration() {
                assert_ne!(next, config, "a switch decision must change the wiring");
                switch_events += 1;
                config = next;
            }
        }
        assert!(
            switch_events <= 1,
            "expected at most one switch, saw {switch_events}"
        );
        assert_eq!(dnor.switches(), switch_events);
    }

    #[test]
    fn adopted_configuration_matches_inor_quality() {
        let a = array(50);
        let history = gradient_history(50, 15, 96.0);
        let inputs = TelemetryWindow::new(&a, &history, Celsius::new(25.0)).unwrap();
        let start = Configuration::uniform(50, 2).unwrap();
        let mut dnor = Dnor::default();
        let decision = dnor.decide(&inputs, &start).unwrap();
        let deltas = inputs.current_deltas();
        let adopted = decision.configuration().unwrap_or(&start);
        let adopted_power = a.mpp_power(adopted, &deltas).unwrap();
        let (_, inor_power) = Inor::default().optimise(&a, &deltas).unwrap();
        // DNOR either adopted INOR's configuration or found the old one good
        // enough; in the latter case the start configuration was already
        // within the overhead margin of INOR.
        assert!(adopted_power.value() >= 0.8 * inor_power.value());
    }

    #[test]
    fn short_history_falls_back_to_persistence() {
        let a = array(10);
        let history = gradient_history(10, 2, 92.0); // far below window + 2
        let inputs = TelemetryWindow::new(&a, &history, Celsius::new(25.0)).unwrap();
        let current = Configuration::uniform(10, 2).unwrap();
        let mut dnor = Dnor::default();
        let decision = dnor.decide(&inputs, &current).unwrap();
        assert!(decision.evaluated());
        assert!(decision
            .configuration()
            .is_none_or(|c| c.module_count() == 10));
    }

    #[test]
    fn reset_restarts_the_evaluation_phase() {
        let a = array(10);
        let history = gradient_history(10, 10, 92.0);
        let inputs = TelemetryWindow::new(&a, &history, Celsius::new(25.0)).unwrap();
        let current = Configuration::uniform(10, 2).unwrap();
        let mut dnor = Dnor::default();
        let first = dnor.decide(&inputs, &current).unwrap();
        assert!(first.evaluated());
        let second = dnor.decide(&inputs, &current).unwrap();
        assert!(!second.evaluated());
        dnor.reset();
        assert_eq!(dnor.evaluations(), 0);
        assert_eq!(dnor.switches(), 0);
        let third = dnor.decide(&inputs, &current).unwrap();
        assert!(third.evaluated());
    }

    #[test]
    fn trait_metadata() {
        let dnor = Dnor::default();
        assert_eq!(dnor.name(), "DNOR");
        assert_eq!(dnor.period(), Seconds::new(1.0));
    }

    #[test]
    fn assumed_computation_validation() {
        assert!(DnorConfig::default()
            .with_assumed_computation(Seconds::new(-0.001))
            .is_err());
        assert!(DnorConfig::default()
            .with_assumed_computation(Seconds::new(f64::NAN))
            .is_err());
        let cfg = DnorConfig::default()
            .with_assumed_computation(Seconds::new(0.002))
            .unwrap();
        assert_eq!(cfg.assumed_computation(), Some(Seconds::new(0.002)));
        assert_eq!(DnorConfig::default().assumed_computation(), None);
    }

    #[test]
    fn assumed_computation_makes_decisions_bit_reproducible() {
        let a = array(24);
        let history = gradient_history(24, 12, 95.0);
        let inputs = TelemetryWindow::new(&a, &history, Celsius::new(25.0)).unwrap();
        let run = || {
            let config = DnorConfig::default()
                .with_assumed_computation(Seconds::new(0.002))
                .unwrap();
            let mut dnor = Dnor::new(config);
            let mut current = Configuration::uniform(24, 4).unwrap();
            let mut trail = Vec::new();
            for _ in 0..9 {
                let decision = dnor.decide(&inputs, &current).unwrap();
                trail.push(decision.clone());
                if let Some(next) = decision.into_configuration() {
                    current = next;
                }
            }
            trail
        };
        // Every decision — configuration, computation, flags — is identical
        // across reruns: no wall-clock jitter leaks into the gate.
        assert_eq!(run(), run());
        assert!(run().iter().all(|d| d.computation() == Seconds::new(0.002)));
    }
}
