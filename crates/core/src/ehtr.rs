//! EHTR — the prior-work Efficient Heuristic TEG Reconfiguration.
//!
//! The paper compares against the reconfiguration algorithm of Baek et al.
//! (ISLPED 2017), characterising it as near-optimal but `O(N³)` and as
//! reconfiguring on every period.  The original implementation is not
//! public, so this module re-creates an algorithm with the same observable
//! properties: for every feasible group count it finds the boundary placement
//! minimising the squared imbalance of group MPP currents by dynamic
//! programming over all `O(N²)` boundary pairs (cubic once the group count
//! scales with `N`), then picks the group count with the highest array MPP
//! power.  Output quality therefore matches or slightly exceeds INOR while
//! the runtime grows much faster with the array size — exactly the trade-off
//! Table I and the scalability discussion rely on.

use std::time::Instant;

use teg_array::{ArraySolver, Configuration, TegArray};
use teg_units::{Amps, KernelMode, Seconds, TemperatureDelta, Watts};

use crate::error::ReconfigError;
use crate::inor::{pick_best_candidate, Inor, InorConfig};
use crate::memo::DecisionMemo;
use crate::telemetry::TelemetryWindow;
use crate::traits::{ReconfigDecision, Reconfigurer};

/// The dynamic-programming re-implementation of the prior-work heuristic.
///
/// # Examples
///
/// ```
/// use teg_array::{Configuration, TegArray};
/// use teg_device::{TegDatasheet, TegModule};
/// use teg_reconfig::{Ehtr, Reconfigurer, TelemetryWindow};
/// use teg_units::Celsius;
///
/// # fn main() -> Result<(), teg_reconfig::ReconfigError> {
/// let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let array = TegArray::uniform(module, 24);
/// let temps: Vec<f64> = (0..24).map(|i| 95.0 - 1.4 * i as f64).collect();
/// let history = vec![temps];
/// let inputs = TelemetryWindow::new(&array, &history, Celsius::new(25.0))?;
/// let current = Configuration::uniform(24, 4).expect("valid");
/// let decision = Ehtr::default().decide(&inputs, &current)?;
/// assert!(decision.evaluated());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ehtr {
    config: InorConfig,
    mode: KernelMode,
    // Last (ΔT row → partition) pair: a 0.5 s period over 1 s steps asks the
    // same question twice per step, and the DP is ~95 % of a decide.
    memo: Option<DecisionMemo>,
}

/// The memo caches derived state only, so it stays out of scheme identity.
impl PartialEq for Ehtr {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config && self.mode == other.mode
    }
}

impl Ehtr {
    /// Creates EHTR with the same tuning parameters INOR uses (charger,
    /// efficiency floor, period) so comparisons are apples-to-apples.
    #[must_use]
    pub fn new(config: InorConfig) -> Self {
        Self {
            config,
            mode: KernelMode::default(),
            memo: None,
        }
    }

    /// The tuning parameters in use.
    #[must_use]
    pub const fn config(&self) -> &InorConfig {
        &self.config
    }

    /// The kernel mode the DP and the candidate scan run in.
    #[must_use]
    pub const fn kernel_mode(&self) -> KernelMode {
        self.mode
    }

    /// Optimal (least-squared-imbalance) partition of the chain into `n`
    /// groups, found by dynamic programming over boundary positions.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the number of modules.
    #[must_use]
    pub fn optimal_partition(mpp_currents: &[Amps], n: usize) -> Configuration {
        Self::optimal_partition_with(mpp_currents, n, &mut PartitionScratch::default())
    }

    /// The reference DP over reusable flat tables.
    ///
    /// Every cost is evaluated with the original operation order
    /// (`cost[j-1][k] + ((prefix[i] − prefix[k]) − ideal)²`, strict-`<`
    /// first-minimum scan), so the returned partition is bit-identical to
    /// the nested-table formulation this replaced; the layout change and
    /// the reachability bound below are pure speed.  States `cost[j][i]`
    /// with `i > modules − (n−1−j)` cannot leave a module for each of the
    /// `n−1−j` groups still to come, so neither a later layer nor the
    /// reconstruction ever reads them and the DP skips computing them.
    fn optimal_partition_with(
        mpp_currents: &[Amps],
        n: usize,
        scratch: &mut PartitionScratch,
    ) -> Configuration {
        let modules = mpp_currents.len();
        assert!(
            n >= 1 && n <= modules,
            "group count {n} out of range for {modules} modules"
        );
        let total: f64 = mpp_currents.iter().map(|c| c.value()).sum();
        let ideal = total / n as f64;

        let width = modules + 1;
        let PartitionScratch {
            prefix,
            cost_prev,
            cost_cur,
            choice,
        } = scratch;
        // prefix[i] = sum of the first i currents.
        prefix.clear();
        prefix.reserve(width);
        prefix.push(0.0);
        let mut acc = 0.0;
        for c in mpp_currents {
            acc += c.value();
            prefix.push(acc);
        }
        cost_prev.clear();
        cost_prev.resize(width, f64::INFINITY);
        cost_cur.clear();
        cost_cur.resize(width, f64::INFINITY);
        choice.clear();
        choice.resize(n * width, 0);

        for i in 1..=(modules - (n - 1)) {
            let sum = prefix[i] - prefix[0];
            let d = sum - ideal;
            cost_prev[i] = d * d;
        }
        for j in 1..n {
            let row = j * width;
            let reachable = modules - (n - 1 - j);
            for i in (j + 1)..=reachable {
                let pi = prefix[i];
                let mut best = f64::INFINITY;
                let mut best_k = 0usize;
                for k in j..i {
                    let sum = pi - prefix[k];
                    let d = sum - ideal;
                    let candidate = cost_prev[k] + d * d;
                    if candidate < best {
                        best = candidate;
                        best_k = k;
                    }
                }
                cost_cur[i] = best;
                choice[row + i] = best_k as u32;
            }
            std::mem::swap(cost_prev, cost_cur);
        }

        // Reconstruct the boundaries.
        let mut starts = vec![0usize; n];
        let mut end = modules;
        for j in (1..n).rev() {
            let boundary = choice[j * width + end] as usize;
            starts[j] = boundary;
            end = boundary;
        }
        Configuration::new(starts, modules).expect("DP partition is always valid")
    }

    /// The [`KernelMode::Fast`] lane of [`Ehtr::optimal_partition`]: the
    /// same dynamic program over flat scratch tables with a 4-wide
    /// instruction-parallel min-scan of the inner boundary loop.
    ///
    /// Every candidate cost is evaluated with the reference operation order
    /// (`cost[j-1][k] + ((prefix[i] − prefix[k]) − ideal)²`), and the
    /// vectorised scan resolves ties by the smallest boundary exactly as the
    /// serial strict-`<` scan does, so **the returned partition is
    /// identical** to the bit-exact lane's — the speed comes from breaking
    /// the scan's dependency chain and from reusing flat buffers instead of
    /// allocating `2n` nested rows per call.  The equivalence test below
    /// pins the identity.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the number of modules.
    #[must_use]
    pub fn optimal_partition_fast(mpp_currents: &[Amps], n: usize) -> Configuration {
        Self::optimal_partition_fast_with(mpp_currents, n, &mut PartitionScratch::default())
    }

    fn optimal_partition_fast_with(
        mpp_currents: &[Amps],
        n: usize,
        scratch: &mut PartitionScratch,
    ) -> Configuration {
        let modules = mpp_currents.len();
        assert!(
            n >= 1 && n <= modules,
            "group count {n} out of range for {modules} modules"
        );
        let total: f64 = mpp_currents.iter().map(|c| c.value()).sum();
        let ideal = total / n as f64;

        let width = modules + 1;
        let PartitionScratch {
            prefix,
            cost_prev,
            cost_cur,
            choice,
        } = scratch;
        prefix.clear();
        prefix.reserve(width);
        prefix.push(0.0);
        let mut acc = 0.0;
        for c in mpp_currents {
            acc += c.value();
            prefix.push(acc);
        }
        cost_prev.clear();
        cost_prev.resize(width, f64::INFINITY);
        cost_cur.clear();
        cost_cur.resize(width, f64::INFINITY);
        choice.clear();
        choice.resize(n * width, 0);

        for i in 1..=(modules - (n - 1)) {
            let sum = prefix[i] - prefix[0];
            let d = sum - ideal;
            cost_prev[i] = d * d;
        }
        for j in 1..n {
            let row = j * width;
            // Same reachability bound as the reference lane: states that
            // leave fewer modules than remaining groups are never read.
            let reachable = modules - (n - 1 - j);
            for i in (j + 1)..=reachable {
                let pi = prefix[i];
                // Four independent (value, boundary) minima; lane-local
                // strict-< keeps each lane's earliest minimum.
                let mut v = [f64::INFINITY; 4];
                let mut at = [0usize; 4];
                let mut k = j;
                while k + 4 <= i {
                    let d0 = (pi - prefix[k]) - ideal;
                    let c0 = cost_prev[k] + d0 * d0;
                    if c0 < v[0] {
                        v[0] = c0;
                        at[0] = k;
                    }
                    let d1 = (pi - prefix[k + 1]) - ideal;
                    let c1 = cost_prev[k + 1] + d1 * d1;
                    if c1 < v[1] {
                        v[1] = c1;
                        at[1] = k + 1;
                    }
                    let d2 = (pi - prefix[k + 2]) - ideal;
                    let c2 = cost_prev[k + 2] + d2 * d2;
                    if c2 < v[2] {
                        v[2] = c2;
                        at[2] = k + 2;
                    }
                    let d3 = (pi - prefix[k + 3]) - ideal;
                    let c3 = cost_prev[k + 3] + d3 * d3;
                    if c3 < v[3] {
                        v[3] = c3;
                        at[3] = k + 3;
                    }
                    k += 4;
                }
                while k < i {
                    let d = (pi - prefix[k]) - ideal;
                    let c = cost_prev[k] + d * d;
                    if c < v[0] {
                        v[0] = c;
                        at[0] = k;
                    }
                    k += 1;
                }
                // Merge lanes lexicographically on (value, boundary): equal
                // values resolve to the smallest k, reproducing the serial
                // scan's first-minimum tie-break exactly.  Lane 0 always
                // holds a finite value (k = j lands there), so an untouched
                // lane's (∞, 0) sentinel can never win the merge.
                let mut best_v = v[0];
                let mut best_k = at[0];
                for lane in 1..4 {
                    if v[lane] < best_v || (v[lane] == best_v && at[lane] < best_k) {
                        best_v = v[lane];
                        best_k = at[lane];
                    }
                }
                cost_cur[i] = best_v;
                choice[row + i] = best_k as u32;
            }
            std::mem::swap(cost_prev, cost_cur);
        }

        let mut starts = vec![0usize; n];
        let mut end = modules;
        for j in (1..n).rev() {
            let boundary = choice[j * width + end] as usize;
            starts[j] = boundary;
            end = boundary;
        }
        Configuration::new(starts, modules).expect("DP partition is always valid")
    }

    /// Runs the full heuristic: DP partition for every feasible group count,
    /// keep the most powerful candidate.
    ///
    /// # Errors
    ///
    /// Propagates [`ReconfigError::Array`] if the ΔT vector does not match
    /// the array.
    pub fn optimise(
        &self,
        array: &TegArray,
        deltas: &[TemperatureDelta],
    ) -> Result<(Configuration, Watts), ReconfigError> {
        self.optimise_with(&mut ArraySolver::with_mode(self.mode), array, deltas)
    }

    /// [`Ehtr::optimise`] evaluating its candidates through a caller-owned
    /// solver, so a looping controller reuses the scratch buffers across
    /// invocations instead of reallocating them.
    ///
    /// # Errors
    ///
    /// Propagates [`ReconfigError::Array`] if the ΔT vector does not match
    /// the array.
    pub fn optimise_with(
        &self,
        solver: &mut ArraySolver,
        array: &TegArray,
        deltas: &[TemperatureDelta],
    ) -> Result<(Configuration, Watts), ReconfigError> {
        let mpp_currents = array.mpp_currents(deltas)?;
        let inor_view = Inor::new(self.config.clone());
        let (n_min, n_max) = inor_view.group_bounds(array, deltas);
        let candidates: Vec<Configuration> = match self.mode {
            KernelMode::BitExact => {
                // The same flat scratch reuse as the fast lane — a layout
                // change only; the reference arithmetic is untouched.
                let mut scratch = PartitionScratch::default();
                (n_min..=n_max)
                    .map(|n| Self::optimal_partition_with(&mpp_currents, n, &mut scratch))
                    .collect()
            }
            KernelMode::Fast => {
                // One flat scratch shared by every group count: the DP is
                // ~95 % of an EHTR decide, so the fast lane's gains live
                // here.
                let mut scratch = PartitionScratch::default();
                (n_min..=n_max)
                    .map(|n| Self::optimal_partition_fast_with(&mpp_currents, n, &mut scratch))
                    .collect()
            }
        };
        pick_best_candidate(solver, array, deltas, candidates)
    }
}

/// Reusable flat DP tables for [`Ehtr::optimal_partition_fast_with`]:
/// `prefix` sums, the previous/current cost rows, and the full boundary
/// (`choice`) table in row-major order.
#[derive(Debug, Clone, Default)]
struct PartitionScratch {
    prefix: Vec<f64>,
    cost_prev: Vec<f64>,
    cost_cur: Vec<f64>,
    choice: Vec<u32>,
}

impl Reconfigurer for Ehtr {
    fn name(&self) -> &'static str {
        "EHTR"
    }

    fn period(&self) -> Seconds {
        self.config.period()
    }

    fn decide(
        &mut self,
        window: &TelemetryWindow<'_>,
        _current: &Configuration,
    ) -> Result<ReconfigDecision, ReconfigError> {
        let started = Instant::now();
        let deltas = window.current_deltas();
        let configuration = match self.memo.as_ref().and_then(|m| m.lookup(&deltas)) {
            Some(cached) => cached.clone(),
            None => {
                let (configuration, _) = self.optimise(window.array(), &deltas)?;
                self.memo = Some(DecisionMemo::new(deltas, configuration.clone()));
                configuration
            }
        };
        let elapsed = Seconds::new(started.elapsed().as_secs_f64());
        // Like INOR, the prior-work controller re-applies on every period.
        Ok(ReconfigDecision::new(configuration, elapsed, true, true))
    }

    fn reset(&mut self) {
        self.memo = None;
    }

    fn set_kernel_mode(&mut self, mode: KernelMode) {
        if mode != self.mode {
            self.memo = None;
        }
        self.mode = mode;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_array::ideal_power;
    use teg_device::{TegDatasheet, TegModule};
    use teg_units::Celsius;

    fn array(n: usize) -> TegArray {
        TegArray::uniform(
            TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8()),
            n,
        )
    }

    fn radiator_like_deltas(n: usize) -> Vec<TemperatureDelta> {
        (0..n)
            .map(|i| TemperatureDelta::new(70.0 * (-(i as f64) * 0.8 / n as f64).exp()))
            .collect()
    }

    #[test]
    fn dp_partition_is_at_least_as_balanced_as_the_greedy() {
        let currents: Vec<Amps> = (0..40)
            .map(|i| Amps::new(2.0 * (-(i as f64) * 0.07).exp()))
            .collect();
        let total: f64 = currents.iter().map(|c| c.value()).sum();
        for n in 2..=8 {
            let ideal = total / n as f64;
            let imbalance = |config: &Configuration| -> f64 {
                config
                    .groups()
                    .map(|g| {
                        let sum: f64 = g.indices().map(|i| currents[i].value()).sum();
                        (sum - ideal) * (sum - ideal)
                    })
                    .sum()
            };
            let dp = Ehtr::optimal_partition(&currents, n);
            let greedy = Inor::balanced_partition(&currents, n);
            assert!(
                imbalance(&dp) <= imbalance(&greedy) + 1e-9,
                "DP imbalance should never exceed the greedy's (n={n})"
            );
        }
    }

    #[test]
    fn dp_partition_covers_all_modules() {
        let currents: Vec<Amps> = (0..25)
            .map(|i| Amps::new(1.0 + (i % 7) as f64 * 0.2))
            .collect();
        for n in 1..=25 {
            let config = Ehtr::optimal_partition(&currents, n);
            assert_eq!(config.group_count(), n);
            assert_eq!(config.groups().map(|g| g.len()).sum::<usize>(), 25);
        }
    }

    #[test]
    fn fast_dp_returns_the_exact_partition() {
        // The vectorised DP evaluates every candidate with the reference
        // operation order and tie-breaks identically, so the fast lane's
        // partition must equal the serial one — not just approximate it.
        for (count, decay) in [(7usize, 0.25), (24, 0.07), (40, 0.07), (61, 0.02)] {
            let currents: Vec<Amps> = (0..count)
                .map(|i| Amps::new(2.0 * (-(i as f64) * decay).exp()))
                .collect();
            for n in 1..=count.min(13) {
                let exact = Ehtr::optimal_partition(&currents, n);
                let fast = Ehtr::optimal_partition_fast(&currents, n);
                assert_eq!(exact, fast, "count={count} n={n}");
            }
        }
        // Plateaus of equal currents exercise the tie-break on every merge.
        let flat = vec![Amps::new(1.0); 32];
        for n in 1..=12 {
            assert_eq!(
                Ehtr::optimal_partition(&flat, n),
                Ehtr::optimal_partition_fast(&flat, n),
                "flat n={n}"
            );
        }
    }

    #[test]
    fn fast_mode_optimise_matches_bit_exact_partitions() {
        let a = array(40);
        let deltas = radiator_like_deltas(40);
        let exact = Ehtr::default();
        let mut fast = Ehtr::default();
        fast.set_kernel_mode(KernelMode::Fast);
        assert_eq!(fast.kernel_mode(), KernelMode::Fast);
        let (ce, pe) = exact.optimise(&a, &deltas).unwrap();
        let (cf, pf) = fast.optimise(&a, &deltas).unwrap();
        // The DP partitions are identical; the candidate powers may differ
        // only by the solver's chunked-sum rounding.
        assert_eq!(ce, cf);
        assert!(teg_units::approx_eq(pe.value(), pf.value(), 1e-12));
    }

    #[test]
    fn ehtr_output_power_is_close_to_inor() {
        let a = array(60);
        let deltas = radiator_like_deltas(60);
        let (_, p_ehtr) = Ehtr::default().optimise(&a, &deltas).unwrap();
        let (_, p_inor) = Inor::default().optimise(&a, &deltas).unwrap();
        let ideal = ideal_power(a.modules(), &deltas).unwrap();
        assert!(p_ehtr.value() <= ideal.value() + 1e-9);
        // The two near-optimal schemes land within a few percent of each
        // other, as in the paper's Table I.
        let ratio = p_ehtr.value() / p_inor.value();
        assert!(
            (0.95..=1.05).contains(&ratio),
            "EHTR/INOR power ratio {ratio:.3}"
        );
    }

    #[test]
    fn ehtr_is_slower_than_inor_on_large_arrays() {
        let a = array(200);
        let temps: Vec<f64> = (0..200).map(|i| 96.0 - 0.2 * i as f64).collect();
        let history = vec![temps];
        let inputs = TelemetryWindow::new(&a, &history, Celsius::new(25.0)).unwrap();
        let current = Configuration::uniform(200, 10).unwrap();
        let mut inor = Inor::default();
        let mut ehtr = Ehtr::default();
        let d_inor = inor.decide(&inputs, &current).unwrap();
        let d_ehtr = ehtr.decide(&inputs, &current).unwrap();
        assert!(
            d_ehtr.computation().value() > d_inor.computation().value(),
            "EHTR ({}) should take longer than INOR ({})",
            d_ehtr.computation(),
            d_inor.computation()
        );
    }

    #[test]
    fn trait_metadata() {
        let ehtr = Ehtr::default();
        assert_eq!(ehtr.name(), "EHTR");
        assert_eq!(ehtr.period(), Seconds::new(0.5));
        assert_eq!(ehtr.config().min_converter_efficiency(), 0.9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_groups_is_rejected() {
        let currents = vec![Amps::new(1.0); 4];
        let _ = Ehtr::optimal_partition(&currents, 0);
    }
}
