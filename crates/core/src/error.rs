//! Error type for the reconfiguration algorithms.

use std::error::Error;
use std::fmt;

use teg_array::ArrayError;
use teg_predict::PredictError;

/// Errors produced by the reconfiguration algorithms.
///
/// # Examples
///
/// ```
/// use teg_reconfig::ReconfigError;
///
/// let err = ReconfigError::EmptyHistory;
/// assert!(err.to_string().contains("temperature history"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReconfigError {
    /// The temperature history handed to the algorithm contained no samples.
    EmptyHistory,
    /// The history rows do not all have one entry per module.
    InconsistentHistory {
        /// Number of modules in the array.
        modules: usize,
        /// Length of the offending history row.
        row_len: usize,
    },
    /// A configuration parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An error bubbled up from the array substrate.
    Array(ArrayError),
    /// An error bubbled up from the prediction substrate.
    Predict(PredictError),
}

impl fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyHistory => write!(f, "the temperature history contains no samples"),
            Self::InconsistentHistory { modules, row_len } => write!(
                f,
                "temperature history row has {row_len} entries but the array has {modules} modules"
            ),
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter {name}")
            }
            Self::Array(err) => write!(f, "array error: {err}"),
            Self::Predict(err) => write!(f, "prediction error: {err}"),
        }
    }
}

impl Error for ReconfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Array(err) => Some(err),
            Self::Predict(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ArrayError> for ReconfigError {
    fn from(err: ArrayError) -> Self {
        Self::Array(err)
    }
}

impl From<PredictError> for ReconfigError {
    fn from(err: PredictError) -> Self {
        Self::Predict(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        assert!(ReconfigError::EmptyHistory
            .to_string()
            .contains("no samples"));
        assert!(ReconfigError::InconsistentHistory {
            modules: 10,
            row_len: 9
        }
        .to_string()
        .contains("9"));
        assert!(ReconfigError::InvalidParameter {
            name: "horizon",
            value: 0.0
        }
        .to_string()
        .contains("horizon"));
        let err = ReconfigError::from(ArrayError::EmptyArray);
        assert!(std::error::Error::source(&err).is_some());
        let err = ReconfigError::from(PredictError::NotFitted);
        assert!(std::error::Error::source(&err).is_some());
        assert!(std::error::Error::source(&ReconfigError::EmptyHistory).is_none());
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ReconfigError>();
    }
}
