//! Scheme factories: cloneable, thread-safe recipes for building fresh
//! [`Reconfigurer`] instances.
//!
//! A running scheme is stateful (DNOR keeps fitted predictors and an
//! evaluation phase), so one *instance* cannot be shared between concurrent
//! sessions.  A [`SchemeSpec`] captures how to build the scheme instead: it
//! is `Clone + Send + Sync`, carries the scheme's display name, and
//! [`SchemeSpec::build`] mints an independent instance on demand — one per
//! worker thread, one per grid cell, however many a parallel scenario sweep
//! needs.

use std::fmt;
use std::sync::Arc;

use teg_units::Seconds;

use crate::aco::{AcoConfig, AcoReconfigurer};
use crate::baseline::StaticBaseline;
use crate::dnor::{Dnor, DnorConfig};
use crate::ehtr::Ehtr;
use crate::inor::{Inor, InorConfig};
use crate::traits::Reconfigurer;

/// A factory for one reconfiguration scheme: a name plus a `build()` that
/// returns a fresh, independent [`Reconfigurer`] instance.
///
/// The name is probed from a prototype instance at construction, so it
/// always matches what the built scheme will report (and what simulation
/// reports will be keyed by).
///
/// # Examples
///
/// ```
/// use teg_reconfig::{Reconfigurer, SchemeSpec};
///
/// let spec = SchemeSpec::inor();
/// assert_eq!(spec.name(), "INOR");
/// let a = spec.build();
/// let b = spec.build(); // an independent instance, fresh state
/// assert_eq!(a.name(), b.name());
/// ```
#[derive(Clone)]
pub struct SchemeSpec {
    name: String,
    spec: Option<String>,
    build: Arc<dyn Fn() -> Box<dyn Reconfigurer> + Send + Sync>,
}

impl SchemeSpec {
    /// Wraps a constructor closure as a spec, probing one prototype instance
    /// for the scheme name.
    pub fn new<R, F>(build: F) -> Self
    where
        R: Reconfigurer + 'static,
        F: Fn() -> R + Send + Sync + 'static,
    {
        let name = build().name().to_owned();
        Self {
            name,
            spec: None,
            build: Arc::new(move || Box::new(build())),
        }
    }

    fn tagged(mut self, spec: String) -> Self {
        self.spec = Some(spec);
        self
    }

    /// The scheme's display name, as the built instances will report it.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compact text token this spec serialises to, when it was built
    /// from one of the named presets ([`SchemeSpec::parse`] round-trips it).
    /// Specs wrapping arbitrary constructors ([`SchemeSpec::new`],
    /// [`SchemeSpec::inor_with`], …) have no token and return `None`.
    #[must_use]
    pub fn spec(&self) -> Option<&str> {
        self.spec.as_deref()
    }

    /// Parses a preset token back into the spec that emitted it: `inor`,
    /// `ehtr`, `dnor`, `dnor-det:<seconds>`, `aco`, `aco:<seed>` or
    /// `baseline:<modules>`.  Returns `None` for unknown tokens or
    /// malformed parameters, so wire layers can reject bad requests instead
    /// of panicking.
    #[must_use]
    pub fn parse(token: &str) -> Option<Self> {
        match token {
            "inor" => return Some(Self::inor()),
            "ehtr" => return Some(Self::ehtr()),
            "dnor" => return Some(Self::dnor()),
            "aco" => return Some(Self::aco()),
            _ => {}
        }
        if let Some(value) = token.strip_prefix("dnor-det:") {
            let seconds: f64 = value.parse().ok()?;
            if !(seconds.is_finite() && seconds >= 0.0) {
                return None;
            }
            return Some(Self::dnor_deterministic(Seconds::new(seconds)));
        }
        if let Some(value) = token.strip_prefix("aco:") {
            let seed: u64 = value.parse().ok()?;
            return Some(Self::aco_seeded(seed));
        }
        if let Some(value) = token.strip_prefix("baseline:") {
            let modules: usize = value.parse().ok()?;
            if modules == 0 {
                return None;
            }
            return Some(Self::baseline_square_grid(modules));
        }
        None
    }

    /// Builds a fresh instance with pristine state.
    #[must_use]
    pub fn build(&self) -> Box<dyn Reconfigurer> {
        (self.build)()
    }

    /// INOR with its default tuning.
    #[must_use]
    pub fn inor() -> Self {
        Self::new(Inor::default).tagged("inor".into())
    }

    /// INOR with explicit tuning parameters.
    #[must_use]
    pub fn inor_with(config: InorConfig) -> Self {
        Self::new(move || Inor::new(config.clone()))
    }

    /// DNOR with its default tuning.
    #[must_use]
    pub fn dnor() -> Self {
        Self::new(Dnor::default).tagged("dnor".into())
    }

    /// DNOR with explicit tuning parameters.
    #[must_use]
    pub fn dnor_with(config: DnorConfig) -> Self {
        Self::new(move || Dnor::new(config.clone()))
    }

    /// DNOR with default tuning but a fixed assumed computation time, so its
    /// switch economics (and hence the whole run) are bit-reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `computation` is negative or non-finite (the deterministic
    /// field presets pass literal non-negative values).
    #[must_use]
    pub fn dnor_deterministic(computation: Seconds) -> Self {
        let config = DnorConfig::default()
            .with_assumed_computation(computation)
            .expect("assumed computation must be non-negative and finite");
        Self::dnor_with(config).tagged(format!("dnor-det:{}", computation.value()))
    }

    /// The prior-work EHTR re-implementation with its default tuning.
    #[must_use]
    pub fn ehtr() -> Self {
        Self::new(Ehtr::default).tagged("ehtr".into())
    }

    /// The ACO search scheme with its default tuning (and default seed).
    /// Every built instance starts from the same seed, so sweeps are
    /// workers-independent: each cell's colony replays the same schedule.
    #[must_use]
    pub fn aco() -> Self {
        Self::new(AcoReconfigurer::default).tagged("aco".into())
    }

    /// The ACO search scheme with default tuning but an explicit seed.
    #[must_use]
    pub fn aco_seeded(seed: u64) -> Self {
        Self::new(move || AcoReconfigurer::new(AcoConfig::default().with_seed(seed)))
            .tagged(format!("aco:{seed}"))
    }

    /// The ACO search scheme with explicit tuning parameters.
    #[must_use]
    pub fn aco_with(config: AcoConfig) -> Self {
        Self::new(move || AcoReconfigurer::new(config.clone()))
    }

    /// The static square-grid baseline for an array of `module_count`
    /// modules.
    #[must_use]
    pub fn baseline_square_grid(module_count: usize) -> Self {
        Self::new(move || StaticBaseline::square_grid(module_count))
            .tagged(format!("baseline:{module_count}"))
    }

    /// The paper's Table I field for an array of `module_count` modules:
    /// DNOR, INOR, EHTR and the square-grid baseline, in that order.
    #[must_use]
    pub fn paper_field(module_count: usize) -> Vec<Self> {
        vec![
            Self::dnor(),
            Self::inor(),
            Self::ehtr(),
            Self::baseline_square_grid(module_count),
        ]
    }

    /// The paper's Table I field in its bit-reproducible form: identical to
    /// [`SchemeSpec::paper_field`] except that DNOR charges the fixed
    /// `computation` time instead of measuring its own wall clock.  Combined
    /// with a simulation `RuntimePolicy::Fixed` of the same value, every
    /// scheme in the field is a pure function of the telemetry — the lineup
    /// golden-trace snapshots and serial/parallel sweep equivalence are
    /// asserted against.
    ///
    /// # Panics
    ///
    /// Panics if `computation` is negative or non-finite.
    #[must_use]
    pub fn paper_field_fixed(module_count: usize, computation: Seconds) -> Vec<Self> {
        vec![
            Self::dnor_deterministic(computation),
            Self::inor(),
            Self::ehtr(),
            Self::baseline_square_grid(module_count),
        ]
    }
}

impl fmt::Debug for SchemeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchemeSpec")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_send_sync_and_cloneable() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<SchemeSpec>();
    }

    #[test]
    fn names_match_the_built_scheme() {
        for (spec, expected) in [
            (SchemeSpec::inor(), "INOR"),
            (SchemeSpec::dnor(), "DNOR"),
            (SchemeSpec::ehtr(), "EHTR"),
            (SchemeSpec::aco(), "ACO"),
            (SchemeSpec::baseline_square_grid(16), "Baseline"),
        ] {
            assert_eq!(spec.name(), expected);
            assert_eq!(spec.build().name(), expected);
        }
    }

    #[test]
    fn built_instances_are_independent() {
        let spec = SchemeSpec::dnor();
        let mut a = spec.build();
        let b = spec.build();
        // Resetting one instance does not disturb the other (they would
        // alias if `build` handed out shared state).
        a.reset();
        assert_eq!(a.name(), b.name());
        assert_eq!(a.period(), b.period());
    }

    #[test]
    fn paper_field_covers_the_four_schemes() {
        let field = SchemeSpec::paper_field(100);
        let names: Vec<&str> = field.iter().map(SchemeSpec::name).collect();
        assert_eq!(names, ["DNOR", "INOR", "EHTR", "Baseline"]);
    }

    #[test]
    fn fixed_paper_field_matches_the_measured_one_by_name() {
        let field = SchemeSpec::paper_field_fixed(100, Seconds::new(0.002));
        let names: Vec<&str> = field.iter().map(SchemeSpec::name).collect();
        assert_eq!(names, ["DNOR", "INOR", "EHTR", "Baseline"]);
        assert_eq!(
            SchemeSpec::dnor_deterministic(Seconds::new(0.002)).name(),
            "DNOR"
        );
    }

    #[test]
    fn debug_shows_the_name_only() {
        let text = format!("{:?}", SchemeSpec::ehtr());
        assert!(text.contains("EHTR"), "{text}");
    }

    #[test]
    fn preset_tokens_round_trip_through_parse() {
        for token in [
            "inor",
            "ehtr",
            "dnor",
            "dnor-det:0.002",
            "aco",
            "aco:42",
            "baseline:100",
        ] {
            let spec = SchemeSpec::parse(token).expect(token);
            assert_eq!(spec.spec(), Some(token), "canonical token for {token}");
            let again = SchemeSpec::parse(spec.spec().unwrap()).unwrap();
            assert_eq!(again.name(), spec.name());
            assert_eq!(again.spec(), spec.spec());
        }
        assert_eq!(SchemeSpec::inor().spec(), Some("inor"));
        assert_eq!(
            SchemeSpec::baseline_square_grid(36).spec(),
            Some("baseline:36")
        );
        assert_eq!(
            SchemeSpec::dnor_deterministic(Seconds::new(0.002)).spec(),
            Some("dnor-det:0.002")
        );
    }

    #[test]
    fn custom_constructors_have_no_token_and_bad_tokens_fail() {
        assert_eq!(SchemeSpec::new(Inor::default).spec(), None);
        assert_eq!(SchemeSpec::inor_with(InorConfig::default()).spec(), None);
        assert_eq!(SchemeSpec::aco_with(AcoConfig::default()).spec(), None);
        for bad in [
            "",
            "nonesuch",
            "dnor-det:",
            "dnor-det:-1",
            "dnor-det:inf",
            "dnor-det:NaN",
            "aco:",
            "aco:-1",
            "aco:seedless",
            "baseline:",
            "baseline:0",
            "baseline:ten",
        ] {
            assert!(SchemeSpec::parse(bad).is_none(), "{bad:?} should not parse");
        }
    }
}
