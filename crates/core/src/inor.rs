//! INOR — Instantaneous Near-Optimal Reconfiguration (Algorithm 1).

use std::time::Instant;

use teg_array::{ArraySolver, Configuration, TegArray};
use teg_power::Charger;
use teg_units::{Amps, KernelMode, Seconds, TemperatureDelta, Watts};

use crate::error::ReconfigError;
use crate::memo::DecisionMemo;
use crate::telemetry::TelemetryWindow;
use crate::traits::{ReconfigDecision, Reconfigurer};

/// Tuning parameters of INOR.
///
/// The charger model and the efficiency floor determine the feasible range of
/// group counts `[n_min, n_max]`: the array MPP voltage is roughly `n` times
/// one group's MPP voltage and must stay inside the converter's efficient
/// input window (Section III-B of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct InorConfig {
    charger: Charger,
    min_converter_efficiency: f64,
    period: Seconds,
}

impl InorConfig {
    /// Creates a configuration from a charger model, the minimum acceptable
    /// converter efficiency and the reconfiguration period.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigError::InvalidParameter`] if the efficiency is not
    /// in `(0, 1]` or the period is not strictly positive.
    pub fn new(
        charger: Charger,
        min_converter_efficiency: f64,
        period: Seconds,
    ) -> Result<Self, ReconfigError> {
        if !(min_converter_efficiency > 0.0 && min_converter_efficiency <= 1.0) {
            return Err(ReconfigError::InvalidParameter {
                name: "minimum converter efficiency",
                value: min_converter_efficiency,
            });
        }
        if !(period.value() > 0.0) {
            return Err(ReconfigError::InvalidParameter {
                name: "reconfiguration period",
                value: period.value(),
            });
        }
        Ok(Self {
            charger,
            min_converter_efficiency,
            period,
        })
    }

    /// The charger model used to derive the group-count window.
    #[must_use]
    pub const fn charger(&self) -> &Charger {
        &self.charger
    }

    /// The efficiency floor the array voltage must keep the charger above.
    #[must_use]
    pub const fn min_converter_efficiency(&self) -> f64 {
        self.min_converter_efficiency
    }

    /// The reconfiguration period.
    #[must_use]
    pub const fn period(&self) -> Seconds {
        self.period
    }
}

impl Default for InorConfig {
    /// The paper's evaluation setting: LTM4607-class charger into a 13.8 V
    /// lead-acid battery, a 90 % converter-efficiency floor and a 0.5 s
    /// reconfiguration period (following the photovoltaic prior work).
    fn default() -> Self {
        Self {
            charger: Charger::ltm4607_lead_acid(),
            min_converter_efficiency: 0.90,
            period: Seconds::new(0.5),
        }
    }
}

/// The `O(N)` instantaneous near-optimal reconfiguration algorithm.
///
/// For every feasible group count `n`, the chain of modules is partitioned
/// greedily so that each group's summed MPP current is as close as possible
/// to the ideal share `Σ I_MPP / n`; the candidate with the highest array MPP
/// power wins.
///
/// # Examples
///
/// ```
/// use teg_array::{Configuration, TegArray};
/// use teg_device::{TegDatasheet, TegModule};
/// use teg_reconfig::{Inor, Reconfigurer, TelemetryWindow};
/// use teg_units::Celsius;
///
/// # fn main() -> Result<(), teg_reconfig::ReconfigError> {
/// let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let array = TegArray::uniform(module, 30);
/// let temps: Vec<f64> = (0..30).map(|i| 96.0 - 1.2 * i as f64).collect();
/// let history = vec![temps];
/// let inputs = TelemetryWindow::new(&array, &history, Celsius::new(25.0))?;
/// let current = Configuration::uniform(30, 5).expect("valid");
/// let decision = Inor::default().decide(&inputs, &current)?;
/// assert!(decision.evaluated());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Inor {
    config: InorConfig,
    mode: KernelMode,
    // Last (ΔT row → partition) pair: a 0.5 s period over 1 s steps asks the
    // same question twice per step.
    memo: Option<DecisionMemo>,
}

/// The memo caches derived state only, so it stays out of scheme identity.
impl PartialEq for Inor {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config && self.mode == other.mode
    }
}

impl Inor {
    /// Creates INOR with explicit tuning parameters.
    #[must_use]
    pub fn new(config: InorConfig) -> Self {
        Self {
            config,
            mode: KernelMode::default(),
            memo: None,
        }
    }

    /// The tuning parameters in use.
    #[must_use]
    pub const fn config(&self) -> &InorConfig {
        &self.config
    }

    /// The kernel mode the candidate scans run in.
    #[must_use]
    pub const fn kernel_mode(&self) -> KernelMode {
        self.mode
    }

    /// Derives the feasible group-count window `[n_min, n_max]` from the
    /// charger's efficient input-voltage window and the modules' current MPP
    /// voltages.
    #[must_use]
    pub fn group_bounds(&self, array: &TegArray, deltas: &[TemperatureDelta]) -> (usize, usize) {
        let n = array.len();
        let mean_vmpp = array
            .modules()
            .iter()
            .zip(deltas.iter())
            .map(|(m, &dt)| m.mpp(dt).voltage().value())
            .sum::<f64>()
            / n as f64;
        if mean_vmpp <= 1e-9 {
            // No usable temperature difference anywhere: any wiring is as
            // good as any other.
            return (1, 1);
        }
        let Some((lo, hi)) = self
            .config
            .charger
            .voltage_window(self.config.min_converter_efficiency)
        else {
            return (1, n);
        };
        let n_min = ((lo.value() / mean_vmpp).ceil() as usize).clamp(1, n);
        let n_max = ((hi.value() / mean_vmpp).floor() as usize).clamp(n_min, n);
        (n_min, n_max)
    }

    /// Greedily partitions the chain into `n` groups whose summed MPP
    /// currents are balanced around `Σ I_MPP / n` — the inner loop of
    /// Algorithm 1.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the number of modules; callers derive
    /// `n` from [`Inor::group_bounds`], which respects both limits.
    #[must_use]
    pub fn balanced_partition(mpp_currents: &[Amps], n: usize) -> Configuration {
        let modules = mpp_currents.len();
        assert!(
            n >= 1 && n <= modules,
            "group count {n} out of range for {modules} modules"
        );
        let total: f64 = mpp_currents.iter().map(|i| i.value()).sum();
        let ideal = total / n as f64;

        let mut starts = Vec::with_capacity(n);
        starts.push(0usize);
        let mut index = 0usize;
        for group in 0..n - 1 {
            let remaining_groups = n - 1 - group;
            // Leave at least one module for each remaining group.
            let max_take = modules - index - remaining_groups;
            let mut sum = 0.0;
            let mut taken = 0usize;
            while taken < max_take {
                let candidate = sum + mpp_currents[index + taken].value();
                // Take at least one module, then keep taking while it brings
                // the group sum closer to the ideal share.
                if taken == 0 || (candidate - ideal).abs() <= (sum - ideal).abs() {
                    sum = candidate;
                    taken += 1;
                } else {
                    break;
                }
            }
            index += taken.max(1);
            starts.push(index);
        }
        Configuration::new(starts, modules).expect("greedy partition is always valid")
    }

    /// Runs Algorithm 1 on the given ΔT vector, returning the best
    /// configuration found and its array MPP power.
    ///
    /// # Errors
    ///
    /// Propagates [`ReconfigError::Array`] if the ΔT vector does not match
    /// the array.
    pub fn optimise(
        &self,
        array: &TegArray,
        deltas: &[TemperatureDelta],
    ) -> Result<(Configuration, Watts), ReconfigError> {
        self.optimise_with(&mut ArraySolver::with_mode(self.mode), array, deltas)
    }

    /// [`Inor::optimise`] evaluating its candidates through a caller-owned
    /// solver, so a looping controller reuses the scratch buffers across
    /// invocations instead of reallocating them.
    ///
    /// # Errors
    ///
    /// Propagates [`ReconfigError::Array`] if the ΔT vector does not match
    /// the array.
    pub fn optimise_with(
        &self,
        solver: &mut ArraySolver,
        array: &TegArray,
        deltas: &[TemperatureDelta],
    ) -> Result<(Configuration, Watts), ReconfigError> {
        let mpp_currents = array.mpp_currents(deltas)?;
        let (n_min, n_max) = self.group_bounds(array, deltas);
        let candidates: Vec<Configuration> = (n_min..=n_max)
            .map(|n| Self::balanced_partition(&mpp_currents, n))
            .collect();
        pick_best_candidate(solver, array, deltas, candidates)
    }
}

/// The shared candidate scan of INOR and EHTR: load the per-module EMF and
/// conductance terms once, evaluate every candidate through the batch
/// kernel, and keep the earliest maximum (the same tie-break the original
/// per-candidate loop used).
pub(crate) fn pick_best_candidate(
    solver: &mut ArraySolver,
    array: &TegArray,
    deltas: &[TemperatureDelta],
    candidates: Vec<Configuration>,
) -> Result<(Configuration, Watts), ReconfigError> {
    solver.load(array, deltas, None)?;
    let mut powers = Vec::with_capacity(candidates.len());
    solver.evaluate_candidates(&candidates, &mut powers)?;
    let mut best = 0;
    for (i, power) in powers.iter().enumerate() {
        if *power > powers[best] {
            best = i;
        }
    }
    let power = powers[best];
    let configuration = candidates
        .into_iter()
        .nth(best)
        .expect("window always contains at least one group count");
    Ok((configuration, power))
}

impl Reconfigurer for Inor {
    fn name(&self) -> &'static str {
        "INOR"
    }

    fn period(&self) -> Seconds {
        self.config.period
    }

    fn decide(
        &mut self,
        window: &TelemetryWindow<'_>,
        _current: &Configuration,
    ) -> Result<ReconfigDecision, ReconfigError> {
        let started = Instant::now();
        let deltas = window.current_deltas();
        let configuration = match self.memo.as_ref().and_then(|m| m.lookup(&deltas)) {
            Some(cached) => cached.clone(),
            None => {
                let (configuration, _) = self.optimise(window.array(), &deltas)?;
                self.memo = Some(DecisionMemo::new(deltas, configuration.clone()));
                configuration
            }
        };
        let elapsed = Seconds::new(started.elapsed().as_secs_f64());
        // The fixed-period controller re-applies its result every period,
        // paying the reconfiguration dead time even when nothing changed.
        Ok(ReconfigDecision::new(configuration, elapsed, true, true))
    }

    fn reset(&mut self) {
        self.memo = None;
    }

    fn set_kernel_mode(&mut self, mode: KernelMode) {
        if mode != self.mode {
            self.memo = None;
        }
        self.mode = mode;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use teg_array::ideal_power;
    use teg_device::{TegDatasheet, TegModule};
    use teg_units::Celsius;

    fn array(n: usize) -> TegArray {
        TegArray::uniform(
            TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8()),
            n,
        )
    }

    fn radiator_like_deltas(n: usize) -> Vec<TemperatureDelta> {
        (0..n)
            .map(|i| TemperatureDelta::new(70.0 * (-(i as f64) * 0.8 / n as f64).exp()))
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(InorConfig::new(Charger::ltm4607_lead_acid(), 0.0, Seconds::new(0.5)).is_err());
        assert!(InorConfig::new(Charger::ltm4607_lead_acid(), 1.1, Seconds::new(0.5)).is_err());
        assert!(InorConfig::new(Charger::ltm4607_lead_acid(), 0.9, Seconds::ZERO).is_err());
        let cfg = InorConfig::new(Charger::ltm4607_lead_acid(), 0.9, Seconds::new(0.5)).unwrap();
        assert_eq!(cfg.period(), Seconds::new(0.5));
        assert_eq!(cfg.min_converter_efficiency(), 0.9);
        assert!(cfg.charger().output_voltage().value() > 13.0);
    }

    #[test]
    fn group_bounds_bracket_the_battery_voltage() {
        let inor = Inor::default();
        let a = array(100);
        let deltas = vec![TemperatureDelta::new(60.0); 100];
        let (n_min, n_max) = inor.group_bounds(&a, &deltas);
        assert!(n_min >= 1 && n_max <= 100 && n_min <= n_max);
        // The implied array voltage window must straddle 13.8 V.
        let vmpp = a.modules()[0]
            .mpp(TemperatureDelta::new(60.0))
            .voltage()
            .value();
        assert!(n_min as f64 * vmpp <= 13.8 * 2.5);
        assert!(n_max as f64 * vmpp >= 13.8 * 0.4);
    }

    #[test]
    fn zero_delta_t_collapses_bounds() {
        let inor = Inor::default();
        let a = array(10);
        let deltas = vec![TemperatureDelta::ZERO; 10];
        assert_eq!(inor.group_bounds(&a, &deltas), (1, 1));
    }

    #[test]
    fn balanced_partition_covers_all_modules() {
        let currents: Vec<Amps> = (0..17).map(|i| Amps::new(1.0 + 0.1 * i as f64)).collect();
        for n in 1..=17 {
            let config = Inor::balanced_partition(&currents, n);
            assert_eq!(config.group_count(), n);
            assert_eq!(config.module_count(), 17);
            let covered: usize = config.groups().map(|g| g.len()).sum();
            assert_eq!(covered, 17);
        }
    }

    #[test]
    fn balanced_partition_balances_group_currents() {
        // A strongly decaying current profile: a naive equal-size split would
        // put far more current in the first group than the last.
        let currents: Vec<Amps> = (0..30)
            .map(|i| Amps::new(2.0 * (-(i as f64) * 0.1).exp()))
            .collect();
        let total: f64 = currents.iter().map(|c| c.value()).sum();
        let n = 5;
        let ideal = total / n as f64;
        let config = Inor::balanced_partition(&currents, n);
        for group in config.groups() {
            let sum: f64 = group.indices().map(|i| currents[i].value()).sum();
            // Every group is within one module's worth of current of the
            // ideal share (the greedy stops when crossing the ideal).
            assert!(
                (sum - ideal).abs() <= 2.0,
                "group {group:?} sum {sum:.2} too far from ideal {ideal:.2}"
            );
        }
    }

    #[test]
    fn inor_beats_the_static_grid_under_a_gradient() {
        let a = array(100);
        let deltas = radiator_like_deltas(100);
        let inor = Inor::default();
        let (best, power) = inor.optimise(&a, &deltas).unwrap();
        let baseline = Configuration::uniform(100, 10).unwrap();
        let baseline_power = a.mpp_power(&baseline, &deltas).unwrap();
        assert!(
            power.value() > baseline_power.value(),
            "INOR {power} should beat the 10x10 baseline {baseline_power}"
        );
        assert!(best.group_count() >= 1);
        // And it cannot exceed the physical upper bound.
        let ideal = ideal_power(a.modules(), &deltas).unwrap();
        assert!(power.value() <= ideal.value() + 1e-9);
    }

    #[test]
    fn inor_reaches_a_large_fraction_of_ideal_power() {
        let a = array(100);
        let deltas = radiator_like_deltas(100);
        let (_, power) = Inor::default().optimise(&a, &deltas).unwrap();
        let ideal = ideal_power(a.modules(), &deltas).unwrap();
        let ratio = power.value() / ideal.value();
        assert!(ratio > 0.9, "INOR reached only {ratio:.3} of ideal");
    }

    #[test]
    fn decide_reports_evaluation_and_runtime() {
        let a = array(40);
        let temps: Vec<f64> = (0..40).map(|i| 95.0 - 0.9 * i as f64).collect();
        let history = vec![temps];
        let inputs = TelemetryWindow::new(&a, &history, Celsius::new(25.0)).unwrap();
        let current = Configuration::uniform(40, 4).unwrap();
        let mut inor = Inor::default();
        assert_eq!(inor.name(), "INOR");
        assert_eq!(inor.period(), Seconds::new(0.5));
        let decision = inor.decide(&inputs, &current).unwrap();
        assert!(decision.evaluated());
        assert!(decision.computation().value() >= 0.0);
        let adopted = decision
            .configuration()
            .expect("INOR always proposes a configuration");
        assert_eq!(adopted.module_count(), 40);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_groups_is_rejected() {
        let currents = vec![Amps::new(1.0); 4];
        let _ = Inor::balanced_partition(&currents, 0);
    }

    proptest! {
        /// The greedy partition always produces a valid configuration whose
        /// MPP power never exceeds the ideal bound, for arbitrary gradients.
        #[test]
        fn prop_partition_valid_and_bounded(
            n in 2usize..60,
            groups in 1usize..12,
            hot in 40.0_f64..110.0,
            decay in 0.0_f64..2.0,
        ) {
            prop_assume!(groups <= n);
            let a = array(n);
            let deltas: Vec<_> = (0..n)
                .map(|i| TemperatureDelta::new(hot * (-(i as f64) * decay / n as f64).exp()))
                .collect();
            let currents = a.mpp_currents(&deltas).unwrap();
            let config = Inor::balanced_partition(&currents, groups);
            prop_assert_eq!(config.group_count(), groups);
            let power = a.mpp_power(&config, &deltas).unwrap();
            let ideal = ideal_power(a.modules(), &deltas).unwrap();
            prop_assert!(power.value() <= ideal.value() + 1e-6);
        }

        /// INOR's chosen configuration is never worse than every uniform
        /// split inside its own group window (it can only add candidates).
        #[test]
        fn prop_inor_at_least_as_good_as_uniform_splits(
            n in 4usize..50,
            hot in 40.0_f64..100.0,
        ) {
            let a = array(n);
            let deltas: Vec<_> = (0..n)
                .map(|i| TemperatureDelta::new(hot * (1.0 - 0.6 * i as f64 / n as f64)))
                .collect();
            let inor = Inor::default();
            let (_, power) = inor.optimise(&a, &deltas).unwrap();
            let (n_min, n_max) = inor.group_bounds(&a, &deltas);
            for groups in n_min..=n_max {
                let uniform = Configuration::uniform(n, groups).unwrap();
                let uniform_power = a.mpp_power(&uniform, &deltas).unwrap();
                // Allow a tiny slack: the greedy balances currents, which is
                // not always identical to the best uniform split but must be
                // competitive.
                prop_assert!(power.value() >= 0.98 * uniform_power.value());
            }
        }
    }
}
