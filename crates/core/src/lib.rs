//! TEG array reconfiguration algorithms — the paper's primary contribution.
//!
//! Five schemes are provided behind the common [`Reconfigurer`] trait:
//!
//! * [`Inor`] — **I**nstantaneous **N**ear-**O**ptimal **R**econfiguration
//!   (Algorithm 1): an `O(N)` greedy that, for every feasible group count
//!   `n ∈ [n_min, n_max]`, balances the sum of module MPP currents across the
//!   `n` groups and keeps the configuration with the highest array MPP power.
//! * [`Dnor`] — **D**urable **N**ear-**O**ptimal **R**econfiguration
//!   (Algorithm 2): runs INOR every `t_p + 1` seconds, predicts the module
//!   temperatures for the next `t_p` seconds with a per-module MLR, and only
//!   adopts the new configuration when its predicted energy advantage exceeds
//!   the switching-overhead energy.
//! * [`Ehtr`] — a re-implementation of the prior-work **E**fficient
//!   **H**euristic **T**EG **R**econfiguration (Baek et al., ISLPED'17): a
//!   dynamic program over group boundaries that is near-optimal but has
//!   polynomial (≫ linear) complexity and reconfigures every period.
//! * [`AcoReconfigurer`] — a metaheuristic beyond the paper's heuristics:
//!   a seeded ant-colony search over the full contiguous-partition space,
//!   seeded with INOR's candidates (so it never does worse) and batched
//!   through the solver's incremental old/new table.  It wins where heavy
//!   module variation plus faults pull the power optimum away from the
//!   balanced-current surrogate the greedy schemes optimise.
//! * [`StaticBaseline`] — the fixed 10 × 10 wiring the paper compares
//!   against; it never reconfigures.
//!
//! The trait produces a [`ReconfigDecision`] per invocation; the simulation
//! engine (crate `teg-sim`) charges switching overhead, meters harvested
//! energy and produces the rows of Table I and the traces of Figs. 6–7.
//!
//! # Examples
//!
//! ```
//! use teg_device::{TegDatasheet, TegModule};
//! use teg_array::{Configuration, TegArray};
//! use teg_reconfig::{Inor, ReconfigInputs, Reconfigurer};
//! use teg_units::Celsius;
//!
//! # fn main() -> Result<(), teg_reconfig::ReconfigError> {
//! let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
//! let array = TegArray::uniform(module, 20);
//! // A falling temperature profile along the radiator.
//! let temps: Vec<f64> = (0..20).map(|i| 95.0 - 1.5 * i as f64).collect();
//! let history = vec![temps];
//! let inputs = ReconfigInputs::new(&array, &history, Celsius::new(25.0))?;
//! let mut inor = Inor::default();
//! let current = Configuration::uniform(20, 4).expect("valid");
//! let decision = inor.decide(&inputs, &current)?;
//! assert!(decision.configuration().expect("INOR proposes").group_count() >= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)`-style validation is used deliberately throughout: unlike
// `x <= 0.0` it also rejects NaN parameters.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

mod aco;
mod baseline;
mod dnor;
mod ehtr;
mod error;
mod factory;
mod inor;
mod memo;
mod runtime;
mod sensor;
mod telemetry;
mod traits;

pub use aco::{AcoConfig, AcoReconfigurer};
pub use baseline::StaticBaseline;
pub use dnor::{Dnor, DnorConfig};
pub use ehtr::Ehtr;
pub use error::ReconfigError;
pub use factory::SchemeSpec;
pub use inor::{Inor, InorConfig};
pub use runtime::RuntimeStats;
pub use sensor::{SensorFault, SensorFaultInjector};
pub use telemetry::{TelemetryBuffer, TelemetryWindow};
pub use traits::{ReconfigDecision, Reconfigurer};

/// The historical name of [`TelemetryWindow`], kept so the common patterns
/// of the original unbounded-history API — `ReconfigInputs::new`,
/// `current_deltas`, `current_temperatures`, `module_series`,
/// `deltas_from_row` — keep compiling unchanged.  The one removed member is
/// the `history()` slice accessor, which cannot exist on a ring-buffer
/// window; iterate [`TelemetryWindow::rows`] or index
/// [`TelemetryWindow::row`] instead.
pub type ReconfigInputs<'a> = TelemetryWindow<'a>;
