//! A one-entry decision memo for the stateless fixed-period schemes.
//!
//! INOR and EHTR derive their decision purely from the telemetry window's
//! current ΔT row (the array a session hands them never changes while the
//! session runs): identical inputs always produce the identical partition.
//! Sub-second periods make repeated identical inputs the *common* case — a
//! 0.5 s period over a 1 s simulation step invokes the scheme twice per step
//! against the same telemetry row, so every other partition search is
//! redundant.  The memo short-circuits those repeats with the cached
//! configuration, which is bit-identical to re-running the search by
//! construction.
//!
//! The memo is invalidated by [`Reconfigurer::reset`] (sessions reset their
//! scheme before the first step, so a memo never leaks across arrays) and by
//! kernel-mode changes (the candidate scan's tie-breaking is mode-exact).
//!
//! [`Reconfigurer::reset`]: crate::Reconfigurer::reset

use teg_array::Configuration;
use teg_units::TemperatureDelta;

/// The last (ΔT row → chosen configuration) pair a scheme computed.
#[derive(Debug, Clone)]
pub(crate) struct DecisionMemo {
    deltas: Vec<TemperatureDelta>,
    configuration: Configuration,
}

impl DecisionMemo {
    /// Records a fresh decision.
    pub(crate) fn new(deltas: Vec<TemperatureDelta>, configuration: Configuration) -> Self {
        Self {
            deltas,
            configuration,
        }
    }

    /// The cached configuration, if `deltas` matches the memoised input
    /// exactly (bitwise; a NaN never matches, so a poisoned row recomputes).
    pub(crate) fn lookup(&self, deltas: &[TemperatureDelta]) -> Option<&Configuration> {
        (self.deltas == deltas).then_some(&self.configuration)
    }
}
