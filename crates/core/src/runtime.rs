//! Runtime instrumentation for the reconfiguration algorithms.
//!
//! Table I reports the *average runtime* of each scheme over the 800-second
//! drive; this module provides the accumulator the simulation engine and the
//! benchmark harness use to reproduce that column.

use teg_units::{Milliseconds, Seconds};

/// Accumulates per-invocation computation times and reports summary
/// statistics.
///
/// All accumulation and the primary accessors ([`RuntimeStats::record`],
/// [`RuntimeStats::total`], [`RuntimeStats::mean`], [`RuntimeStats::max`])
/// work in [`Seconds`]; [`RuntimeStats::mean_ms`] / [`RuntimeStats::max_ms`]
/// convert for display (Table I's "Average Runtime" column is printed in
/// milliseconds).
///
/// # Examples
///
/// ```
/// use teg_reconfig::RuntimeStats;
/// use teg_units::Seconds;
///
/// let mut stats = RuntimeStats::new();
/// stats.record(Seconds::new(0.004));
/// stats.record(Seconds::new(0.002));
/// assert_eq!(stats.invocations(), 2);
/// // `mean()` is in seconds, like `record()` and `total()` …
/// assert!((stats.mean().value() - 0.003).abs() < 1e-12);
/// // … and `mean_ms()` converts for display.
/// assert!((stats.mean_ms().value() - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuntimeStats {
    total_seconds: f64,
    max_seconds: f64,
    invocations: usize,
    faulted_invocations: usize,
}

impl RuntimeStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassembles an accumulator from its raw parts — the inverse of
    /// reading [`RuntimeStats::total`], [`RuntimeStats::max`],
    /// [`RuntimeStats::invocations`] and
    /// [`RuntimeStats::faulted_invocations`] off an existing value.  Used by
    /// wire codecs to reconstruct reports bit-identically; the parts are
    /// stored verbatim, with no clamping or re-derivation.
    #[must_use]
    pub fn from_parts(
        total: Seconds,
        max: Seconds,
        invocations: usize,
        faulted_invocations: usize,
    ) -> Self {
        Self {
            total_seconds: total.value(),
            max_seconds: max.value(),
            invocations,
            faulted_invocations,
        }
    }

    /// Records one invocation's computation time (negative durations are
    /// clamped to zero).
    pub fn record(&mut self, duration: Seconds) {
        let d = duration.value().max(0.0);
        self.total_seconds += d;
        self.max_seconds = self.max_seconds.max(d);
        self.invocations += 1;
    }

    /// Records one invocation made while the plant was degraded — any
    /// module, switch or sensor fault active.  The timing flows into the
    /// same totals as [`RuntimeStats::record`]; the invocation is
    /// additionally counted towards [`RuntimeStats::faulted_invocations`],
    /// which is how reports break a scheme's work into healthy and
    /// fault-exposed decisions.
    pub fn record_faulted(&mut self, duration: Seconds) {
        self.record(duration);
        self.faulted_invocations += 1;
    }

    /// Number of recorded invocations.
    #[must_use]
    pub const fn invocations(&self) -> usize {
        self.invocations
    }

    /// Number of invocations recorded while faults were active.
    #[must_use]
    pub const fn faulted_invocations(&self) -> usize {
        self.faulted_invocations
    }

    /// Fraction of invocations made under active faults (zero when nothing
    /// was recorded).
    #[must_use]
    pub fn fault_share(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.faulted_invocations as f64 / self.invocations as f64
        }
    }

    /// Total computation time across all invocations.
    #[must_use]
    pub fn total(&self) -> Seconds {
        Seconds::new(self.total_seconds)
    }

    /// Mean computation time per invocation (zero if nothing was recorded),
    /// in the same unit [`RuntimeStats::record`] and [`RuntimeStats::total`]
    /// use.
    #[must_use]
    pub fn mean(&self) -> Seconds {
        if self.invocations == 0 {
            Seconds::ZERO
        } else {
            Seconds::new(self.total_seconds / self.invocations as f64)
        }
    }

    /// [`RuntimeStats::mean`] converted to milliseconds — the unit of the
    /// "Average Runtime" column of Table I.
    #[must_use]
    pub fn mean_ms(&self) -> Milliseconds {
        self.mean().to_milliseconds()
    }

    /// The slowest single invocation observed.
    #[must_use]
    pub fn max(&self) -> Seconds {
        Seconds::new(self.max_seconds)
    }

    /// [`RuntimeStats::max`] converted to milliseconds for display.
    #[must_use]
    pub fn max_ms(&self) -> Milliseconds {
        self.max().to_milliseconds()
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Self) {
        self.total_seconds += other.total_seconds;
        self.max_seconds = self.max_seconds.max(other.max_seconds);
        self.invocations += other.invocations;
        self.faulted_invocations += other.faulted_invocations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_zero() {
        let stats = RuntimeStats::new();
        assert_eq!(stats.invocations(), 0);
        assert_eq!(stats.mean(), Seconds::ZERO);
        assert_eq!(stats.mean_ms(), Milliseconds::ZERO);
        assert_eq!(stats.total(), Seconds::ZERO);
        assert_eq!(stats.max(), Seconds::ZERO);
        assert_eq!(stats.max_ms(), Milliseconds::ZERO);
    }

    #[test]
    fn mean_total_and_max_share_one_unit() {
        let mut stats = RuntimeStats::new();
        stats.record(Seconds::new(0.010));
        stats.record(Seconds::new(0.020));
        stats.record(Seconds::new(0.030));
        assert_eq!(stats.invocations(), 3);
        assert!((stats.total().value() - 0.06).abs() < 1e-12);
        // mean() and max() are seconds, consistent with record()/total().
        assert!((stats.mean().value() - 0.020).abs() < 1e-12);
        assert!((stats.max().value() - 0.030).abs() < 1e-12);
        // The *_ms variants convert for display.
        assert!((stats.mean_ms().value() - 20.0).abs() < 1e-9);
        assert!((stats.max_ms().value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn negative_durations_are_clamped() {
        let mut stats = RuntimeStats::new();
        stats.record(Seconds::new(-1.0));
        assert_eq!(stats.invocations(), 1);
        assert_eq!(stats.total(), Seconds::ZERO);
    }

    #[test]
    fn merging_combines_counts_and_times() {
        let mut a = RuntimeStats::new();
        a.record(Seconds::new(0.01));
        let mut b = RuntimeStats::new();
        b.record(Seconds::new(0.03));
        b.record_faulted(Seconds::new(0.02));
        a.merge(&b);
        assert_eq!(a.invocations(), 3);
        assert_eq!(a.faulted_invocations(), 1);
        assert!((a.total().value() - 0.06).abs() < 1e-12);
        assert!((a.max().value() - 0.030).abs() < 1e-12);
        assert!((a.max_ms().value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn from_parts_is_the_inverse_of_the_accessors() {
        let mut stats = RuntimeStats::new();
        stats.record(Seconds::new(0.013));
        stats.record_faulted(Seconds::new(0.007));
        let rebuilt = RuntimeStats::from_parts(
            stats.total(),
            stats.max(),
            stats.invocations(),
            stats.faulted_invocations(),
        );
        assert_eq!(rebuilt, stats);
    }

    #[test]
    fn faulted_invocations_feed_the_shared_totals() {
        let mut stats = RuntimeStats::new();
        stats.record(Seconds::new(0.010));
        stats.record_faulted(Seconds::new(0.030));
        assert_eq!(stats.invocations(), 2);
        assert_eq!(stats.faulted_invocations(), 1);
        assert!((stats.total().value() - 0.040).abs() < 1e-12);
        assert!((stats.max().value() - 0.030).abs() < 1e-12);
        assert!((stats.fault_share() - 0.5).abs() < 1e-12);
        assert_eq!(RuntimeStats::new().fault_share(), 0.0);
    }
}
