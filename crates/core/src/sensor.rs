//! Sensor (telemetry) faults: corruption of the temperature rows the
//! reconfiguration schemes observe.
//!
//! The electrical fault model (crate `teg-array`) degrades what the array
//! *delivers*; this module degrades what the controller *sees*.  The two are
//! deliberately independent: a scheme steering a healthy array through a
//! noisy thermocouple harness mis-groups modules and pays real switching
//! overhead for imaginary gradients, which is a failure mode the paper's
//! fixed-period schemes (INOR, EHTR) and prediction-gated DNOR respond to
//! very differently.
//!
//! [`SensorFaultInjector`] sits between the true thermal trace and the
//! telemetry buffer: the simulation session hands it each true temperature
//! row and it applies the active per-module [`SensorFault`]s in place.
//! Everything is deterministic — noise comes from a seeded ChaCha stream —
//! so a faulted simulation replays bit-identically, which the parallel
//! scenario sweep's serial-equivalence guarantee relies on.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use teg_units::{Celsius, KernelMode};

use crate::error::ReconfigError;

/// A fault of one module's hot-side temperature sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFault {
    /// The reading is lost; the acquisition chain substitutes the ambient
    /// temperature (a disconnected thermocouple reads its cold junction), so
    /// the scheme sees ΔT ≈ 0 for the module.
    Dropout,
    /// The reading freezes at the value observed when the fault began.
    Stuck,
    /// Zero-mean Gaussian noise of the given standard deviation (°C) is
    /// added to every reading.
    Noisy {
        /// Standard deviation of the additive noise, in °C.
        sigma: f64,
    },
}

impl SensorFault {
    /// Compact tag used by fault-plan serialisations.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Self::Dropout => "dropout",
            Self::Stuck => "stuck",
            Self::Noisy { .. } => "noise",
        }
    }
}

/// Deterministic, seeded corruption of telemetry rows.
///
/// # Examples
///
/// ```
/// use teg_reconfig::{SensorFault, SensorFaultInjector};
/// use teg_units::Celsius;
///
/// # fn main() -> Result<(), teg_reconfig::ReconfigError> {
/// let mut sensors = SensorFaultInjector::new(3, 42)?;
/// sensors.set_fault(0, SensorFault::Dropout)?;
/// sensors.set_fault(2, SensorFault::Stuck)?;
///
/// let mut row = [90.0, 85.0, 80.0];
/// sensors.corrupt(&mut row, Celsius::new(25.0))?;
/// assert_eq!(row, [25.0, 85.0, 80.0]); // dropout reads ambient
///
/// let mut next = [91.0, 86.0, 81.0];
/// sensors.corrupt(&mut next, Celsius::new(25.0))?;
/// assert_eq!(next[2], 80.0); // stuck at the onset value
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SensorFaultInjector {
    faults: Vec<Option<SensorFault>>,
    /// Frozen reading per module while a `Stuck` fault is active; captured
    /// from the first row corrupted after the fault begins.
    held: Vec<Option<f64>>,
    rng: ChaCha8Rng,
    active: usize,
    mode: KernelMode,
    /// Scratch of (module, sigma) pairs the fast lane batches its Gaussian
    /// draws over.
    noisy: Vec<(u32, f64)>,
}

impl SensorFaultInjector {
    /// Creates a healthy injector for `module_count` sensors whose noise
    /// stream is seeded with `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigError::InvalidParameter`] when `module_count` is
    /// zero.
    pub fn new(module_count: usize, seed: u64) -> Result<Self, ReconfigError> {
        if module_count == 0 {
            return Err(ReconfigError::InvalidParameter {
                name: "module count",
                value: 0.0,
            });
        }
        Ok(Self {
            faults: vec![None; module_count],
            held: vec![None; module_count],
            rng: ChaCha8Rng::seed_from_u64(seed),
            active: 0,
            mode: KernelMode::default(),
            noisy: Vec::new(),
        })
    }

    /// The kernel mode the corruption path runs in.
    #[must_use]
    pub const fn kernel_mode(&self) -> KernelMode {
        self.mode
    }

    /// Selects the corruption lane.  Both lanes consume the seeded stream
    /// in the same order with the same Box–Muller formula, so the corrupted
    /// rows are bit-identical — [`KernelMode::Fast`] only batches the draws
    /// of a whole telemetry row after the RNG-free faults are resolved.
    pub fn set_kernel_mode(&mut self, mode: KernelMode) {
        self.mode = mode;
    }

    /// Number of sensors covered.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.faults.len()
    }

    /// Returns `true` while no sensor fault is active.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.active == 0
    }

    /// Number of active sensor faults.
    #[must_use]
    pub fn active_fault_count(&self) -> usize {
        self.active
    }

    /// The active fault of one sensor, if any.
    ///
    /// # Panics
    ///
    /// Panics if `module` is out of range.
    #[must_use]
    pub fn fault(&self, module: usize) -> Option<SensorFault> {
        self.faults[module]
    }

    /// Activates (or replaces) a sensor fault.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigError::InvalidParameter`] when the module index is
    /// out of range or a noise sigma is negative / non-finite.
    pub fn set_fault(&mut self, module: usize, fault: SensorFault) -> Result<(), ReconfigError> {
        if module >= self.faults.len() {
            return Err(ReconfigError::InvalidParameter {
                name: "sensor module index",
                value: module as f64,
            });
        }
        if let SensorFault::Noisy { sigma } = fault {
            if !(sigma.is_finite() && sigma >= 0.0) {
                return Err(ReconfigError::InvalidParameter {
                    name: "sensor noise sigma",
                    value: sigma,
                });
            }
        }
        if self.faults[module].is_none() {
            self.active += 1;
        }
        self.faults[module] = Some(fault);
        self.held[module] = None;
        Ok(())
    }

    /// Clears the fault of one sensor (a repair event).
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigError::InvalidParameter`] when the index is out of
    /// range.
    pub fn clear_fault(&mut self, module: usize) -> Result<(), ReconfigError> {
        if module >= self.faults.len() {
            return Err(ReconfigError::InvalidParameter {
                name: "sensor module index",
                value: module as f64,
            });
        }
        if self.faults[module].is_some() {
            self.active -= 1;
        }
        self.faults[module] = None;
        self.held[module] = None;
        Ok(())
    }

    /// Applies the active faults to one true temperature row (°C) in place.
    ///
    /// A healthy injector leaves the row untouched (and draws nothing from
    /// the noise stream), so routing every row through `corrupt` costs
    /// nothing until a fault activates.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigError::InconsistentHistory`] when the row length
    /// differs from the sensor count.
    pub fn corrupt(&mut self, row: &mut [f64], ambient: Celsius) -> Result<(), ReconfigError> {
        if row.len() != self.faults.len() {
            return Err(ReconfigError::InconsistentHistory {
                modules: self.faults.len(),
                row_len: row.len(),
            });
        }
        if self.active == 0 {
            return Ok(());
        }
        if self.mode.is_fast() {
            self.corrupt_fast(row, ambient);
            return Ok(());
        }
        // Indexing three parallel per-module vectors; an iterator zip would
        // fight the borrow on `self.rng` inside the noise arm.
        #[allow(clippy::needless_range_loop)]
        for module in 0..self.faults.len() {
            match self.faults[module] {
                None => {}
                Some(SensorFault::Dropout) => row[module] = ambient.value(),
                Some(SensorFault::Stuck) => {
                    let held = *self.held[module].get_or_insert(row[module]);
                    row[module] = held;
                }
                Some(SensorFault::Noisy { sigma }) => {
                    row[module] += sigma * self.standard_normal();
                }
            }
        }
        Ok(())
    }

    /// The [`KernelMode::Fast`] corruption lane: resolves the RNG-free
    /// faults in one pass while collecting the noisy modules, then batches
    /// all of the row's Gaussian draws in a second pass.  The draws consume
    /// the stream in module order with the reference formula, so the
    /// corrupted row is bit-identical to the in-line lane's.
    fn corrupt_fast(&mut self, row: &mut [f64], ambient: Celsius) {
        self.noisy.clear();
        #[allow(clippy::needless_range_loop)]
        for module in 0..self.faults.len() {
            match self.faults[module] {
                None => {}
                Some(SensorFault::Dropout) => row[module] = ambient.value(),
                Some(SensorFault::Stuck) => {
                    let held = *self.held[module].get_or_insert(row[module]);
                    row[module] = held;
                }
                Some(SensorFault::Noisy { sigma }) => self.noisy.push((module as u32, sigma)),
            }
        }
        for i in 0..self.noisy.len() {
            let (module, sigma) = self.noisy[i];
            let draw = self.standard_normal();
            row[module as usize] += sigma * draw;
        }
    }

    /// One standard-normal draw via Box–Muller on the seeded ChaCha stream.
    fn standard_normal(&mut self) -> f64 {
        // `gen` is uniform in [0, 1); flip to (0, 1] so the log is finite.
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AMBIENT: Celsius = Celsius::new(25.0);

    #[test]
    fn construction_validation() {
        assert!(SensorFaultInjector::new(0, 1).is_err());
        let injector = SensorFaultInjector::new(4, 1).unwrap();
        assert_eq!(injector.module_count(), 4);
        assert!(injector.is_healthy());
        assert_eq!(injector.active_fault_count(), 0);
    }

    #[test]
    fn healthy_injector_is_a_no_op() {
        let mut injector = SensorFaultInjector::new(3, 7).unwrap();
        let mut row = [90.0, 85.0, 80.0];
        injector.corrupt(&mut row, AMBIENT).unwrap();
        assert_eq!(row, [90.0, 85.0, 80.0]);
    }

    #[test]
    fn row_length_mismatches_are_rejected() {
        let mut injector = SensorFaultInjector::new(3, 7).unwrap();
        let mut short = [90.0, 85.0];
        assert!(matches!(
            injector.corrupt(&mut short, AMBIENT),
            Err(ReconfigError::InconsistentHistory { .. })
        ));
    }

    #[test]
    fn dropout_reads_the_ambient() {
        let mut injector = SensorFaultInjector::new(2, 7).unwrap();
        injector.set_fault(1, SensorFault::Dropout).unwrap();
        let mut row = [90.0, 85.0];
        injector.corrupt(&mut row, AMBIENT).unwrap();
        assert_eq!(row, [90.0, 25.0]);
    }

    #[test]
    fn stuck_sensor_freezes_at_the_onset_value() {
        let mut injector = SensorFaultInjector::new(2, 7).unwrap();
        injector.set_fault(0, SensorFault::Stuck).unwrap();
        let mut first = [90.0, 85.0];
        injector.corrupt(&mut first, AMBIENT).unwrap();
        assert_eq!(first, [90.0, 85.0]); // captured, unchanged
        let mut later = [96.0, 86.0];
        injector.corrupt(&mut later, AMBIENT).unwrap();
        assert_eq!(later, [90.0, 86.0]); // still reporting the onset value
                                         // Repair and refault: a fresh onset value is captured.
        injector.clear_fault(0).unwrap();
        injector.set_fault(0, SensorFault::Stuck).unwrap();
        let mut fresh = [70.0, 87.0];
        injector.corrupt(&mut fresh, AMBIENT).unwrap();
        assert_eq!(fresh[0], 70.0);
    }

    #[test]
    fn noise_is_seeded_and_deterministic() {
        let run = |seed: u64| {
            let mut injector = SensorFaultInjector::new(1, seed).unwrap();
            injector
                .set_fault(0, SensorFault::Noisy { sigma: 2.0 })
                .unwrap();
            let mut values = Vec::new();
            for _ in 0..32 {
                let mut row = [80.0];
                injector.corrupt(&mut row, AMBIENT).unwrap();
                values.push(row[0]);
            }
            values
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
        // Zero-mean, sane spread: every draw within 6 sigma of the truth.
        for v in run(5) {
            assert!((v - 80.0).abs() < 12.0, "noise sample {v} too extreme");
        }
    }

    #[test]
    fn fast_lane_corrupts_rows_bit_identically() {
        let build = |mode: KernelMode| {
            let mut injector = SensorFaultInjector::new(6, 11).unwrap();
            injector.set_kernel_mode(mode);
            injector.set_fault(0, SensorFault::Dropout).unwrap();
            injector.set_fault(2, SensorFault::Stuck).unwrap();
            injector
                .set_fault(3, SensorFault::Noisy { sigma: 1.5 })
                .unwrap();
            injector
                .set_fault(5, SensorFault::Noisy { sigma: 0.3 })
                .unwrap();
            injector
        };
        let mut exact = build(KernelMode::BitExact);
        let mut fast = build(KernelMode::Fast);
        assert_eq!(fast.kernel_mode(), KernelMode::Fast);
        for step in 0..64 {
            let base: Vec<f64> = (0..6)
                .map(|m| 90.0 - m as f64 * 2.0 - step as f64)
                .collect();
            let mut a = base.clone();
            let mut b = base;
            exact.corrupt(&mut a, AMBIENT).unwrap();
            fast.corrupt(&mut b, AMBIENT).unwrap();
            let bits = |row: &[f64]| row.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a), bits(&b), "step {step}");
        }
    }

    #[test]
    fn invalid_faults_and_indices_are_rejected() {
        let mut injector = SensorFaultInjector::new(2, 1).unwrap();
        assert!(injector.set_fault(2, SensorFault::Dropout).is_err());
        assert!(injector.clear_fault(2).is_err());
        assert!(injector
            .set_fault(0, SensorFault::Noisy { sigma: -1.0 })
            .is_err());
        assert!(injector
            .set_fault(0, SensorFault::Noisy { sigma: f64::NAN })
            .is_err());
    }

    #[test]
    fn fault_bookkeeping_tracks_activations() {
        let mut injector = SensorFaultInjector::new(3, 1).unwrap();
        injector.set_fault(0, SensorFault::Dropout).unwrap();
        injector.set_fault(0, SensorFault::Stuck).unwrap(); // replace, not add
        injector.set_fault(2, SensorFault::Dropout).unwrap();
        assert_eq!(injector.active_fault_count(), 2);
        assert_eq!(injector.fault(0), Some(SensorFault::Stuck));
        assert_eq!(injector.fault(1), None);
        injector.clear_fault(0).unwrap();
        injector.clear_fault(0).unwrap(); // double-clear is harmless
        assert_eq!(injector.active_fault_count(), 1);
        assert!(!injector.is_healthy());
    }

    #[test]
    fn tags_cover_every_kind() {
        assert_eq!(SensorFault::Dropout.tag(), "dropout");
        assert_eq!(SensorFault::Stuck.tag(), "stuck");
        assert_eq!(SensorFault::Noisy { sigma: 1.0 }.tag(), "noise");
    }
}
