//! Bounded telemetry history and the borrowed per-invocation window every
//! reconfiguration algorithm consumes.
//!
//! The paper's controller accumulates per-module hot-side temperatures from
//! its thermocouple/flow measurements through the radiator model.  Earlier
//! revisions of this crate handed each algorithm the *entire* history since
//! simulation start, which made every invocation `O(T)` in the run length
//! (and the whole run `O(T²)`).  The streaming redesign bounds the history:
//!
//! * [`TelemetryBuffer`] — an owned ring buffer holding the most recent
//!   `capacity` temperature rows, recycling row allocations once warm;
//! * [`TelemetryWindow`] — a cheap borrowed view (array + ordered rows +
//!   ambient) passed to [`Reconfigurer::decide`]; its size is derived from
//!   the scheme's declared [`Reconfigurer::lookback`].
//!
//! [`ReconfigInputs`] survives as an alias of [`TelemetryWindow`], so the
//! common patterns of the original API (`new`, `current_deltas`,
//! `module_series`, `deltas_from_row`) keep compiling: a plain slice of rows
//! is just a window with no wrap-around.  Only the `history()` slice
//! accessor is gone — a ring window has no single contiguous slice; use
//! [`TelemetryWindow::rows`] / [`TelemetryWindow::row`] instead.
//!
//! [`Reconfigurer::decide`]: crate::Reconfigurer::decide
//! [`Reconfigurer::lookback`]: crate::Reconfigurer::lookback
//! [`ReconfigInputs`]: crate::ReconfigInputs

use std::collections::VecDeque;

use teg_array::TegArray;
use teg_units::{Celsius, TemperatureDelta};

use crate::error::ReconfigError;

/// A bounded ring buffer of per-module temperature rows (°C), oldest first.
///
/// Pushing beyond `capacity` drops the oldest row and recycles its
/// allocation, so a warmed-up buffer performs no heap allocation per step —
/// the property the streaming simulation session relies on.
///
/// # Examples
///
/// ```
/// use teg_reconfig::TelemetryBuffer;
///
/// # fn main() -> Result<(), teg_reconfig::ReconfigError> {
/// let mut buffer = TelemetryBuffer::new(3, 2)?;
/// buffer.push_row(&[90.0, 85.0, 80.0])?;
/// buffer.push_row(&[91.0, 86.0, 81.0])?;
/// buffer.push_row(&[92.0, 87.0, 82.0])?; // evicts the first row
/// assert_eq!(buffer.len(), 2);
/// assert_eq!(buffer.row(0), &[91.0, 86.0, 81.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryBuffer {
    module_count: usize,
    capacity: usize,
    rows: VecDeque<Vec<f64>>,
}

impl TelemetryBuffer {
    /// Creates an empty buffer for `module_count` modules keeping at most
    /// `capacity` rows.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigError::InvalidParameter`] when either argument is
    /// zero.
    pub fn new(module_count: usize, capacity: usize) -> Result<Self, ReconfigError> {
        if module_count == 0 {
            return Err(ReconfigError::InvalidParameter {
                name: "module count",
                value: 0.0,
            });
        }
        if capacity == 0 {
            return Err(ReconfigError::InvalidParameter {
                name: "telemetry capacity",
                value: 0.0,
            });
        }
        Ok(Self {
            module_count,
            capacity,
            rows: VecDeque::with_capacity(capacity),
        })
    }

    /// Number of modules each row must cover.
    #[must_use]
    pub const fn module_count(&self) -> usize {
        self.module_count
    }

    /// Maximum number of rows retained.
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of rows currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` while no row has been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The `index`-th retained row, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn row(&self, index: usize) -> &[f64] {
        &self.rows[index]
    }

    /// Appends one temperature row, evicting (and recycling) the oldest row
    /// once the buffer is full.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigError::InconsistentHistory`] when the row length
    /// differs from the module count.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), ReconfigError> {
        if row.len() != self.module_count {
            return Err(ReconfigError::InconsistentHistory {
                modules: self.module_count,
                row_len: row.len(),
            });
        }
        let mut storage = if self.rows.len() == self.capacity {
            let mut recycled = self.rows.pop_front().expect("full buffer is non-empty");
            recycled.clear();
            recycled
        } else {
            Vec::with_capacity(self.module_count)
        };
        storage.extend_from_slice(row);
        self.rows.push_back(storage);
        Ok(())
    }

    /// Clears all rows (keeping the allocation) — used when a session resets.
    pub fn clear(&mut self) {
        self.rows.clear();
    }

    /// Borrows the buffered history as a [`TelemetryWindow`] for `array` at
    /// the given ambient temperature.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigError::EmptyHistory`] while the buffer is empty and
    /// [`ReconfigError::InconsistentHistory`] when the array's module count
    /// differs from the buffer's.
    pub fn window<'a>(
        &'a self,
        array: &'a TegArray,
        ambient: Celsius,
    ) -> Result<TelemetryWindow<'a>, ReconfigError> {
        if self.rows.is_empty() {
            return Err(ReconfigError::EmptyHistory);
        }
        if array.len() != self.module_count {
            return Err(ReconfigError::InconsistentHistory {
                modules: array.len(),
                row_len: self.module_count,
            });
        }
        let (older, newer) = self.rows.as_slices();
        Ok(TelemetryWindow {
            array,
            older,
            newer,
            ambient,
        })
    }
}

/// Everything a reconfigurer may consult when proposing a configuration: the
/// array, the ambient (heatsink) temperature, and a bounded window of recent
/// per-module hot-side temperatures (most recent row last, one entry per
/// module, in °C).
///
/// The window borrows its rows — either the two chronological segments of a
/// [`TelemetryBuffer`] ring or a plain caller-owned slice — so constructing
/// one per invocation costs nothing beyond validation.  DNOR's per-module
/// predictors are trained on the window while INOR/EHTR only consume the
/// latest row.
///
/// # Examples
///
/// ```
/// use teg_array::TegArray;
/// use teg_device::{TegDatasheet, TegModule};
/// use teg_reconfig::TelemetryWindow;
/// use teg_units::Celsius;
///
/// # fn main() -> Result<(), teg_reconfig::ReconfigError> {
/// let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let array = TegArray::uniform(module, 4);
/// let history = vec![vec![90.0, 85.0, 80.0, 75.0]];
/// let window = TelemetryWindow::new(&array, &history, Celsius::new(25.0))?;
/// let deltas = window.current_deltas();
/// assert_eq!(deltas.len(), 4);
/// assert!(deltas[0] > deltas[3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TelemetryWindow<'a> {
    array: &'a TegArray,
    older: &'a [Vec<f64>],
    newer: &'a [Vec<f64>],
    ambient: Celsius,
}

impl<'a> TelemetryWindow<'a> {
    /// Creates a window over a caller-owned slice of rows, validating that
    /// the history is non-empty and every row has one temperature per module.
    ///
    /// # Errors
    ///
    /// Returns [`ReconfigError::EmptyHistory`] for an empty history and
    /// [`ReconfigError::InconsistentHistory`] when any row's length differs
    /// from the array's module count.
    pub fn new(
        array: &'a TegArray,
        history: &'a [Vec<f64>],
        ambient: Celsius,
    ) -> Result<Self, ReconfigError> {
        if history.is_empty() {
            return Err(ReconfigError::EmptyHistory);
        }
        for row in history {
            if row.len() != array.len() {
                return Err(ReconfigError::InconsistentHistory {
                    modules: array.len(),
                    row_len: row.len(),
                });
            }
        }
        Ok(Self {
            array,
            older: history,
            newer: &[],
            ambient,
        })
    }

    /// The TEG array under control.
    #[must_use]
    pub const fn array(&self) -> &'a TegArray {
        self.array
    }

    /// The ambient / heatsink temperature.
    #[must_use]
    pub const fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// Number of history rows in the window.
    #[must_use]
    pub fn history_len(&self) -> usize {
        self.older.len() + self.newer.len()
    }

    /// The `index`-th row of the window (°C), oldest first.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range; callers iterate `0..history_len()`.
    #[must_use]
    pub fn row(&self, index: usize) -> &'a [f64] {
        if index < self.older.len() {
            &self.older[index]
        } else {
            &self.newer[index - self.older.len()]
        }
    }

    /// Iterator over the window's rows in chronological order.
    pub fn rows(&self) -> impl Iterator<Item = &'a [f64]> + '_ {
        self.older
            .iter()
            .chain(self.newer.iter())
            .map(Vec::as_slice)
    }

    /// The most recent per-module temperatures (°C).
    #[must_use]
    pub fn current_temperatures(&self) -> &'a [f64] {
        self.newer
            .last()
            .or_else(|| self.older.last())
            .expect("validated non-empty")
    }

    /// The most recent per-module temperature differences ΔT relative to the
    /// ambient (clamped at zero) — the quantity Eq. 2 consumes.
    #[must_use]
    pub fn current_deltas(&self) -> Vec<TemperatureDelta> {
        Self::deltas_from_row(self.current_temperatures(), self.ambient)
    }

    /// Converts an arbitrary temperature row (°C) into ΔT values against the
    /// same ambient, clamped at zero.
    #[must_use]
    pub fn deltas_from_row(row: &[f64], ambient: Celsius) -> Vec<TemperatureDelta> {
        let mut out = Vec::with_capacity(row.len());
        Self::deltas_from_row_into(row, ambient, &mut out);
        out
    }

    /// Appends the ΔT values of a temperature row to an existing buffer —
    /// the allocation-free sibling of [`TelemetryWindow::deltas_from_row`],
    /// performing the identical per-module operation so the two agree bit
    /// for bit.  The strided thermal-trace solve streams every sample's
    /// deltas through this single definition.
    pub fn deltas_from_row_into(row: &[f64], ambient: Celsius, out: &mut Vec<TemperatureDelta>) {
        out.extend(
            row.iter()
                .map(|&t| (Celsius::new(t) - ambient).clamp_non_negative()),
        );
    }

    /// [`TelemetryWindow::deltas_from_row_into`] writing into an
    /// exact-length slice instead of appending — the chunk-safe form a
    /// parallel trace solver uses to fill disjoint strided ranges of one
    /// preallocated buffer.  Same per-module operation, so the written
    /// values are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != row.len()`.
    pub fn deltas_from_row_into_slice(row: &[f64], ambient: Celsius, out: &mut [TemperatureDelta]) {
        assert_eq!(out.len(), row.len(), "slice length must equal the row's");
        for (slot, &t) in out.iter_mut().zip(row) {
            *slot = (Celsius::new(t) - ambient).clamp_non_negative();
        }
    }

    /// The windowed history of a single module as a scalar series (°C),
    /// oldest first.
    ///
    /// # Panics
    ///
    /// Panics if `module_index` is out of range; callers iterate over
    /// `0..array.len()`.
    #[must_use]
    pub fn module_series(&self, module_index: usize) -> Vec<f64> {
        assert!(module_index < self.array.len(), "module index out of range");
        self.rows().map(|row| row[module_index]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_device::{TegDatasheet, TegModule};

    fn array(n: usize) -> TegArray {
        TegArray::uniform(
            TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8()),
            n,
        )
    }

    #[test]
    fn window_validation() {
        let a = array(3);
        assert!(matches!(
            TelemetryWindow::new(&a, &[], Celsius::new(25.0)),
            Err(ReconfigError::EmptyHistory)
        ));
        let bad = vec![vec![90.0, 80.0]];
        assert!(matches!(
            TelemetryWindow::new(&a, &bad, Celsius::new(25.0)),
            Err(ReconfigError::InconsistentHistory { .. })
        ));
    }

    #[test]
    fn accessors_and_deltas() {
        let a = array(3);
        let history = vec![vec![80.0, 75.0, 70.0], vec![90.0, 85.0, 20.0]];
        let window = TelemetryWindow::new(&a, &history, Celsius::new(25.0)).unwrap();
        assert_eq!(window.history_len(), 2);
        assert_eq!(window.current_temperatures(), &[90.0, 85.0, 20.0]);
        let deltas = window.current_deltas();
        assert!((deltas[0].kelvin() - 65.0).abs() < 1e-12);
        assert!((deltas[1].kelvin() - 60.0).abs() < 1e-12);
        // Below-ambient modules clamp to zero instead of going negative.
        assert_eq!(deltas[2].kelvin(), 0.0);
        assert_eq!(window.ambient(), Celsius::new(25.0));
        assert_eq!(window.array().len(), 3);
        assert_eq!(window.row(0), &[80.0, 75.0, 70.0]);
        assert_eq!(window.rows().count(), 2);
    }

    #[test]
    fn module_series_extracts_columns() {
        let a = array(2);
        let history = vec![vec![80.0, 70.0], vec![81.0, 71.0], vec![82.0, 72.0]];
        let window = TelemetryWindow::new(&a, &history, Celsius::new(25.0)).unwrap();
        assert_eq!(window.module_series(0), vec![80.0, 81.0, 82.0]);
        assert_eq!(window.module_series(1), vec![70.0, 71.0, 72.0]);
    }

    #[test]
    #[should_panic(expected = "module index out of range")]
    fn module_series_bounds_checked() {
        let a = array(2);
        let history = vec![vec![80.0, 70.0]];
        let window = TelemetryWindow::new(&a, &history, Celsius::new(25.0)).unwrap();
        let _ = window.module_series(2);
    }

    #[test]
    fn buffer_validation() {
        assert!(TelemetryBuffer::new(0, 4).is_err());
        assert!(TelemetryBuffer::new(4, 0).is_err());
        let mut buffer = TelemetryBuffer::new(2, 4).unwrap();
        assert!(matches!(
            buffer.push_row(&[1.0, 2.0, 3.0]),
            Err(ReconfigError::InconsistentHistory {
                modules: 2,
                row_len: 3
            })
        ));
        let a = array(2);
        assert!(matches!(
            buffer.window(&a, Celsius::new(25.0)),
            Err(ReconfigError::EmptyHistory)
        ));
        buffer.push_row(&[90.0, 80.0]).unwrap();
        let wrong_array = array(3);
        assert!(buffer.window(&wrong_array, Celsius::new(25.0)).is_err());
    }

    #[test]
    fn buffer_evicts_oldest_and_stays_bounded() {
        let mut buffer = TelemetryBuffer::new(1, 3).unwrap();
        for t in 0..10 {
            buffer.push_row(&[f64::from(t)]).unwrap();
            assert!(buffer.len() <= 3);
        }
        assert_eq!(buffer.len(), 3);
        assert_eq!(buffer.row(0), &[7.0]);
        assert_eq!(buffer.row(2), &[9.0]);
        assert_eq!(buffer.capacity(), 3);
        assert_eq!(buffer.module_count(), 1);
        buffer.clear();
        assert!(buffer.is_empty());
    }

    #[test]
    fn ring_window_spans_the_wraparound() {
        // Force the ring to wrap so the window sees two segments.
        let a = array(2);
        let mut buffer = TelemetryBuffer::new(2, 3).unwrap();
        for t in 0..5 {
            let base = 80.0 + f64::from(t);
            buffer.push_row(&[base, base - 10.0]).unwrap();
        }
        let window = buffer.window(&a, Celsius::new(25.0)).unwrap();
        assert_eq!(window.history_len(), 3);
        assert_eq!(window.current_temperatures(), &[84.0, 74.0]);
        assert_eq!(window.module_series(0), vec![82.0, 83.0, 84.0]);
        assert_eq!(window.module_series(1), vec![72.0, 73.0, 74.0]);
        let rows: Vec<_> = window.rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], &[82.0, 72.0]);
        assert_eq!(window.row(2), &[84.0, 74.0]);
    }
}
