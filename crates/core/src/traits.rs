//! The common interface of all reconfiguration schemes.

use teg_array::Configuration;
use teg_units::{KernelMode, Seconds};

use crate::error::ReconfigError;
use crate::telemetry::TelemetryWindow;

/// The outcome of one reconfiguration decision.
///
/// The decision carries the configuration the controller should use from now
/// on — `Some(new)` to adopt a replacement, `None` to keep the current
/// wiring without cloning it — how long the algorithm took to compute it,
/// whether the algorithm actually evaluated a fresh candidate on this
/// invocation (DNOR skips evaluation between its prediction periods), and
/// whether the controller must *apply* the configuration — i.e. actuate the
/// switch matrix and restart MPPT, which is what costs dead time.
/// Fixed-period schemes (INOR, EHTR) re-apply on every period, which is why
/// they accumulate the large switching overhead of Table I; DNOR applies only
/// when it decides to switch and returns [`ReconfigDecision::keep`]
/// otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigDecision {
    configuration: Option<Configuration>,
    computation: Seconds,
    evaluated: bool,
    applied: bool,
}

impl ReconfigDecision {
    /// Creates a decision carrying a (possibly unchanged) configuration.
    #[must_use]
    pub fn new(
        configuration: Configuration,
        computation: Seconds,
        evaluated: bool,
        applied: bool,
    ) -> Self {
        Self {
            configuration: Some(configuration),
            computation,
            evaluated,
            applied,
        }
    }

    /// Creates a decision that keeps the current wiring as-is, without
    /// cloning it into the record — the cheap path for schemes that decided
    /// not to change anything (DNOR's skipped periods and rejected
    /// switches, the settled static baseline).
    #[must_use]
    pub const fn keep(computation: Seconds, evaluated: bool, applied: bool) -> Self {
        Self {
            configuration: None,
            computation,
            evaluated,
            applied,
        }
    }

    /// The configuration the array should use after this decision, or
    /// `None` when the decision keeps the current wiring.
    #[must_use]
    pub const fn configuration(&self) -> Option<&Configuration> {
        self.configuration.as_ref()
    }

    /// Consumes the decision and returns the configuration, or `None` when
    /// the decision keeps the current wiring.
    #[must_use]
    pub fn into_configuration(self) -> Option<Configuration> {
        self.configuration
    }

    /// `true` when the decision keeps the current wiring unchanged.
    #[must_use]
    pub const fn keeps_current(&self) -> bool {
        self.configuration.is_none()
    }

    /// Wall-clock time the algorithm spent computing this decision.
    #[must_use]
    pub const fn computation(&self) -> Seconds {
        self.computation
    }

    /// `true` when the algorithm ran its optimisation (or prediction) on this
    /// invocation rather than returning early.
    #[must_use]
    pub const fn evaluated(&self) -> bool {
        self.evaluated
    }

    /// `true` when the controller must actuate the switch matrix and restart
    /// the MPPT loop, interrupting harvesting for the reconfiguration dead
    /// time.
    #[must_use]
    pub const fn applied(&self) -> bool {
        self.applied
    }
}

/// A reconfiguration scheme: INOR, DNOR, EHTR or the static baseline.
///
/// Implementations are stateful (DNOR remembers when it last evaluated and
/// keeps its fitted predictors); the simulation engine invokes
/// [`Reconfigurer::decide`] once per reconfiguration period and applies the
/// returned configuration, charging switching overhead whenever it differs
/// from the current one.
///
/// The trait requires [`Send`] so sessions (and the boxed schemes a
/// [`SchemeSpec`](crate::SchemeSpec) builds) can be moved to the worker
/// threads of a parallel scenario sweep.  Every scheme is plain data, so
/// this costs implementors nothing.
pub trait Reconfigurer: Send {
    /// Human-readable scheme name as used in the paper's tables and figures.
    fn name(&self) -> &'static str;

    /// The period at which the controller should invoke this scheme.
    fn period(&self) -> Seconds;

    /// Number of recent telemetry rows the scheme needs to see in its
    /// [`TelemetryWindow`].
    ///
    /// The simulation session sizes its bounded ring buffer from this value,
    /// which is what keeps every invocation `O(window)` instead of `O(T)` in
    /// the run length.  Instantaneous schemes (INOR, EHTR, the baseline)
    /// only read the latest row, hence the default of 1; predictive schemes
    /// such as DNOR declare the training span their predictors require.
    fn lookback(&self) -> usize {
        1
    }

    /// Proposes the configuration to use from this instant on.
    ///
    /// `window` carries the bounded recent telemetry; `current` is the
    /// configuration presently wired, and schemes that decide not to change
    /// anything return [`ReconfigDecision::keep`] instead of cloning it.
    ///
    /// # Errors
    ///
    /// Implementations return [`ReconfigError`] when the inputs are
    /// inconsistent with the array or an underlying substrate fails.
    fn decide(
        &mut self,
        window: &TelemetryWindow<'_>,
        current: &Configuration,
    ) -> Result<ReconfigDecision, ReconfigError>;

    /// Resets any internal state (fitted predictors, evaluation phase).  The
    /// default implementation does nothing, which suits stateless schemes.
    fn reset(&mut self) {}

    /// Selects the [`KernelMode`] the scheme's internal solves run in.
    ///
    /// The simulation session calls this once at construction with the
    /// scenario's mode, so a Fast scenario runs Fast candidate scans end to
    /// end.  The default implementation ignores the mode, which suits
    /// schemes with no numerical inner loop (the static baseline).
    fn set_kernel_mode(&mut self, mode: KernelMode) {
        let _ = mode;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_accessors() {
        let config = Configuration::uniform(10, 2).unwrap();
        let d = ReconfigDecision::new(config.clone(), Seconds::new(0.004), true, false);
        assert_eq!(d.configuration(), Some(&config));
        assert_eq!(d.computation(), Seconds::new(0.004));
        assert!(d.evaluated());
        assert!(!d.applied());
        assert!(!d.keeps_current());
        assert_eq!(d.into_configuration(), Some(config));
    }

    #[test]
    fn keep_decisions_carry_no_configuration() {
        let d = ReconfigDecision::keep(Seconds::new(0.002), true, false);
        assert!(d.keeps_current());
        assert_eq!(d.configuration(), None);
        assert_eq!(d.computation(), Seconds::new(0.002));
        assert!(d.evaluated());
        assert!(!d.applied());
        assert_eq!(d.into_configuration(), None);
    }
}
