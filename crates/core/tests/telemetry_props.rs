//! Property tests for the bounded telemetry ring buffer: the ring must
//! behave exactly like a naive "keep the last `capacity` rows" `Vec` model
//! for arbitrary push sequences, and the window handed to schemes must never
//! exceed the declared lookback bound.

use proptest::prelude::*;
use teg_array::TegArray;
use teg_device::{TegDatasheet, TegModule};
use teg_reconfig::{TelemetryBuffer, TelemetryWindow};
use teg_units::Celsius;

fn array(n: usize) -> TegArray {
    TegArray::uniform(
        TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8()),
        n,
    )
}

/// Chunks a flat temperature stream into rows of `modules` entries,
/// discarding the ragged tail — an arbitrary-length push sequence.
fn rows_from(temps: &[f64], modules: usize) -> Vec<Vec<f64>> {
    temps.chunks_exact(modules).map(<[f64]>::to_vec).collect()
}

proptest! {
    #[test]
    fn ring_matches_the_naive_vec_model(
        modules in 1usize..6,
        capacity in 1usize..10,
        temps in collection::vec(-20.0_f64..120.0, 0..180),
    ) {
        let rows = rows_from(&temps, modules);
        let mut ring = TelemetryBuffer::new(modules, capacity).expect("valid buffer");
        let mut model: Vec<Vec<f64>> = Vec::new();

        for row in &rows {
            ring.push_row(row).expect("row length matches");
            model.push(row.clone());
            if model.len() > capacity {
                model.remove(0);
            }
            // After every push: same length, same rows, same order.
            prop_assert_eq!(ring.len(), model.len());
            prop_assert!(ring.len() <= ring.capacity());
            for (i, expected) in model.iter().enumerate() {
                prop_assert_eq!(ring.row(i), expected.as_slice());
            }
        }
        prop_assert_eq!(ring.is_empty(), model.is_empty());
    }

    #[test]
    fn window_lookback_never_exceeds_the_declared_bound(
        modules in 1usize..5,
        capacity in 1usize..8,
        temps in collection::vec(0.0_f64..110.0, 1..150),
    ) {
        let rows = rows_from(&temps, modules);
        prop_assume!(!rows.is_empty());
        let a = array(modules);
        let mut ring = TelemetryBuffer::new(modules, capacity).expect("valid buffer");

        for (pushed, row) in rows.iter().enumerate() {
            ring.push_row(row).expect("row length matches");
            let window = ring.window(&a, Celsius::new(25.0)).expect("non-empty");
            // The bound a scheme declares via `lookback()` is the ring
            // capacity the session allocates; the window must honour it for
            // any push count, including across the ring's wrap-around.
            prop_assert!(window.history_len() <= capacity);
            prop_assert_eq!(window.history_len(), (pushed + 1).min(capacity));
            // The newest row is always the one just pushed.
            prop_assert_eq!(window.current_temperatures(), row.as_slice());
            // And the window's rows are exactly the ring's rows, in order.
            for (i, seen) in window.rows().enumerate() {
                prop_assert_eq!(seen, ring.row(i));
            }
        }
    }

    #[test]
    fn deltas_clamp_below_ambient_for_any_row(
        modules in 1usize..6,
        temps in collection::vec(-40.0_f64..140.0, 1..40),
        ambient in -10.0_f64..40.0,
    ) {
        prop_assume!(temps.len() >= modules);
        let row = &temps[..modules];
        let deltas = TelemetryWindow::deltas_from_row(row, Celsius::new(ambient));
        prop_assert_eq!(deltas.len(), modules);
        for (t, delta) in row.iter().zip(&deltas) {
            prop_assert!(delta.kelvin() >= 0.0);
            prop_assert!((delta.kelvin() - (t - ambient).max(0.0)).abs() < 1e-12);
        }
    }
}
