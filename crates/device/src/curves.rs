//! I-V and P-V curve sampling (the content of the paper's Fig. 1).

use teg_units::{Amps, TemperatureDelta, Volts, Watts};

use crate::module::TegModule;
use crate::mpp::MppPoint;

/// One sample of a module's output characteristic: the terminal voltage, the
/// sourced current and the delivered power.
///
/// # Examples
///
/// ```
/// use teg_device::{CurvePoint};
/// use teg_units::{Amps, Volts};
///
/// let p = CurvePoint::new(Volts::new(2.0), Amps::new(0.5));
/// assert_eq!(p.power().value(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    voltage: Volts,
    current: Amps,
    power: Watts,
}

impl CurvePoint {
    /// Creates a sample from voltage and current.
    #[must_use]
    pub fn new(voltage: Volts, current: Amps) -> Self {
        Self {
            voltage,
            current,
            power: voltage * current,
        }
    }

    /// Terminal voltage.
    #[must_use]
    pub const fn voltage(&self) -> Volts {
        self.voltage
    }

    /// Output current.
    #[must_use]
    pub const fn current(&self) -> Amps {
        self.current
    }

    /// Output power.
    #[must_use]
    pub const fn power(&self) -> Watts {
        self.power
    }
}

/// A sampled I-V (and implicitly P-V) characteristic of one module at a fixed
/// ΔT, together with its maximum power point — exactly the data plotted in
/// the paper's Fig. 1.
///
/// # Examples
///
/// ```
/// use teg_device::{IvCurve, TegDatasheet, TegModule};
/// use teg_units::TemperatureDelta;
///
/// let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let curve = IvCurve::sample(&module, TemperatureDelta::new(90.0), 50);
/// assert_eq!(curve.points().len(), 50);
/// assert!(curve.mpp().power().value() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IvCurve {
    delta_t: TemperatureDelta,
    points: Vec<CurvePoint>,
    mpp: MppPoint,
}

impl IvCurve {
    /// Samples the characteristic of `module` at `delta_t` by sweeping the
    /// output current from zero to the short-circuit current in
    /// `sample_count` evenly spaced steps.
    ///
    /// # Panics
    ///
    /// Panics if `sample_count` is zero.
    #[must_use]
    pub fn sample(module: &TegModule, delta_t: TemperatureDelta, sample_count: usize) -> Self {
        assert!(sample_count > 0, "sample count must be positive");
        let isc = module.short_circuit_current(delta_t);
        let points = (0..sample_count)
            .map(|i| {
                let frac = if sample_count == 1 {
                    0.0
                } else {
                    i as f64 / (sample_count - 1) as f64
                };
                let current = isc * frac;
                CurvePoint::new(module.voltage_at_current(delta_t, current), current)
            })
            .collect();
        Self {
            delta_t,
            points,
            mpp: module.mpp(delta_t),
        }
    }

    /// The ΔT at which the curve was sampled.
    #[must_use]
    pub const fn delta_t(&self) -> TemperatureDelta {
        self.delta_t
    }

    /// The sampled points, ordered from open circuit (maximum voltage) to
    /// short circuit (zero voltage).
    #[must_use]
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// The analytic maximum power point of the module at this ΔT.
    #[must_use]
    pub const fn mpp(&self) -> MppPoint {
        self.mpp
    }

    /// The largest power among the sampled points (approaches the analytic
    /// MPP as the sample count grows).
    #[must_use]
    pub fn peak_sampled_power(&self) -> Watts {
        self.points
            .iter()
            .map(|p| p.power())
            .fold(Watts::ZERO, |acc, p| acc.max(p))
    }
}

/// Samples a family of I-V curves for several ΔT values, reproducing Fig. 1
/// of the paper.
///
/// # Examples
///
/// ```
/// use teg_device::{curve_family, TegDatasheet, TegModule};
///
/// let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let family = curve_family(&module, &[30.0, 50.0, 70.0], 64);
/// assert_eq!(family.len(), 3);
/// ```
#[must_use]
pub fn curve_family(
    module: &TegModule,
    delta_ts_kelvin: &[f64],
    sample_count: usize,
) -> Vec<IvCurve> {
    delta_ts_kelvin
        .iter()
        .map(|&dt| IvCurve::sample(module, TemperatureDelta::new(dt), sample_count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasheet::TegDatasheet;

    fn module() -> TegModule {
        TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8())
    }

    #[test]
    fn curve_spans_open_to_short_circuit() {
        let m = module();
        let dt = TemperatureDelta::new(80.0);
        let curve = IvCurve::sample(&m, dt, 101);
        let first = curve.points().first().unwrap();
        let last = curve.points().last().unwrap();
        assert_eq!(first.current(), Amps::ZERO);
        assert!((first.voltage().value() - m.open_circuit_voltage(dt).value()).abs() < 1e-9);
        assert!(last.voltage().value().abs() < 1e-9);
        assert!((last.current().value() - m.short_circuit_current(dt).value()).abs() < 1e-9);
    }

    #[test]
    fn iv_curve_is_monotone_decreasing_in_voltage() {
        let curve = IvCurve::sample(&module(), TemperatureDelta::new(60.0), 64);
        for pair in curve.points().windows(2) {
            assert!(pair[1].current() > pair[0].current());
            assert!(pair[1].voltage() < pair[0].voltage());
        }
    }

    #[test]
    fn sampled_peak_power_approaches_analytic_mpp() {
        let curve = IvCurve::sample(&module(), TemperatureDelta::new(100.0), 501);
        let peak = curve.peak_sampled_power();
        let mpp = curve.mpp().power();
        assert!(peak.value() <= mpp.value() + 1e-9);
        assert!(peak.value() > 0.999 * mpp.value());
    }

    #[test]
    fn hotter_curves_dominate_cooler_curves() {
        let family = curve_family(&module(), &[30.0, 50.0, 70.0, 90.0, 110.0], 64);
        assert_eq!(family.len(), 5);
        for pair in family.windows(2) {
            assert!(pair[1].mpp().power() > pair[0].mpp().power());
            assert!(pair[1].delta_t() > pair[0].delta_t());
        }
    }

    #[test]
    fn single_point_curve_is_open_circuit() {
        let m = module();
        let curve = IvCurve::sample(&m, TemperatureDelta::new(40.0), 1);
        assert_eq!(curve.points().len(), 1);
        assert_eq!(curve.points()[0].current(), Amps::ZERO);
    }

    #[test]
    #[should_panic(expected = "sample count must be positive")]
    fn zero_samples_is_rejected() {
        let _ = IvCurve::sample(&module(), TemperatureDelta::new(40.0), 0);
    }
}
