//! Catalogue (datasheet) descriptions of commercial TEG modules.

use crate::error::DeviceError;

/// Datasheet parameters of a commercial TEG module.
///
/// The paper uses the Kryotherm TGM-199-1.4-0.8 generator module; its preset
/// here is derived from the catalogue figures (199 couples, a few ohms of
/// internal resistance, several watts at ΔT ≈ 100 K).
///
/// # Examples
///
/// ```
/// use teg_device::TegDatasheet;
///
/// let ds = TegDatasheet::tgm_199_1_4_0_8();
/// assert_eq!(ds.couple_count(), 199);
/// assert!(ds.internal_resistance_ohms() > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TegDatasheet {
    name: String,
    couple_count: u32,
    seebeck_per_couple_v_per_k: f64,
    internal_resistance_ohms: f64,
    max_delta_t_kelvin: f64,
}

impl TegDatasheet {
    /// The TGM-199-1.4-0.8 module used throughout the paper (Fig. 1).
    #[must_use]
    pub fn tgm_199_1_4_0_8() -> Self {
        Self {
            name: "TGM-199-1.4-0.8".to_owned(),
            couple_count: 199,
            seebeck_per_couple_v_per_k: 4.0e-4,
            internal_resistance_ohms: 2.5,
            max_delta_t_kelvin: 200.0,
        }
    }

    /// A smaller 127-couple module (typical 40 × 40 mm Peltier-style
    /// generator), useful for sensitivity studies.
    #[must_use]
    pub fn tgm_127_1_4_1_5() -> Self {
        Self {
            name: "TGM-127-1.4-1.5".to_owned(),
            couple_count: 127,
            seebeck_per_couple_v_per_k: 4.0e-4,
            internal_resistance_ohms: 1.6,
            max_delta_t_kelvin: 200.0,
        }
    }

    /// Creates a custom datasheet.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if the couple count is zero,
    /// the Seebeck coefficient or internal resistance are not strictly
    /// positive, or the maximum ΔT is not positive; and
    /// [`DeviceError::NonFiniteInput`] for non-finite values.
    pub fn new(
        name: impl Into<String>,
        couple_count: u32,
        seebeck_per_couple_v_per_k: f64,
        internal_resistance_ohms: f64,
        max_delta_t_kelvin: f64,
    ) -> Result<Self, DeviceError> {
        if !seebeck_per_couple_v_per_k.is_finite()
            || !internal_resistance_ohms.is_finite()
            || !max_delta_t_kelvin.is_finite()
        {
            return Err(DeviceError::NonFiniteInput {
                what: "datasheet parameters",
            });
        }
        if couple_count == 0 {
            return Err(DeviceError::InvalidParameter {
                name: "couple count",
                value: 0.0,
            });
        }
        if seebeck_per_couple_v_per_k <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "seebeck coefficient",
                value: seebeck_per_couple_v_per_k,
            });
        }
        if internal_resistance_ohms <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "internal resistance",
                value: internal_resistance_ohms,
            });
        }
        if max_delta_t_kelvin <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "maximum delta T",
                value: max_delta_t_kelvin,
            });
        }
        Ok(Self {
            name: name.into(),
            couple_count,
            seebeck_per_couple_v_per_k,
            internal_resistance_ohms,
            max_delta_t_kelvin,
        })
    }

    /// Catalogue name of the module.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of thermoelectric couples (`N_cpl` in Eq. 2).
    #[must_use]
    pub const fn couple_count(&self) -> u32 {
        self.couple_count
    }

    /// Per-couple Seebeck coefficient in V/K (`α` in Eq. 2).
    #[must_use]
    pub const fn seebeck_per_couple(&self) -> f64 {
        self.seebeck_per_couple_v_per_k
    }

    /// Internal (series) resistance of the module in ohms (`R_teg`).
    #[must_use]
    pub const fn internal_resistance_ohms(&self) -> f64 {
        self.internal_resistance_ohms
    }

    /// Maximum rated hot/cold temperature difference in kelvin.
    #[must_use]
    pub const fn max_delta_t_kelvin(&self) -> f64 {
        self.max_delta_t_kelvin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_module_preset_values() {
        let ds = TegDatasheet::tgm_199_1_4_0_8();
        assert_eq!(ds.name(), "TGM-199-1.4-0.8");
        assert_eq!(ds.couple_count(), 199);
        // Open-circuit voltage at ΔT = 100 K should land in the catalogue
        // range of several volts.
        let voc = ds.seebeck_per_couple() * f64::from(ds.couple_count()) * 100.0;
        assert!(voc > 5.0 && voc < 12.0, "implausible Voc {voc}");
        // Matched-load power at ΔT = 100 K is a handful of watts.
        let p = voc * voc / (4.0 * ds.internal_resistance_ohms());
        assert!(p > 3.0 && p < 10.0, "implausible matched power {p}");
    }

    #[test]
    fn alternative_preset_is_smaller() {
        let big = TegDatasheet::tgm_199_1_4_0_8();
        let small = TegDatasheet::tgm_127_1_4_1_5();
        assert!(small.couple_count() < big.couple_count());
    }

    #[test]
    fn custom_datasheet_validation() {
        assert!(TegDatasheet::new("X", 100, 4.0e-4, 2.0, 150.0).is_ok());
        assert!(TegDatasheet::new("X", 0, 4.0e-4, 2.0, 150.0).is_err());
        assert!(TegDatasheet::new("X", 100, 0.0, 2.0, 150.0).is_err());
        assert!(TegDatasheet::new("X", 100, 4.0e-4, -2.0, 150.0).is_err());
        assert!(TegDatasheet::new("X", 100, 4.0e-4, 2.0, 0.0).is_err());
        assert!(TegDatasheet::new("X", 100, f64::NAN, 2.0, 150.0).is_err());
    }
}
