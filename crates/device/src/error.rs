//! Error type for the TEG device model.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or evaluating TEG module models.
///
/// # Examples
///
/// ```
/// use teg_device::DeviceError;
///
/// let err = DeviceError::InvalidParameter { name: "couple count", value: 0.0 };
/// assert!(err.to_string().contains("couple count"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A constructor argument was outside its physical range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was rejected.
        value: f64,
    },
    /// A non-finite value (NaN or infinity) was supplied.
    NonFiniteInput {
        /// Which quantity was non-finite.
        what: &'static str,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter {name}")
            }
            Self::NonFiniteInput { what } => write!(f, "non-finite value supplied for {what}"),
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_parameter_names() {
        let err = DeviceError::InvalidParameter {
            name: "internal resistance",
            value: -1.0,
        };
        assert!(err.to_string().contains("internal resistance"));
        assert!(err.to_string().contains("-1"));
        let err = DeviceError::NonFiniteInput {
            what: "temperature difference",
        };
        assert!(err.to_string().contains("temperature difference"));
    }

    #[test]
    fn error_implements_std_error_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<DeviceError>();
    }
}
