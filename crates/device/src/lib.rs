//! Thermoelectric generator (TEG) module electrical model.
//!
//! The paper models each TEG module with the standard linear thermoelectric
//! relations (its Eq. 2):
//!
//! ```text
//! E_teg = α · ΔT · N_cpl          (open-circuit / Seebeck voltage)
//! I_teg = E_teg / (R_teg + R_load)
//! P_teg = I_teg² · R_load
//! ```
//!
//! so a module behaves as a Thévenin source whose EMF is proportional to the
//! hot-side/cold-side temperature difference and whose maximum power point
//! (MPP) sits at `R_load = R_teg`, i.e. `V_mpp = E/2`, `I_mpp = E/(2·R_teg)`.
//! Every reconfiguration algorithm in the suite exploits exactly this MPP
//! structure.
//!
//! The crate provides:
//!
//! * [`ThermoelectricMaterial`] — Seebeck coefficient and resistance with
//!   mild temperature dependence (bismuth-telluride preset),
//! * [`TegDatasheet`] — catalogue parameters, with a preset for the
//!   TGM-199-1.4-0.8 module used in the paper's Fig. 1,
//! * [`TegModule`] — the per-module electrical model (open-circuit voltage,
//!   internal resistance, operating point under a load or current, MPP),
//! * [`IvCurve`]/[`curve_family`] — I-V / P-V curve sampling for Fig. 1,
//! * [`VariationModel`] — seeded module-to-module manufacturing variation.
//!
//! # Examples
//!
//! ```
//! use teg_device::{TegDatasheet, TegModule};
//! use teg_units::TemperatureDelta;
//!
//! let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
//! let mpp = module.mpp(TemperatureDelta::new(70.0));
//! assert!(mpp.power().value() > 0.5);
//! // The MPP voltage is half the open-circuit voltage for a Thévenin source.
//! let voc = module.open_circuit_voltage(TemperatureDelta::new(70.0));
//! assert!((mpp.voltage().value() - voc.value() / 2.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curves;
mod datasheet;
mod error;
mod material;
mod module;
mod mpp;
mod variation;

pub use curves::{curve_family, CurvePoint, IvCurve};
pub use datasheet::TegDatasheet;
pub use error::DeviceError;
pub use material::ThermoelectricMaterial;
pub use module::TegModule;
pub use mpp::MppPoint;
pub use variation::VariationModel;
