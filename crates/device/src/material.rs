//! Thermoelectric material models.
//!
//! A TEG module is a stack of semiconductor couples; its Seebeck coefficient
//! and electrical resistance inherit a mild temperature dependence from the
//! material.  The paper treats α and R_teg as constants (Eq. 2); this module
//! keeps that as the default (zero temperature coefficients) but exposes the
//! dependence so sensitivity studies can enable it.

use teg_units::TemperatureDelta;

use crate::error::DeviceError;

/// Seebeck and resistance behaviour of the thermoelectric couple material.
///
/// # Examples
///
/// ```
/// use teg_device::ThermoelectricMaterial;
///
/// let mat = ThermoelectricMaterial::bismuth_telluride();
/// assert!(mat.seebeck_per_couple(50.0) > 3.0e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermoelectricMaterial {
    seebeck_v_per_k: f64,
    seebeck_temp_coeff: f64,
    resistance_temp_coeff: f64,
}

impl ThermoelectricMaterial {
    /// Bismuth-telluride (Bi₂Te₃), the material of virtually every commercial
    /// low-temperature TEG module including the TGM-199-1.4-0.8.
    ///
    /// The per-couple Seebeck coefficient of a p-n couple is roughly
    /// 400 µV/K near room temperature.
    #[must_use]
    pub fn bismuth_telluride() -> Self {
        Self {
            seebeck_v_per_k: 4.0e-4,
            seebeck_temp_coeff: 0.0,
            resistance_temp_coeff: 0.0,
        }
    }

    /// Bismuth-telluride with representative temperature coefficients
    /// enabled: the Seebeck coefficient rises and the resistance grows with
    /// the mean junction temperature.
    #[must_use]
    pub fn bismuth_telluride_with_drift() -> Self {
        Self {
            seebeck_v_per_k: 4.0e-4,
            seebeck_temp_coeff: 4.0e-4,
            resistance_temp_coeff: 2.5e-3,
        }
    }

    /// Creates a custom material.
    ///
    /// `seebeck_v_per_k` is the per-couple Seebeck coefficient at ΔT = 0,
    /// `seebeck_temp_coeff` and `resistance_temp_coeff` are relative changes
    /// per kelvin of ΔT.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if the Seebeck coefficient is
    /// not strictly positive, and [`DeviceError::NonFiniteInput`] for
    /// non-finite arguments.
    pub fn new(
        seebeck_v_per_k: f64,
        seebeck_temp_coeff: f64,
        resistance_temp_coeff: f64,
    ) -> Result<Self, DeviceError> {
        if !seebeck_v_per_k.is_finite()
            || !seebeck_temp_coeff.is_finite()
            || !resistance_temp_coeff.is_finite()
        {
            return Err(DeviceError::NonFiniteInput {
                what: "material coefficients",
            });
        }
        if seebeck_v_per_k <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "seebeck coefficient",
                value: seebeck_v_per_k,
            });
        }
        Ok(Self {
            seebeck_v_per_k,
            seebeck_temp_coeff,
            resistance_temp_coeff,
        })
    }

    /// Per-couple Seebeck coefficient in V/K at the given ΔT (in kelvin).
    #[must_use]
    pub fn seebeck_per_couple(&self, delta_t_kelvin: f64) -> f64 {
        self.seebeck_v_per_k * (1.0 + self.seebeck_temp_coeff * delta_t_kelvin.max(0.0))
    }

    /// Relative resistance multiplier at the given ΔT, normalised to 1 at
    /// ΔT = 0.
    #[must_use]
    pub fn resistance_factor(&self, delta_t: TemperatureDelta) -> f64 {
        1.0 + self.resistance_temp_coeff * delta_t.clamp_non_negative().kelvin()
    }
}

impl Default for ThermoelectricMaterial {
    fn default() -> Self {
        Self::bismuth_telluride()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_material_has_constant_coefficients() {
        let mat = ThermoelectricMaterial::default();
        assert_eq!(mat.seebeck_per_couple(0.0), mat.seebeck_per_couple(100.0));
        assert_eq!(mat.resistance_factor(TemperatureDelta::new(80.0)), 1.0);
    }

    #[test]
    fn drift_material_changes_with_temperature() {
        let mat = ThermoelectricMaterial::bismuth_telluride_with_drift();
        assert!(mat.seebeck_per_couple(100.0) > mat.seebeck_per_couple(0.0));
        assert!(mat.resistance_factor(TemperatureDelta::new(100.0)) > 1.2);
        // Negative ΔT is clamped rather than extrapolated.
        assert_eq!(mat.resistance_factor(TemperatureDelta::new(-20.0)), 1.0);
        assert_eq!(mat.seebeck_per_couple(-20.0), mat.seebeck_per_couple(0.0));
    }

    #[test]
    fn custom_material_validation() {
        assert!(ThermoelectricMaterial::new(2.0e-4, 0.0, 0.0).is_ok());
        assert!(matches!(
            ThermoelectricMaterial::new(0.0, 0.0, 0.0),
            Err(DeviceError::InvalidParameter { .. })
        ));
        assert!(matches!(
            ThermoelectricMaterial::new(-1.0e-4, 0.0, 0.0),
            Err(DeviceError::InvalidParameter { .. })
        ));
        assert!(matches!(
            ThermoelectricMaterial::new(f64::NAN, 0.0, 0.0),
            Err(DeviceError::NonFiniteInput { .. })
        ));
    }

    #[test]
    fn bismuth_telluride_seebeck_magnitude() {
        // Per-couple Seebeck of Bi2Te3 is a few hundred µV/K.
        let s = ThermoelectricMaterial::bismuth_telluride().seebeck_per_couple(50.0);
        assert!(
            s > 1.0e-4 && s < 1.0e-3,
            "implausible Seebeck coefficient {s}"
        );
    }
}
