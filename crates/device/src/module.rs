//! The per-module TEG electrical model (Eq. 2 of the paper).

use teg_units::{Amps, Ohms, TemperatureDelta, Volts, Watts};

use crate::datasheet::TegDatasheet;
use crate::error::DeviceError;
use crate::material::ThermoelectricMaterial;
use crate::mpp::MppPoint;

/// A single thermoelectric generator module.
///
/// The module is a Thévenin source: an EMF `E = α·ΔT·N_cpl` behind an
/// internal resistance `R_teg`.  All electrical queries (operating point under
/// a resistive load, under an imposed current, the MPP) follow from those two
/// numbers, which is exactly the model of the paper's Eq. 2 and of the prior
/// reconfiguration work it builds on.
///
/// # Examples
///
/// ```
/// use teg_device::{TegDatasheet, TegModule};
/// use teg_units::{Ohms, TemperatureDelta};
///
/// let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let dt = TemperatureDelta::new(80.0);
/// // Matched load extracts the maximum power.
/// let matched = module.power_at_load(dt, module.internal_resistance(dt));
/// let mismatched = module.power_at_load(dt, Ohms::new(10.0));
/// assert!(matched > mismatched);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TegModule {
    couple_count: u32,
    material: ThermoelectricMaterial,
    base_resistance: Ohms,
    seebeck_scale: f64,
    resistance_scale: f64,
}

impl TegModule {
    /// Builds a module straight from a datasheet with the default
    /// bismuth-telluride material (constant coefficients, as in the paper).
    #[must_use]
    pub fn from_datasheet(datasheet: &TegDatasheet) -> Self {
        Self {
            couple_count: datasheet.couple_count(),
            material: ThermoelectricMaterial::default(),
            base_resistance: Ohms::new(datasheet.internal_resistance_ohms()),
            seebeck_scale: datasheet.seebeck_per_couple()
                / ThermoelectricMaterial::default().seebeck_per_couple(0.0),
            resistance_scale: 1.0,
        }
    }

    /// Builds a module from a datasheet and an explicit material model.
    #[must_use]
    pub fn with_material(datasheet: &TegDatasheet, material: ThermoelectricMaterial) -> Self {
        Self {
            couple_count: datasheet.couple_count(),
            material,
            base_resistance: Ohms::new(datasheet.internal_resistance_ohms()),
            seebeck_scale: 1.0,
            resistance_scale: 1.0,
        }
    }

    /// Returns a copy of the module with its Seebeck coefficient and internal
    /// resistance scaled by the given relative factors.
    ///
    /// This is the hook used by [`VariationModel`](crate::VariationModel) to
    /// inject manufacturing spread.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if either factor is not
    /// strictly positive, or [`DeviceError::NonFiniteInput`] if not finite.
    pub fn scaled(&self, seebeck_factor: f64, resistance_factor: f64) -> Result<Self, DeviceError> {
        if !seebeck_factor.is_finite() || !resistance_factor.is_finite() {
            return Err(DeviceError::NonFiniteInput {
                what: "scaling factors",
            });
        }
        if seebeck_factor <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "seebeck factor",
                value: seebeck_factor,
            });
        }
        if resistance_factor <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "resistance factor",
                value: resistance_factor,
            });
        }
        let mut out = self.clone();
        out.seebeck_scale *= seebeck_factor;
        out.resistance_scale *= resistance_factor;
        Ok(out)
    }

    /// Number of thermoelectric couples in the module.
    #[must_use]
    pub const fn couple_count(&self) -> u32 {
        self.couple_count
    }

    /// Open-circuit (Seebeck) voltage `E = α·ΔT·N_cpl` at the given ΔT.
    ///
    /// Negative ΔT is clamped to zero: the harvesting model never operates a
    /// module in cooling mode.
    #[must_use]
    pub fn open_circuit_voltage(&self, delta_t: TemperatureDelta) -> Volts {
        let dt = delta_t.clamp_non_negative().kelvin();
        let alpha = self.material.seebeck_per_couple(dt) * self.seebeck_scale;
        Volts::new(alpha * dt * f64::from(self.couple_count))
    }

    /// Internal resistance `R_teg` at the given ΔT.
    #[must_use]
    pub fn internal_resistance(&self, delta_t: TemperatureDelta) -> Ohms {
        self.base_resistance * (self.material.resistance_factor(delta_t) * self.resistance_scale)
    }

    /// Internal conductance `1 / R_teg` at the given ΔT, used by the array
    /// solver when combining parallel modules.
    #[must_use]
    pub fn internal_conductance(&self, delta_t: TemperatureDelta) -> f64 {
        1.0 / self.internal_resistance(delta_t).value()
    }

    /// Terminal voltage when the module is forced to source the given
    /// current: `V = E − I·R_teg`.
    ///
    /// The value may be negative if the imposed current exceeds the
    /// short-circuit current; the array solver relies on this linearity.
    #[must_use]
    pub fn voltage_at_current(&self, delta_t: TemperatureDelta, current: Amps) -> Volts {
        self.open_circuit_voltage(delta_t) - current * self.internal_resistance(delta_t)
    }

    /// Current delivered into a resistive load: `I = E / (R_teg + R_load)`.
    ///
    /// # Panics
    ///
    /// Panics if the load resistance is negative.
    #[must_use]
    pub fn current_at_load(&self, delta_t: TemperatureDelta, load: Ohms) -> Amps {
        assert!(load.value() >= 0.0, "load resistance must be non-negative");
        let e = self.open_circuit_voltage(delta_t);
        let r = self.internal_resistance(delta_t);
        Amps::new(e.value() / (r.value() + load.value()))
    }

    /// Power delivered into a resistive load: `P = I²·R_load` (Eq. 2).
    ///
    /// # Panics
    ///
    /// Panics if the load resistance is negative.
    #[must_use]
    pub fn power_at_load(&self, delta_t: TemperatureDelta, load: Ohms) -> Watts {
        let i = self.current_at_load(delta_t, load);
        Watts::new(i.value() * i.value() * load.value())
    }

    /// Power delivered when the module is forced to source the given current:
    /// `P = V·I = (E − I·R)·I`.
    #[must_use]
    pub fn power_at_current(&self, delta_t: TemperatureDelta, current: Amps) -> Watts {
        self.voltage_at_current(delta_t, current) * current
    }

    /// Short-circuit current `E / R_teg`.
    #[must_use]
    pub fn short_circuit_current(&self, delta_t: TemperatureDelta) -> Amps {
        self.open_circuit_voltage(delta_t) / self.internal_resistance(delta_t)
    }

    /// Maximum power point at the given ΔT (matched load).
    #[must_use]
    pub fn mpp(&self, delta_t: TemperatureDelta) -> MppPoint {
        let e = self.open_circuit_voltage(delta_t);
        let r = self.internal_resistance(delta_t);
        MppPoint::new(e / 2.0, Amps::new(e.value() / (2.0 * r.value())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn module() -> TegModule {
        TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8())
    }

    #[test]
    fn open_circuit_voltage_is_linear_in_delta_t() {
        let m = module();
        let v40 = m.open_circuit_voltage(TemperatureDelta::new(40.0));
        let v80 = m.open_circuit_voltage(TemperatureDelta::new(80.0));
        assert!((v80.value() - 2.0 * v40.value()).abs() < 1e-9);
    }

    #[test]
    fn negative_delta_t_produces_no_voltage() {
        let m = module();
        assert_eq!(
            m.open_circuit_voltage(TemperatureDelta::new(-10.0)),
            Volts::ZERO
        );
        assert_eq!(m.mpp(TemperatureDelta::new(-10.0)).power(), Watts::ZERO);
    }

    #[test]
    fn mpp_is_half_open_circuit_voltage() {
        let m = module();
        let dt = TemperatureDelta::new(65.0);
        let mpp = m.mpp(dt);
        let e = m.open_circuit_voltage(dt);
        assert!((mpp.voltage().value() - e.value() / 2.0).abs() < 1e-12);
        assert!((mpp.current().value() - e.value() / (2.0 * 2.5)).abs() < 1e-9);
        // P_mpp = E²/(4R)
        assert!((mpp.power().value() - e.value() * e.value() / 10.0).abs() < 1e-9);
    }

    #[test]
    fn matched_load_reaches_the_mpp() {
        let m = module();
        let dt = TemperatureDelta::new(70.0);
        let r = m.internal_resistance(dt);
        let p_matched = m.power_at_load(dt, r);
        let mpp = m.mpp(dt);
        assert!((p_matched.value() - mpp.power().value()).abs() < 1e-9);
    }

    #[test]
    fn mismatched_loads_lose_power() {
        let m = module();
        let dt = TemperatureDelta::new(70.0);
        let p_mpp = m.mpp(dt).power();
        for load in [0.1_f64, 0.5, 1.0, 5.0, 10.0, 50.0] {
            let p = m.power_at_load(dt, Ohms::new(load));
            assert!(
                p.value() <= p_mpp.value() + 1e-9,
                "load {load} exceeded MPP"
            );
        }
    }

    #[test]
    fn voltage_at_current_is_linear() {
        let m = module();
        let dt = TemperatureDelta::new(50.0);
        let e = m.open_circuit_voltage(dt);
        let r = m.internal_resistance(dt);
        let v = m.voltage_at_current(dt, Amps::new(0.4));
        assert!((v.value() - (e.value() - 0.4 * r.value())).abs() < 1e-12);
        // At short-circuit current the terminal voltage collapses to zero.
        let isc = m.short_circuit_current(dt);
        assert!(m.voltage_at_current(dt, isc).value().abs() < 1e-9);
    }

    #[test]
    fn power_at_current_matches_load_formulation() {
        let m = module();
        let dt = TemperatureDelta::new(90.0);
        let load = Ohms::new(3.3);
        let i = m.current_at_load(dt, load);
        let p_load = m.power_at_load(dt, load);
        let p_current = m.power_at_current(dt, i);
        assert!((p_load.value() - p_current.value()).abs() < 1e-9);
    }

    #[test]
    fn scaled_module_shifts_parameters() {
        let m = module();
        let dt = TemperatureDelta::new(60.0);
        let hot = m.scaled(1.1, 0.9).unwrap();
        assert!(hot.open_circuit_voltage(dt) > m.open_circuit_voltage(dt));
        assert!(hot.internal_resistance(dt) < m.internal_resistance(dt));
        assert!(m.scaled(0.0, 1.0).is_err());
        assert!(m.scaled(1.0, -1.0).is_err());
        assert!(m.scaled(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn with_material_drift_raises_resistance_when_hot() {
        let ds = TegDatasheet::tgm_199_1_4_0_8();
        let drifting =
            TegModule::with_material(&ds, ThermoelectricMaterial::bismuth_telluride_with_drift());
        let cold = drifting.internal_resistance(TemperatureDelta::new(10.0));
        let hot = drifting.internal_resistance(TemperatureDelta::new(110.0));
        assert!(hot > cold);
    }

    #[test]
    #[should_panic(expected = "load resistance must be non-negative")]
    fn negative_load_is_rejected() {
        let _ = module().power_at_load(TemperatureDelta::new(50.0), Ohms::new(-1.0));
    }

    proptest! {
        /// The MPP really is the maximum over all resistive loads.
        #[test]
        fn prop_mpp_dominates_all_loads(dt in 1.0_f64..150.0, load in 0.01_f64..100.0) {
            let m = module();
            let p = m.power_at_load(TemperatureDelta::new(dt), Ohms::new(load));
            let p_mpp = m.mpp(TemperatureDelta::new(dt)).power();
            prop_assert!(p.value() <= p_mpp.value() + 1e-9);
        }

        /// Power under an imposed current is a concave parabola that is
        /// non-negative between zero and the short-circuit current.
        #[test]
        fn prop_power_non_negative_below_short_circuit(
            dt in 1.0_f64..150.0,
            frac in 0.0_f64..1.0,
        ) {
            let m = module();
            let delta = TemperatureDelta::new(dt);
            let isc = m.short_circuit_current(delta);
            let p = m.power_at_current(delta, isc * frac);
            prop_assert!(p.value() >= -1e-9);
        }

        /// Open-circuit voltage scales linearly with ΔT.
        #[test]
        fn prop_voc_linear(dt in 0.0_f64..150.0, k in 0.1_f64..3.0) {
            let m = module();
            let a = m.open_circuit_voltage(TemperatureDelta::new(dt)).value();
            let b = m.open_circuit_voltage(TemperatureDelta::new(dt * k)).value();
            prop_assert!((b - a * k).abs() < 1e-7 * (1.0 + a.abs() * k));
        }
    }
}
