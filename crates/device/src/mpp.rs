//! Maximum power point of a single TEG module.

use teg_units::{Amps, Volts, Watts};

/// The maximum power point (MPP) of a module at a particular ΔT.
///
/// For the linear Thévenin model the MPP is reached at matched load:
/// `V_mpp = E/2`, `I_mpp = E / (2·R_teg)`, `P_mpp = E² / (4·R_teg)`.
///
/// # Examples
///
/// ```
/// use teg_device::{TegDatasheet, TegModule};
/// use teg_units::TemperatureDelta;
///
/// let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let mpp = module.mpp(TemperatureDelta::new(60.0));
/// let recomputed = mpp.voltage() * mpp.current();
/// assert!((recomputed.value() - mpp.power().value()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MppPoint {
    voltage: Volts,
    current: Amps,
    power: Watts,
}

impl MppPoint {
    /// Creates an MPP record from its voltage and current; the power is the
    /// product of the two.
    #[must_use]
    pub fn new(voltage: Volts, current: Amps) -> Self {
        Self {
            voltage,
            current,
            power: voltage * current,
        }
    }

    /// Terminal voltage at the MPP.
    #[must_use]
    pub const fn voltage(&self) -> Volts {
        self.voltage
    }

    /// Output current at the MPP (`I_MPP` in Algorithm 1).
    #[must_use]
    pub const fn current(&self) -> Amps {
        self.current
    }

    /// Output power at the MPP.
    #[must_use]
    pub const fn power(&self) -> Watts {
        self.power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_consistent_with_voltage_and_current() {
        let mpp = MppPoint::new(Volts::new(3.0), Amps::new(0.5));
        assert_eq!(mpp.power(), Watts::new(1.5));
        assert_eq!(mpp.voltage(), Volts::new(3.0));
        assert_eq!(mpp.current(), Amps::new(0.5));
    }

    #[test]
    fn default_is_all_zero() {
        let mpp = MppPoint::default();
        assert_eq!(mpp.power(), Watts::ZERO);
    }
}
