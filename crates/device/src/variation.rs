//! Module-to-module manufacturing variation.
//!
//! Commercial TEG modules of the same part number differ by a few percent in
//! Seebeck coefficient and internal resistance.  The paper's algorithms only
//! rely on per-module MPP currents, so injecting realistic spread is a useful
//! robustness check for the reconfiguration logic — a balanced partition of
//! identical modules is trivially optimal, a balanced partition of varied
//! modules is not.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::error::DeviceError;
use crate::module::TegModule;

/// Seeded generator of per-module parameter spread.
///
/// # Examples
///
/// ```
/// use teg_device::{TegDatasheet, TegModule, VariationModel};
///
/// # fn main() -> Result<(), teg_device::DeviceError> {
/// let nominal = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let variation = VariationModel::new(0.03, 0.05)?;
/// let modules = variation.apply(&nominal, 100, 7)?;
/// assert_eq!(modules.len(), 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    seebeck_tolerance: f64,
    resistance_tolerance: f64,
}

impl VariationModel {
    /// Creates a variation model with the given relative tolerances
    /// (e.g. `0.03` = ±3 % uniform spread).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if a tolerance is negative or
    /// at least 1 (which would allow non-positive parameters), and
    /// [`DeviceError::NonFiniteInput`] for non-finite values.
    pub fn new(seebeck_tolerance: f64, resistance_tolerance: f64) -> Result<Self, DeviceError> {
        if !seebeck_tolerance.is_finite() || !resistance_tolerance.is_finite() {
            return Err(DeviceError::NonFiniteInput {
                what: "variation tolerances",
            });
        }
        if !(0.0..1.0).contains(&seebeck_tolerance) {
            return Err(DeviceError::InvalidParameter {
                name: "seebeck tolerance",
                value: seebeck_tolerance,
            });
        }
        if !(0.0..1.0).contains(&resistance_tolerance) {
            return Err(DeviceError::InvalidParameter {
                name: "resistance tolerance",
                value: resistance_tolerance,
            });
        }
        Ok(Self {
            seebeck_tolerance,
            resistance_tolerance,
        })
    }

    /// A variation model with no spread: every module is an exact copy of the
    /// nominal one (the paper's setting).
    #[must_use]
    pub fn none() -> Self {
        Self {
            seebeck_tolerance: 0.0,
            resistance_tolerance: 0.0,
        }
    }

    /// Relative Seebeck-coefficient tolerance.
    #[must_use]
    pub const fn seebeck_tolerance(&self) -> f64 {
        self.seebeck_tolerance
    }

    /// Relative internal-resistance tolerance.
    #[must_use]
    pub const fn resistance_tolerance(&self) -> f64 {
        self.resistance_tolerance
    }

    /// Produces `count` copies of `nominal` with uniformly distributed
    /// parameter spread, deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates [`DeviceError`] from [`TegModule::scaled`] (cannot happen
    /// for tolerances accepted by [`VariationModel::new`]).
    pub fn apply(
        &self,
        nominal: &TegModule,
        count: usize,
        seed: u64,
    ) -> Result<Vec<TegModule>, DeviceError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let s = if self.seebeck_tolerance > 0.0 {
                    1.0 + rng.gen_range(-self.seebeck_tolerance..=self.seebeck_tolerance)
                } else {
                    1.0
                };
                let r = if self.resistance_tolerance > 0.0 {
                    1.0 + rng.gen_range(-self.resistance_tolerance..=self.resistance_tolerance)
                } else {
                    1.0
                };
                nominal.scaled(s, r)
            })
            .collect()
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasheet::TegDatasheet;
    use teg_units::TemperatureDelta;

    fn nominal() -> TegModule {
        TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8())
    }

    #[test]
    fn no_variation_reproduces_the_nominal_module() {
        let modules = VariationModel::none().apply(&nominal(), 5, 3).unwrap();
        let dt = TemperatureDelta::new(70.0);
        for m in &modules {
            assert_eq!(m.mpp(dt).power(), nominal().mpp(dt).power());
        }
    }

    #[test]
    fn variation_is_deterministic_per_seed() {
        let variation = VariationModel::new(0.05, 0.08).unwrap();
        let a = variation.apply(&nominal(), 20, 42).unwrap();
        let b = variation.apply(&nominal(), 20, 42).unwrap();
        assert_eq!(a, b);
        let c = variation.apply(&nominal(), 20, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn spread_stays_within_tolerance() {
        let tol = 0.05;
        let variation = VariationModel::new(tol, tol).unwrap();
        let modules = variation.apply(&nominal(), 200, 11).unwrap();
        let dt = TemperatureDelta::new(80.0);
        let nominal_voc = nominal().open_circuit_voltage(dt).value();
        let nominal_r = nominal().internal_resistance(dt).value();
        for m in &modules {
            let voc = m.open_circuit_voltage(dt).value();
            let r = m.internal_resistance(dt).value();
            assert!((voc / nominal_voc - 1.0).abs() <= tol + 1e-9);
            assert!((r / nominal_r - 1.0).abs() <= tol + 1e-9);
        }
        // The spread must actually be exercised (not all identical).
        let distinct: std::collections::BTreeSet<u64> = modules
            .iter()
            .map(|m| m.open_circuit_voltage(dt).value().to_bits())
            .collect();
        assert!(distinct.len() > 100);
    }

    #[test]
    fn invalid_tolerances_are_rejected() {
        assert!(VariationModel::new(-0.1, 0.0).is_err());
        assert!(VariationModel::new(0.0, 1.0).is_err());
        assert!(VariationModel::new(f64::NAN, 0.0).is_err());
        assert!(VariationModel::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn default_is_no_variation() {
        assert_eq!(VariationModel::default(), VariationModel::none());
        assert_eq!(VariationModel::none().seebeck_tolerance(), 0.0);
        assert_eq!(VariationModel::none().resistance_tolerance(), 0.0);
    }
}
