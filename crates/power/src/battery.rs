//! Lead-acid vehicle battery sink.

use teg_units::{Joules, Volts, Watts};

use crate::error::PowerError;

/// A simple coulomb-counting lead-acid battery model.
///
/// The battery is the sink of the harvesting chain; the paper only needs its
/// charging voltage (13.8 V) and the total energy delivered into it, but the
/// model also tracks state of charge so long simulations can check that
/// harvested energy is conserved.
///
/// # Examples
///
/// ```
/// use teg_power::LeadAcidBattery;
/// use teg_units::{Joules, Watts, Seconds};
///
/// # fn main() -> Result<(), teg_power::PowerError> {
/// let mut battery = LeadAcidBattery::vehicle_12v(60.0, 0.5)?;
/// battery.accept(Watts::new(50.0) * Seconds::new(10.0));
/// assert!(battery.accepted_energy() >= Joules::new(500.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeadAcidBattery {
    charging_voltage: Volts,
    capacity_joules: f64,
    state_of_charge: f64,
    accepted_energy: Joules,
}

impl LeadAcidBattery {
    /// A 12 V automotive battery with the given capacity in amp-hours and an
    /// initial state of charge in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if the capacity is not
    /// positive or the state of charge lies outside `[0, 1]`.
    pub fn vehicle_12v(capacity_ah: f64, state_of_charge: f64) -> Result<Self, PowerError> {
        if !(capacity_ah > 0.0) {
            return Err(PowerError::InvalidParameter {
                name: "capacity",
                value: capacity_ah,
            });
        }
        if !(0.0..=1.0).contains(&state_of_charge) {
            return Err(PowerError::InvalidParameter {
                name: "state of charge",
                value: state_of_charge,
            });
        }
        Ok(Self {
            charging_voltage: Volts::new(13.8),
            capacity_joules: capacity_ah * 3600.0 * 12.0,
            state_of_charge,
            accepted_energy: Joules::ZERO,
        })
    }

    /// Charging voltage the charger regulates to (13.8 V).
    #[must_use]
    pub const fn charging_voltage(&self) -> Volts {
        self.charging_voltage
    }

    /// Current state of charge in `[0, 1]`.
    #[must_use]
    pub const fn state_of_charge(&self) -> f64 {
        self.state_of_charge
    }

    /// Total energy accepted from the charger since construction.
    #[must_use]
    pub const fn accepted_energy(&self) -> Joules {
        self.accepted_energy
    }

    /// Nominal full-charge capacity.
    #[must_use]
    pub fn capacity(&self) -> Joules {
        Joules::new(self.capacity_joules)
    }

    /// Accepts a quantum of charging energy, clamping the state of charge at
    /// 100 % (surplus is assumed burnt in the regulator, as on a real
    /// vehicle), and returns the energy actually stored.
    pub fn accept(&mut self, energy: Joules) -> Joules {
        let energy = energy.max(Joules::ZERO);
        self.accepted_energy += energy;
        let headroom = (1.0 - self.state_of_charge) * self.capacity_joules;
        let stored = energy.value().min(headroom);
        self.state_of_charge += stored / self.capacity_joules;
        Joules::new(stored)
    }

    /// Discharges the battery by the requested energy (vehicle loads),
    /// returning the energy actually supplied before hitting empty.
    pub fn discharge(&mut self, energy: Joules) -> Joules {
        let energy = energy.max(Joules::ZERO);
        let available = self.state_of_charge * self.capacity_joules;
        let supplied = energy.value().min(available);
        self.state_of_charge -= supplied / self.capacity_joules;
        Joules::new(supplied)
    }

    /// Average charging current implied by a charging power at the battery
    /// voltage.
    #[must_use]
    pub fn charging_current(&self, power: Watts) -> f64 {
        power.max(Watts::ZERO).value() / self.charging_voltage.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_units::Seconds;

    #[test]
    fn construction_validation() {
        assert!(LeadAcidBattery::vehicle_12v(60.0, 0.5).is_ok());
        assert!(LeadAcidBattery::vehicle_12v(0.0, 0.5).is_err());
        assert!(LeadAcidBattery::vehicle_12v(60.0, -0.1).is_err());
        assert!(LeadAcidBattery::vehicle_12v(60.0, 1.1).is_err());
    }

    #[test]
    fn accepting_energy_raises_state_of_charge() {
        let mut b = LeadAcidBattery::vehicle_12v(60.0, 0.5).unwrap();
        let before = b.state_of_charge();
        let stored = b.accept(Watts::new(100.0) * Seconds::new(3600.0));
        assert_eq!(stored, Joules::new(360_000.0));
        assert!(b.state_of_charge() > before);
        assert_eq!(b.accepted_energy(), Joules::new(360_000.0));
    }

    #[test]
    fn full_battery_does_not_overcharge() {
        let mut b = LeadAcidBattery::vehicle_12v(1.0, 1.0).unwrap();
        let stored = b.accept(Joules::new(1_000.0));
        assert_eq!(stored, Joules::ZERO);
        assert_eq!(b.state_of_charge(), 1.0);
        // Accepted energy is still metered (it reached the battery terminal).
        assert_eq!(b.accepted_energy(), Joules::new(1_000.0));
    }

    #[test]
    fn discharge_respects_available_energy() {
        let mut b = LeadAcidBattery::vehicle_12v(1.0, 0.5).unwrap();
        let available = b.capacity().value() * 0.5;
        let supplied = b.discharge(Joules::new(available * 2.0));
        assert!((supplied.value() - available).abs() < 1e-9);
        assert!(b.state_of_charge().abs() < 1e-12);
    }

    #[test]
    fn negative_quantities_are_clamped() {
        let mut b = LeadAcidBattery::vehicle_12v(60.0, 0.5).unwrap();
        assert_eq!(b.accept(Joules::new(-10.0)), Joules::ZERO);
        assert_eq!(b.discharge(Joules::new(-10.0)), Joules::ZERO);
        assert_eq!(b.charging_current(Watts::new(-5.0)), 0.0);
    }

    #[test]
    fn charging_current_follows_ohms_law_at_terminal() {
        let b = LeadAcidBattery::vehicle_12v(60.0, 0.5).unwrap();
        let i = b.charging_current(Watts::new(138.0));
        assert!((i - 10.0).abs() < 1e-12);
        assert_eq!(b.charging_voltage(), Volts::new(13.8));
    }
}
