//! Charger (DC-DC converter) efficiency model.

use teg_units::{Volts, Watts};

use crate::error::PowerError;

/// A buck-boost charger converting the TEG array voltage to the battery
/// charging voltage.
///
/// The efficiency model captures the behaviour the paper relies on: the
/// LTM4607-class converter is most efficient when its input voltage is close
/// to its output voltage, and loses efficiency as the conversion ratio
/// departs from unity (especially when boosting from a low input voltage).
/// The model is
///
/// ```text
/// η(V_in) = η_peak − k·|ln(V_in / V_out)|       clamped to [η_floor, η_peak]
/// ```
///
/// with a hard cut-off below the converter's minimum operating voltage.
///
/// # Examples
///
/// ```
/// use teg_power::Charger;
/// use teg_units::Volts;
///
/// let charger = Charger::ltm4607_lead_acid();
/// assert!(charger.efficiency(Volts::new(13.8)) > 0.95);
/// assert_eq!(charger.efficiency(Volts::new(1.0)), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Charger {
    output_voltage: Volts,
    peak_efficiency: f64,
    ratio_penalty: f64,
    floor_efficiency: f64,
    minimum_input: Volts,
}

impl Charger {
    /// The paper's charger: an LTM4607 buck-boost regulator feeding a 13.8 V
    /// lead-acid battery.
    #[must_use]
    pub fn ltm4607_lead_acid() -> Self {
        Self {
            output_voltage: Volts::new(13.8),
            peak_efficiency: 0.97,
            ratio_penalty: 0.10,
            floor_efficiency: 0.55,
            minimum_input: Volts::new(2.5),
        }
    }

    /// Creates a custom charger model.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if the output voltage or
    /// minimum input voltage is not positive, the peak efficiency is not in
    /// `(0, 1]`, the floor efficiency is not in `[0, peak]`, or the ratio
    /// penalty is negative.
    pub fn new(
        output_voltage: Volts,
        peak_efficiency: f64,
        ratio_penalty: f64,
        floor_efficiency: f64,
        minimum_input: Volts,
    ) -> Result<Self, PowerError> {
        if !(output_voltage.value() > 0.0) {
            return Err(PowerError::InvalidParameter {
                name: "output voltage",
                value: output_voltage.value(),
            });
        }
        if !(peak_efficiency > 0.0 && peak_efficiency <= 1.0) {
            return Err(PowerError::InvalidParameter {
                name: "peak efficiency",
                value: peak_efficiency,
            });
        }
        if !(0.0..=peak_efficiency).contains(&floor_efficiency) {
            return Err(PowerError::InvalidParameter {
                name: "floor efficiency",
                value: floor_efficiency,
            });
        }
        if !(ratio_penalty >= 0.0) {
            return Err(PowerError::InvalidParameter {
                name: "ratio penalty",
                value: ratio_penalty,
            });
        }
        if !(minimum_input.value() > 0.0) {
            return Err(PowerError::InvalidParameter {
                name: "minimum input voltage",
                value: minimum_input.value(),
            });
        }
        Ok(Self {
            output_voltage,
            peak_efficiency,
            ratio_penalty,
            floor_efficiency,
            minimum_input,
        })
    }

    /// Battery-side output voltage (13.8 V for the lead-acid preset).
    #[must_use]
    pub const fn output_voltage(&self) -> Volts {
        self.output_voltage
    }

    /// Minimum input voltage below which the converter cannot operate.
    #[must_use]
    pub const fn minimum_input(&self) -> Volts {
        self.minimum_input
    }

    /// Conversion efficiency at the given input (array) voltage, in `[0, 1]`.
    #[must_use]
    pub fn efficiency(&self, input_voltage: Volts) -> f64 {
        let vin = input_voltage.value();
        if !vin.is_finite() || vin < self.minimum_input.value() {
            return 0.0;
        }
        let ratio = vin / self.output_voltage.value();
        let eta = self.peak_efficiency - self.ratio_penalty * ratio.ln().abs();
        eta.clamp(self.floor_efficiency, self.peak_efficiency)
    }

    /// Power delivered to the battery for a given array operating point.
    #[must_use]
    pub fn output_power(&self, input_voltage: Volts, input_power: Watts) -> Watts {
        input_power.max(Watts::ZERO) * self.efficiency(input_voltage)
    }

    /// The inclusive input-voltage window within which the converter reaches
    /// at least `min_efficiency`, or `None` if the demand exceeds the peak
    /// efficiency.
    ///
    /// The reconfiguration algorithms use this window to bound the number of
    /// series groups (`n_min..n_max` in Algorithm 1): the array MPP voltage is
    /// roughly `n` times one group's MPP voltage, so `n` must keep the array
    /// inside this window.
    #[must_use]
    pub fn voltage_window(&self, min_efficiency: f64) -> Option<(Volts, Volts)> {
        if min_efficiency > self.peak_efficiency {
            return None;
        }
        if self.ratio_penalty == 0.0 {
            // Flat efficiency: any voltage above the minimum input works.
            return Some((self.minimum_input, Volts::new(f64::MAX)));
        }
        let max_ln = ((self.peak_efficiency - min_efficiency) / self.ratio_penalty).max(0.0);
        let lo = self.output_voltage.value() * (-max_ln).exp();
        let hi = self.output_voltage.value() * max_ln.exp();
        Some((
            Volts::new(lo.max(self.minimum_input.value())),
            Volts::new(hi),
        ))
    }
}

impl Default for Charger {
    fn default() -> Self {
        Self::ltm4607_lead_acid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_peaks_at_matched_voltage() {
        let c = Charger::ltm4607_lead_acid();
        let at_output = c.efficiency(Volts::new(13.8));
        assert!((at_output - 0.97).abs() < 1e-12);
        for v in [4.0, 6.0, 9.0, 20.0, 40.0] {
            assert!(c.efficiency(Volts::new(v)) <= at_output);
        }
    }

    #[test]
    fn efficiency_is_symmetric_in_log_ratio() {
        let c = Charger::ltm4607_lead_acid();
        let half = c.efficiency(Volts::new(13.8 / 2.0));
        let double = c.efficiency(Volts::new(13.8 * 2.0));
        assert!((half - double).abs() < 1e-12);
    }

    #[test]
    fn below_minimum_input_no_conversion() {
        let c = Charger::ltm4607_lead_acid();
        assert_eq!(c.efficiency(Volts::new(2.0)), 0.0);
        assert_eq!(c.efficiency(Volts::new(f64::NAN)), 0.0);
        assert_eq!(
            c.output_power(Volts::new(2.0), Watts::new(50.0)),
            Watts::ZERO
        );
    }

    #[test]
    fn efficiency_never_falls_below_floor_when_operating() {
        let c = Charger::ltm4607_lead_acid();
        for v in [3.0_f64, 5.0, 10.0, 30.0, 100.0, 400.0] {
            let eta = c.efficiency(Volts::new(v));
            assert!(
                (0.55 - 1e-12..=0.97 + 1e-12).contains(&eta),
                "v={v} eta={eta}"
            );
        }
    }

    #[test]
    fn output_power_applies_efficiency_and_clamps_negative_input() {
        let c = Charger::ltm4607_lead_acid();
        let out = c.output_power(Volts::new(13.8), Watts::new(100.0));
        assert!((out.value() - 97.0).abs() < 1e-9);
        assert_eq!(
            c.output_power(Volts::new(13.8), Watts::new(-5.0)),
            Watts::ZERO
        );
    }

    #[test]
    fn voltage_window_brackets_the_output_voltage() {
        let c = Charger::ltm4607_lead_acid();
        let (lo, hi) = c.voltage_window(0.9).unwrap();
        assert!(lo.value() < 13.8 && hi.value() > 13.8);
        // Demanding the peak efficiency collapses the window onto the output
        // voltage.
        let (lo, hi) = c.voltage_window(0.97).unwrap();
        assert!((lo.value() - 13.8).abs() < 1e-9);
        assert!((hi.value() - 13.8).abs() < 1e-9);
        // Demanding more than the peak is impossible.
        assert!(c.voltage_window(0.99).is_none());
    }

    #[test]
    fn window_efficiency_is_met_inside_and_violated_outside() {
        let c = Charger::ltm4607_lead_acid();
        let (lo, hi) = c.voltage_window(0.9).unwrap();
        assert!(c.efficiency(lo) >= 0.9 - 1e-9);
        assert!(c.efficiency(hi) >= 0.9 - 1e-9);
        assert!(c.efficiency(Volts::new(hi.value() * 1.5)) < 0.9);
    }

    #[test]
    fn custom_charger_validation() {
        assert!(Charger::new(Volts::new(12.0), 0.95, 0.1, 0.5, Volts::new(2.0)).is_ok());
        assert!(Charger::new(Volts::new(0.0), 0.95, 0.1, 0.5, Volts::new(2.0)).is_err());
        assert!(Charger::new(Volts::new(12.0), 1.2, 0.1, 0.5, Volts::new(2.0)).is_err());
        assert!(Charger::new(Volts::new(12.0), 0.95, -0.1, 0.5, Volts::new(2.0)).is_err());
        assert!(Charger::new(Volts::new(12.0), 0.95, 0.1, 0.99, Volts::new(2.0)).is_err());
        assert!(Charger::new(Volts::new(12.0), 0.95, 0.1, 0.5, Volts::new(0.0)).is_err());
    }

    #[test]
    fn flat_efficiency_window_is_unbounded_above() {
        let c = Charger::new(Volts::new(13.8), 0.9, 0.0, 0.9, Volts::new(2.0)).unwrap();
        let (lo, hi) = c.voltage_window(0.85).unwrap();
        assert_eq!(lo.value(), 2.0);
        assert!(hi.value() > 1e6);
    }
}
