//! Error type for the power-electronics substrate.

use std::error::Error;
use std::fmt;

use teg_array::ArrayError;

/// Errors produced by the charger, MPPT and battery models.
///
/// # Examples
///
/// ```
/// use teg_power::PowerError;
///
/// let err = PowerError::InvalidParameter { name: "efficiency", value: 1.4 };
/// assert!(err.to_string().contains("efficiency"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// A constructor argument was outside its physical range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An error bubbled up from the array solver while tracking its MPP.
    Array(ArrayError),
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter {name}")
            }
            Self::Array(err) => write!(f, "array error during power tracking: {err}"),
        }
    }
}

impl Error for PowerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Array(err) => Some(err),
            Self::InvalidParameter { .. } => None,
        }
    }
}

impl From<ArrayError> for PowerError {
    fn from(err: ArrayError) -> Self {
        Self::Array(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = PowerError::from(ArrayError::EmptyArray);
        assert!(err.to_string().contains("array error"));
        assert!(std::error::Error::source(&err).is_some());
        let err = PowerError::InvalidParameter {
            name: "step",
            value: -1.0,
        };
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<PowerError>();
    }
}
