//! The harvesting front-end: charger + battery bookkeeping for one array.

use teg_array::{ArrayOperatingPoint, Configuration, TegArray};
use teg_units::{Joules, Seconds, TemperatureDelta, Watts};

use crate::battery::LeadAcidBattery;
use crate::converter::Charger;
use crate::error::PowerError;
use crate::mppt::PerturbObserve;

/// Summary of one harvesting interval processed by the front-end.
#[derive(Debug, Clone, PartialEq)]
pub struct HarvestReport {
    array_point: ArrayOperatingPoint,
    converter_efficiency: f64,
    delivered_power: Watts,
    delivered_energy: Joules,
}

impl HarvestReport {
    /// The array operating point the MPPT settled on.
    #[must_use]
    pub const fn array_point(&self) -> &ArrayOperatingPoint {
        &self.array_point
    }

    /// Charger efficiency at that operating point.
    #[must_use]
    pub const fn converter_efficiency(&self) -> f64 {
        self.converter_efficiency
    }

    /// Power delivered into the battery during the interval.
    #[must_use]
    pub const fn delivered_power(&self) -> Watts {
        self.delivered_power
    }

    /// Energy delivered into the battery during the interval.
    #[must_use]
    pub const fn delivered_energy(&self) -> Joules {
        self.delivered_energy
    }
}

/// Charger plus battery, metering harvested energy for a configured array.
///
/// # Examples
///
/// ```
/// use teg_array::{Configuration, TegArray};
/// use teg_device::{TegDatasheet, TegModule};
/// use teg_power::{Charger, HarvestingFrontEnd, LeadAcidBattery};
/// use teg_units::{Seconds, TemperatureDelta};
///
/// # fn main() -> Result<(), teg_power::PowerError> {
/// let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let array = TegArray::uniform(module, 10);
/// let deltas = vec![TemperatureDelta::new(60.0); 10];
/// let config = Configuration::uniform(10, 4).map_err(teg_power::PowerError::from)?;
/// let battery = LeadAcidBattery::vehicle_12v(60.0, 0.6)?;
/// let mut frontend = HarvestingFrontEnd::new(Charger::ltm4607_lead_acid(), battery);
/// let report = frontend.harvest(&array, &config, &deltas, Seconds::new(1.0))?;
/// assert!(report.delivered_energy().value() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HarvestingFrontEnd {
    charger: Charger,
    battery: LeadAcidBattery,
    mppt: PerturbObserve,
    mppt_iterations: usize,
    total_delivered: Joules,
}

impl HarvestingFrontEnd {
    /// Creates a front-end from a charger model and a battery.
    #[must_use]
    pub fn new(charger: Charger, battery: LeadAcidBattery) -> Self {
        Self {
            charger,
            battery,
            mppt: PerturbObserve::default(),
            mppt_iterations: 150,
            total_delivered: Joules::ZERO,
        }
    }

    /// Replaces the MPPT tracker and its per-interval iteration budget.
    #[must_use]
    pub fn with_mppt(mut self, mppt: PerturbObserve, iterations: usize) -> Self {
        self.mppt = mppt;
        self.mppt_iterations = iterations;
        self
    }

    /// The charger model in use.
    #[must_use]
    pub const fn charger(&self) -> &Charger {
        &self.charger
    }

    /// The battery being charged.
    #[must_use]
    pub const fn battery(&self) -> &LeadAcidBattery {
        &self.battery
    }

    /// Total energy delivered into the battery so far.
    #[must_use]
    pub const fn total_delivered(&self) -> Joules {
        self.total_delivered
    }

    /// Tracks the array MPP with P&O, converts the harvested power through
    /// the charger and charges the battery for `duration`.
    ///
    /// # Errors
    ///
    /// Propagates array-solver errors as [`PowerError::Array`].
    pub fn harvest(
        &mut self,
        array: &TegArray,
        config: &Configuration,
        deltas: &[TemperatureDelta],
        duration: Seconds,
    ) -> Result<HarvestReport, PowerError> {
        let outcome = self
            .mppt
            .track(array, config, deltas, self.mppt_iterations)?;
        let point = outcome.operating_point().clone();
        let efficiency = self.charger.efficiency(point.voltage());
        let delivered_power = self.charger.output_power(point.voltage(), point.power());
        let delivered_energy = delivered_power * duration;
        self.battery.accept(delivered_energy);
        self.total_delivered += delivered_energy;
        Ok(HarvestReport {
            array_point: point,
            converter_efficiency: efficiency,
            delivered_power,
            delivered_energy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_device::{TegDatasheet, TegModule};

    fn setup(n: usize) -> (TegArray, Vec<TemperatureDelta>, HarvestingFrontEnd) {
        let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
        let array = TegArray::uniform(module, n);
        let deltas = (0..n)
            .map(|i| TemperatureDelta::new(70.0 - 30.0 * i as f64 / n as f64))
            .collect();
        let battery = LeadAcidBattery::vehicle_12v(60.0, 0.5).unwrap();
        let frontend = HarvestingFrontEnd::new(Charger::ltm4607_lead_acid(), battery);
        (array, deltas, frontend)
    }

    #[test]
    fn harvesting_charges_the_battery() {
        let (array, deltas, mut frontend) = setup(20);
        let config = Configuration::uniform(20, 4).unwrap();
        let soc_before = frontend.battery().state_of_charge();
        let report = frontend
            .harvest(&array, &config, &deltas, Seconds::new(1.0))
            .unwrap();
        assert!(report.delivered_power().value() > 0.0);
        assert!(report.converter_efficiency() > 0.0);
        assert!(frontend.battery().state_of_charge() > soc_before);
        assert_eq!(frontend.total_delivered(), report.delivered_energy());
    }

    #[test]
    fn delivered_energy_accumulates_over_intervals() {
        let (array, deltas, mut frontend) = setup(16);
        let config = Configuration::uniform(16, 4).unwrap();
        let mut sum = Joules::ZERO;
        for _ in 0..5 {
            let report = frontend
                .harvest(&array, &config, &deltas, Seconds::new(2.0))
                .unwrap();
            sum += report.delivered_energy();
        }
        assert!((frontend.total_delivered().value() - sum.value()).abs() < 1e-9);
    }

    #[test]
    fn delivered_power_is_bounded_by_array_power() {
        let (array, deltas, mut frontend) = setup(24);
        let config = Configuration::uniform(24, 6).unwrap();
        let report = frontend
            .harvest(&array, &config, &deltas, Seconds::new(1.0))
            .unwrap();
        assert!(report.delivered_power().value() <= report.array_point().power().value() + 1e-9);
    }

    #[test]
    fn badly_matched_configuration_loses_conversion_efficiency() {
        let (array, deltas, mut frontend) = setup(24);
        // One huge parallel group: array voltage ~ one module's MPP voltage,
        // far below 13.8 V, so the charger efficiency suffers.
        let flat = Configuration::uniform(24, 1).unwrap();
        // A sensible series/parallel split keeps the voltage near the battery.
        let good = Configuration::uniform(24, 6).unwrap();
        let report_flat = frontend
            .harvest(&array, &config_clone(&flat), &deltas, Seconds::new(1.0))
            .unwrap();
        let report_good = frontend
            .harvest(&array, &config_clone(&good), &deltas, Seconds::new(1.0))
            .unwrap();
        assert!(report_good.converter_efficiency() > report_flat.converter_efficiency());
    }

    fn config_clone(c: &Configuration) -> Configuration {
        c.clone()
    }

    #[test]
    fn mismatched_dimensions_error() {
        let (array, _deltas, mut frontend) = setup(10);
        let config = Configuration::uniform(10, 2).unwrap();
        let wrong = vec![TemperatureDelta::new(50.0); 9];
        assert!(frontend
            .harvest(&array, &config, &wrong, Seconds::new(1.0))
            .is_err());
    }

    #[test]
    fn custom_mppt_is_honoured() {
        let (array, deltas, frontend) = setup(12);
        let mut frontend = frontend.with_mppt(
            PerturbObserve::new(
                teg_units::Amps::new(0.02),
                teg_units::Amps::new(0.0005),
                0.5,
            )
            .unwrap(),
            400,
        );
        let config = Configuration::uniform(12, 4).unwrap();
        let report = frontend
            .harvest(&array, &config, &deltas, Seconds::new(1.0))
            .unwrap();
        assert!(report.delivered_power().value() > 0.0);
    }
}
