//! Power-electronics substrate: charger (DC-DC converter), MPPT and battery.
//!
//! The paper's harvesting chain is `TEG array → charger → lead-acid battery`.
//! The charger (an LTM4607-class buck-boost converter) tracks the array's
//! maximum power point with a perturb-and-observe loop and converts the
//! array voltage to the battery's 13.8 V charging voltage.  Its conversion
//! efficiency peaks when the input voltage is close to the output voltage and
//! falls off as the ratio deviates — this is why the reconfiguration
//! algorithms restrict the number of series groups `n` to a window
//! `[n_min, n_max]` that keeps the array MPP voltage near 13.8 V
//! (Section III-B / V-A of the paper).
//!
//! Provided types:
//!
//! * [`Charger`] — conversion-efficiency model and the voltage window it
//!   implies,
//! * [`PerturbObserve`] — the P&O MPPT loop of Femia et al. that the paper
//!   cites, plus a convenience routine to track a configured array,
//! * [`LeadAcidBattery`] — a simple charge-accumulating battery sink,
//! * [`HarvestingFrontEnd`] — glue that meters harvested energy through the
//!   charger into the battery.
//!
//! # Examples
//!
//! ```
//! use teg_power::Charger;
//! use teg_units::Volts;
//!
//! let charger = Charger::ltm4607_lead_acid();
//! // Efficiency peaks near the battery voltage…
//! let near = charger.efficiency(Volts::new(13.8));
//! // …and degrades for a badly matched array voltage.
//! let far = charger.efficiency(Volts::new(3.0));
//! assert!(near > far);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)`-style validation is used deliberately throughout: unlike
// `x <= 0.0` it also rejects NaN parameters.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

mod battery;
mod converter;
mod error;
mod frontend;
mod mppt;

pub use battery::LeadAcidBattery;
pub use converter::Charger;
pub use error::PowerError;
pub use frontend::{HarvestReport, HarvestingFrontEnd};
pub use mppt::{MpptOutcome, PerturbObserve};
