//! Perturb-and-observe maximum power point tracking.
//!
//! The paper's charger finds the overall maximum output power of the
//! configured array with the classic perturb-and-observe (P&O) MPPT of
//! Femia et al.: perturb the operating current by a small step, keep going in
//! the same direction while the measured power increases, reverse otherwise.

use teg_array::{ArrayOperatingPoint, ArrayPlan, ArraySolver, Configuration, TegArray};
use teg_units::{Amps, TemperatureDelta};

use crate::error::PowerError;

/// Result of running the MPPT loop against a configured array.
#[derive(Debug, Clone, PartialEq)]
pub struct MpptOutcome {
    operating_point: ArrayOperatingPoint,
    iterations: usize,
    converged: bool,
}

impl MpptOutcome {
    /// The operating point the tracker settled on.
    #[must_use]
    pub const fn operating_point(&self) -> &ArrayOperatingPoint {
        &self.operating_point
    }

    /// Number of perturbation steps executed.
    #[must_use]
    pub const fn iterations(&self) -> usize {
        self.iterations
    }

    /// `true` when the tracker stopped because the step size collapsed below
    /// its resolution rather than because it ran out of iterations.
    #[must_use]
    pub const fn converged(&self) -> bool {
        self.converged
    }
}

/// Perturb-and-observe MPPT state machine operating on the array string
/// current.
///
/// # Examples
///
/// ```
/// use teg_array::{Configuration, TegArray};
/// use teg_device::{TegDatasheet, TegModule};
/// use teg_power::PerturbObserve;
/// use teg_units::TemperatureDelta;
///
/// # fn main() -> Result<(), teg_power::PowerError> {
/// let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
/// let array = TegArray::uniform(module, 10);
/// let deltas = vec![TemperatureDelta::new(60.0); 10];
/// let config = Configuration::uniform(10, 5).map_err(teg_power::PowerError::from)?;
/// let mut mppt = PerturbObserve::default();
/// let outcome = mppt.track(&array, &config, &deltas, 200)?;
/// // P&O lands within a few percent of the analytic MPP.
/// let analytic = array.maximum_power_point(&config, &deltas).map_err(teg_power::PowerError::from)?;
/// assert!(outcome.operating_point().power().value() > 0.97 * analytic.power().value());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbObserve {
    initial_step: Amps,
    minimum_step: Amps,
    shrink_factor: f64,
}

impl PerturbObserve {
    /// Creates a tracker with the given initial perturbation step, the step
    /// below which it declares convergence, and the factor by which the step
    /// shrinks every time the search direction reverses.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if the steps are not positive,
    /// the minimum step exceeds the initial step, or the shrink factor is not
    /// in `(0, 1)`.
    pub fn new(
        initial_step: Amps,
        minimum_step: Amps,
        shrink_factor: f64,
    ) -> Result<Self, PowerError> {
        if !(initial_step.value() > 0.0) {
            return Err(PowerError::InvalidParameter {
                name: "initial step",
                value: initial_step.value(),
            });
        }
        if !(minimum_step.value() > 0.0) || minimum_step.value() > initial_step.value() {
            return Err(PowerError::InvalidParameter {
                name: "minimum step",
                value: minimum_step.value(),
            });
        }
        if !(shrink_factor > 0.0 && shrink_factor < 1.0) {
            return Err(PowerError::InvalidParameter {
                name: "shrink factor",
                value: shrink_factor,
            });
        }
        Ok(Self {
            initial_step,
            minimum_step,
            shrink_factor,
        })
    }

    /// Runs the P&O loop against a configured array and temperature state.
    ///
    /// The search starts from half of the sum of module MPP currents of the
    /// first group (a cheap, always-feasible seed), perturbs the string
    /// current and keeps the best point seen.  At most `max_iterations` steps
    /// are taken.
    ///
    /// # Errors
    ///
    /// Propagates [`ArrayError`](teg_array::ArrayError) from the solver as
    /// [`PowerError::Array`].
    pub fn track(
        &mut self,
        array: &TegArray,
        config: &Configuration,
        deltas: &[TemperatureDelta],
        max_iterations: usize,
    ) -> Result<MpptOutcome, PowerError> {
        let mpp_currents = array.mpp_currents(deltas)?;
        // Seed: the mean of the per-group MPP-current sums, halved.
        let mut group_sum_mean = 0.0;
        for group in config.groups() {
            group_sum_mean += group
                .indices()
                .map(|i| mpp_currents[i].value())
                .sum::<f64>();
        }
        group_sum_mean /= config.group_count() as f64;
        let mut current = Amps::new((group_sum_mean * 0.5).max(1e-3));

        // The wiring is fixed for the whole loop: compile it once and let
        // the solver's scratch absorb the hundreds of perturbation solves
        // without a single per-iteration allocation.
        let plan = ArrayPlan::compile(array, config, None)?;
        let mut solver = ArraySolver::new();

        let mut step = self.initial_step;
        let mut direction = 1.0_f64;
        let first = solver.solve_at(array, &plan, deltas, current)?;
        let mut last_power = first.power();
        let mut best = first;
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..max_iterations {
            iterations += 1;
            let candidate = Amps::new((current.value() + direction * step.value()).max(0.0));
            let op = solver.solve_at(array, &plan, deltas, candidate)?;
            let power = op.power();
            if power > best.power() {
                best = op;
            }
            if power > last_power {
                current = candidate;
            } else {
                // Reverse and refine.
                direction = -direction;
                step = step * self.shrink_factor;
                if step.value() < self.minimum_step.value() {
                    converged = true;
                    last_power = power;
                    break;
                }
            }
            last_power = power;
        }
        let _ = last_power;

        // Materialise the winning point (with its per-group detail) through
        // the legacy entry point; the kernel is deterministic, so solving
        // the same current again reproduces `best` exactly.
        let operating_point = array.operate_at(config, deltas, best.current())?;
        Ok(MpptOutcome {
            operating_point,
            iterations,
            converged,
        })
    }
}

impl Default for PerturbObserve {
    /// Step sizes suited to arrays sourcing a few amperes: 50 mA initial
    /// perturbation, 1 mA resolution, halving on every reversal.
    fn default() -> Self {
        Self {
            initial_step: Amps::new(0.05),
            minimum_step: Amps::new(0.001),
            shrink_factor: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_device::{TegDatasheet, TegModule};

    fn array(n: usize) -> TegArray {
        TegArray::uniform(
            TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8()),
            n,
        )
    }

    fn gradient(n: usize) -> Vec<TemperatureDelta> {
        (0..n)
            .map(|i| TemperatureDelta::new(75.0 - 40.0 * i as f64 / n as f64))
            .collect()
    }

    #[test]
    fn tracker_approaches_analytic_mpp() {
        let a = array(20);
        let deltas = gradient(20);
        let config = Configuration::uniform(20, 5).unwrap();
        let analytic = a.maximum_power_point(&config, &deltas).unwrap();
        let outcome = PerturbObserve::default()
            .track(&a, &config, &deltas, 500)
            .unwrap();
        let ratio = outcome.operating_point().power().value() / analytic.power().value();
        assert!(
            ratio > 0.97,
            "P&O reached only {ratio:.3} of the analytic MPP"
        );
        assert!(ratio <= 1.0 + 1e-9);
    }

    #[test]
    fn tracker_converges_before_iteration_budget() {
        let a = array(10);
        let deltas = gradient(10);
        let config = Configuration::uniform(10, 5).unwrap();
        let outcome = PerturbObserve::default()
            .track(&a, &config, &deltas, 10_000)
            .unwrap();
        assert!(outcome.converged());
        assert!(outcome.iterations() < 10_000);
    }

    #[test]
    fn zero_iteration_budget_returns_seed_point() {
        let a = array(10);
        let deltas = gradient(10);
        let config = Configuration::uniform(10, 2).unwrap();
        let outcome = PerturbObserve::default()
            .track(&a, &config, &deltas, 0)
            .unwrap();
        assert_eq!(outcome.iterations(), 0);
        assert!(!outcome.converged());
        assert!(outcome.operating_point().power().value() > 0.0);
    }

    #[test]
    fn parameter_validation() {
        assert!(PerturbObserve::new(Amps::new(0.0), Amps::new(0.001), 0.5).is_err());
        assert!(PerturbObserve::new(Amps::new(0.05), Amps::new(0.0), 0.5).is_err());
        assert!(PerturbObserve::new(Amps::new(0.05), Amps::new(0.1), 0.5).is_err());
        assert!(PerturbObserve::new(Amps::new(0.05), Amps::new(0.001), 1.0).is_err());
        assert!(PerturbObserve::new(Amps::new(0.05), Amps::new(0.001), 0.0).is_err());
        assert!(PerturbObserve::new(Amps::new(0.05), Amps::new(0.001), 0.5).is_ok());
    }

    #[test]
    fn dimension_mismatch_is_propagated() {
        let a = array(10);
        let deltas = gradient(9);
        let config = Configuration::uniform(10, 2).unwrap();
        let err = PerturbObserve::default()
            .track(&a, &config, &deltas, 10)
            .unwrap_err();
        assert!(matches!(err, PowerError::Array(_)));
    }

    #[test]
    fn uniform_temperatures_are_tracked_too() {
        let a = array(16);
        let deltas = vec![TemperatureDelta::new(55.0); 16];
        let config = Configuration::uniform(16, 4).unwrap();
        let analytic = a.maximum_power_point(&config, &deltas).unwrap();
        let outcome = PerturbObserve::default()
            .track(&a, &config, &deltas, 300)
            .unwrap();
        assert!(outcome.operating_point().power().value() > 0.95 * analytic.power().value());
    }
}
