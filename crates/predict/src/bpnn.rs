//! Back-propagation neural network predictor.
//!
//! A small single-hidden-layer perceptron trained with plain stochastic
//! gradient descent — the "BPNN" of the paper's Section IV.  Inputs and
//! targets are z-score normalised over the training data so the network sees
//! well-scaled values regardless of the absolute temperature level.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::dataset::SlidingWindowDataset;
use crate::error::PredictError;
use crate::predictor::Predictor;

/// Single-hidden-layer MLP with tanh activations and a linear output.
///
/// # Examples
///
/// ```
/// use teg_predict::{BackPropagationNetwork, Predictor};
///
/// # fn main() -> Result<(), teg_predict::PredictError> {
/// let series: Vec<f64> = (0..200).map(|i| 90.0 + (i as f64 * 0.1).sin()).collect();
/// let mut net = BackPropagationNetwork::new(5, 8, 42)?;
/// net.fit(&series)?;
/// let next = net.predict_next(&series)?;
/// assert!((next - 90.0).abs() < 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BackPropagationNetwork {
    window: usize,
    hidden: usize,
    epochs: usize,
    learning_rate: f64,
    seed: u64,
    state: Option<FittedNetwork>,
}

#[derive(Debug, Clone, PartialEq)]
struct FittedNetwork {
    // weights_hidden[h][i]: weight from input i to hidden unit h.
    weights_hidden: Vec<Vec<f64>>,
    bias_hidden: Vec<f64>,
    weights_output: Vec<f64>,
    bias_output: f64,
    input_mean: f64,
    input_std: f64,
    target_mean: f64,
    target_std: f64,
}

impl BackPropagationNetwork {
    /// Creates an (unfitted) network with the given window length, hidden
    /// layer size and RNG seed, using 300 epochs and a 0.01 learning rate.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::InvalidParameter`] if the window or hidden
    /// size is zero.
    pub fn new(window: usize, hidden: usize, seed: u64) -> Result<Self, PredictError> {
        Self::with_training(window, hidden, seed, 300, 0.01)
    }

    /// Creates a network with explicit training hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::InvalidParameter`] if the window, hidden size
    /// or epoch count is zero, or the learning rate is not strictly positive
    /// and finite.
    pub fn with_training(
        window: usize,
        hidden: usize,
        seed: u64,
        epochs: usize,
        learning_rate: f64,
    ) -> Result<Self, PredictError> {
        if window == 0 {
            return Err(PredictError::InvalidParameter {
                name: "window",
                value: 0.0,
            });
        }
        if hidden == 0 {
            return Err(PredictError::InvalidParameter {
                name: "hidden units",
                value: 0.0,
            });
        }
        if epochs == 0 {
            return Err(PredictError::InvalidParameter {
                name: "epochs",
                value: 0.0,
            });
        }
        if !(learning_rate > 0.0) || !learning_rate.is_finite() {
            return Err(PredictError::InvalidParameter {
                name: "learning rate",
                value: learning_rate,
            });
        }
        Ok(Self {
            window,
            hidden,
            epochs,
            learning_rate,
            seed,
            state: None,
        })
    }

    fn normalise(value: f64, mean: f64, std: f64) -> f64 {
        (value - mean) / std
    }

    fn forward(state: &FittedNetwork, inputs: &[f64]) -> (Vec<f64>, f64) {
        let hidden: Vec<f64> = state
            .weights_hidden
            .iter()
            .zip(state.bias_hidden.iter())
            .map(|(weights, &bias)| {
                let sum: f64 = weights
                    .iter()
                    .zip(inputs.iter())
                    .map(|(w, x)| w * x)
                    .sum::<f64>()
                    + bias;
                sum.tanh()
            })
            .collect();
        let output: f64 = hidden
            .iter()
            .zip(state.weights_output.iter())
            .map(|(h, w)| h * w)
            .sum::<f64>()
            + state.bias_output;
        (hidden, output)
    }
}

impl Predictor for BackPropagationNetwork {
    fn name(&self) -> &'static str {
        "BPNN"
    }

    fn window(&self) -> usize {
        self.window
    }

    // Backprop updates index several parallel weight/bias tables at once.
    #[allow(clippy::needless_range_loop)]
    fn fit(&mut self, series: &[f64]) -> Result<(), PredictError> {
        let dataset = SlidingWindowDataset::build(series, self.window, 1)?;
        let all: Vec<f64> = dataset.features().iter().flatten().copied().collect();
        let input_mean = all.iter().sum::<f64>() / all.len() as f64;
        let input_var = all
            .iter()
            .map(|x| (x - input_mean) * (x - input_mean))
            .sum::<f64>()
            / all.len() as f64;
        let input_std = input_var.sqrt().max(1e-9);
        let target_mean = dataset.targets().iter().sum::<f64>() / dataset.len() as f64;
        let target_var = dataset
            .targets()
            .iter()
            .map(|y| (y - target_mean) * (y - target_mean))
            .sum::<f64>()
            / dataset.len() as f64;
        let target_std = target_var.sqrt().max(1e-9);

        let features: Vec<Vec<f64>> = dataset
            .features()
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&x| Self::normalise(x, input_mean, input_std))
                    .collect()
            })
            .collect();
        let targets: Vec<f64> = dataset
            .targets()
            .iter()
            .map(|&y| Self::normalise(y, target_mean, target_std))
            .collect();

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let scale = 1.0 / (self.window as f64).sqrt();
        let mut state = FittedNetwork {
            weights_hidden: (0..self.hidden)
                .map(|_| {
                    (0..self.window)
                        .map(|_| rng.gen_range(-scale..scale))
                        .collect()
                })
                .collect(),
            bias_hidden: vec![0.0; self.hidden],
            weights_output: (0..self.hidden).map(|_| rng.gen_range(-0.5..0.5)).collect(),
            bias_output: 0.0,
            input_mean,
            input_std,
            target_mean,
            target_std,
        };

        let mut order: Vec<usize> = (0..features.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                let x = &features[idx];
                let y = targets[idx];
                let (hidden, output) = Self::forward(&state, x);
                let error = output - y;
                // Output layer gradients.
                for h in 0..self.hidden {
                    let grad_out = error * hidden[h];
                    // Hidden layer gradients (before updating the output
                    // weight, as standard backprop prescribes).
                    let grad_hidden =
                        error * state.weights_output[h] * (1.0 - hidden[h] * hidden[h]);
                    for i in 0..self.window {
                        state.weights_hidden[h][i] -= self.learning_rate * grad_hidden * x[i];
                    }
                    state.bias_hidden[h] -= self.learning_rate * grad_hidden;
                    state.weights_output[h] -= self.learning_rate * grad_out;
                }
                state.bias_output -= self.learning_rate * error;
            }
        }

        self.state = Some(state);
        Ok(())
    }

    fn is_fitted(&self) -> bool {
        self.state.is_some()
    }

    fn predict_next(&self, history: &[f64]) -> Result<f64, PredictError> {
        let Some(state) = &self.state else {
            return Err(PredictError::NotFitted);
        };
        if history.len() < self.window {
            return Err(PredictError::InsufficientData {
                needed: self.window,
                available: history.len(),
            });
        }
        let inputs: Vec<f64> = history[history.len() - self.window..]
            .iter()
            .map(|&x| Self::normalise(x, state.input_mean, state.input_std))
            .collect();
        let (_, output) = Self::forward(state, &inputs);
        Ok(output * state.target_std + state.target_mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;

    #[test]
    fn construction_validation() {
        assert!(BackPropagationNetwork::new(0, 4, 1).is_err());
        assert!(BackPropagationNetwork::new(4, 0, 1).is_err());
        assert!(BackPropagationNetwork::with_training(4, 4, 1, 0, 0.01).is_err());
        assert!(BackPropagationNetwork::with_training(4, 4, 1, 10, 0.0).is_err());
        assert!(BackPropagationNetwork::with_training(4, 4, 1, 10, f64::NAN).is_err());
        let net = BackPropagationNetwork::new(4, 6, 1).unwrap();
        assert_eq!(net.name(), "BPNN");
        assert_eq!(net.window(), 4);
        assert!(!net.is_fitted());
    }

    #[test]
    fn unfitted_network_refuses_to_predict() {
        let net = BackPropagationNetwork::new(3, 4, 0).unwrap();
        assert!(matches!(
            net.predict_next(&[1.0, 2.0, 3.0]),
            Err(PredictError::NotFitted)
        ));
    }

    #[test]
    fn learns_a_constant_series() {
        let series = vec![90.0; 60];
        let mut net = BackPropagationNetwork::new(4, 6, 3).unwrap();
        net.fit(&series).unwrap();
        let next = net.predict_next(&series).unwrap();
        assert!((next - 90.0).abs() < 1.0, "predicted {next}");
    }

    #[test]
    fn learns_a_slow_oscillation_reasonably_well() {
        let series: Vec<f64> = (0..500)
            .map(|i| 92.0 + 3.0 * (i as f64 * 0.05).sin())
            .collect();
        let mut net = BackPropagationNetwork::new(5, 8, 7).unwrap();
        net.fit(&series[..400]).unwrap();
        let mut actual = Vec::new();
        let mut predicted = Vec::new();
        for t in 400..499 {
            predicted.push(net.predict_next(&series[..t]).unwrap());
            actual.push(series[t]);
        }
        let err = mape(&actual, &predicted).unwrap();
        assert!(err < 3.0, "BPNN MAPE {err}% is too large");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let series: Vec<f64> = (0..120).map(|i| 85.0 + 0.02 * i as f64).collect();
        let mut a = BackPropagationNetwork::new(4, 6, 9).unwrap();
        let mut b = BackPropagationNetwork::new(4, 6, 9).unwrap();
        a.fit(&series).unwrap();
        b.fit(&series).unwrap();
        assert_eq!(
            a.predict_next(&series).unwrap(),
            b.predict_next(&series).unwrap()
        );
        let mut c = BackPropagationNetwork::new(4, 6, 10).unwrap();
        c.fit(&series).unwrap();
        assert_ne!(
            a.predict_next(&series).unwrap(),
            c.predict_next(&series).unwrap()
        );
    }

    #[test]
    fn short_histories_are_rejected_after_fitting() {
        let series: Vec<f64> = (0..60).map(f64::from).collect();
        let mut net = BackPropagationNetwork::new(5, 4, 0).unwrap();
        net.fit(&series).unwrap();
        assert!(matches!(
            net.predict_next(&[1.0, 2.0]),
            Err(PredictError::InsufficientData { .. })
        ));
    }
}
