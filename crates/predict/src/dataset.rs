//! Sliding-window autoregressive datasets.
//!
//! All three predictors are trained the same way the paper trains them: the
//! last `w` samples of the (per-module) temperature series are the features
//! and the sample `h` steps ahead is the target.

use crate::error::PredictError;

/// An autoregressive design matrix built from a scalar series.
///
/// # Examples
///
/// ```
/// use teg_predict::SlidingWindowDataset;
///
/// # fn main() -> Result<(), teg_predict::PredictError> {
/// let series = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
/// let ds = SlidingWindowDataset::build(&series, 3, 1)?;
/// assert_eq!(ds.len(), 3);
/// // First sample: features [1,2,3] → target 4.
/// assert_eq!(ds.features()[0], vec![1.0, 2.0, 3.0]);
/// assert_eq!(ds.targets()[0], 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingWindowDataset {
    features: Vec<Vec<f64>>,
    targets: Vec<f64>,
    window: usize,
    horizon: usize,
}

impl SlidingWindowDataset {
    /// Builds the dataset from a series with the given window length and
    /// prediction horizon (both in samples, horizon ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::InvalidParameter`] if the window or horizon is
    /// zero, and [`PredictError::InsufficientData`] if the series is too
    /// short to produce at least one sample.
    pub fn build(series: &[f64], window: usize, horizon: usize) -> Result<Self, PredictError> {
        if window == 0 {
            return Err(PredictError::InvalidParameter {
                name: "window",
                value: 0.0,
            });
        }
        if horizon == 0 {
            return Err(PredictError::InvalidParameter {
                name: "horizon",
                value: 0.0,
            });
        }
        let needed = window + horizon;
        if series.len() < needed {
            return Err(PredictError::InsufficientData {
                needed,
                available: series.len(),
            });
        }
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for start in 0..=(series.len() - needed) {
            features.push(series[start..start + window].to_vec());
            targets.push(series[start + window + horizon - 1]);
        }
        Ok(Self {
            features,
            targets,
            window,
            horizon,
        })
    }

    /// Number of (feature, target) samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Returns `true` when the dataset holds no samples (never the case for a
    /// successfully built dataset).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The feature rows (each of length `window`).
    #[must_use]
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// The prediction targets.
    #[must_use]
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Window length used to build the dataset.
    #[must_use]
    pub const fn window(&self) -> usize {
        self.window
    }

    /// Prediction horizon used to build the dataset.
    #[must_use]
    pub const fn horizon(&self) -> usize {
        self.horizon
    }

    /// The feature rows augmented with a trailing constant `1.0` (bias
    /// column), as consumed by MLR's normal equations.
    #[must_use]
    pub fn features_with_bias(&self) -> Vec<Vec<f64>> {
        self.features
            .iter()
            .map(|row| {
                let mut r = row.clone();
                r.push(1.0);
                r
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn builds_expected_samples_for_horizon_two() {
        let series = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0];
        let ds = SlidingWindowDataset::build(&series, 2, 2).unwrap();
        // windows: [10,11]→13, [11,12]→14, [12,13]→15
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.features()[0], vec![10.0, 11.0]);
        assert_eq!(ds.targets()[0], 13.0);
        assert_eq!(ds.features()[2], vec![12.0, 13.0]);
        assert_eq!(ds.targets()[2], 15.0);
        assert_eq!(ds.window(), 2);
        assert_eq!(ds.horizon(), 2);
        assert!(!ds.is_empty());
    }

    #[test]
    fn rejects_invalid_parameters() {
        let series = [1.0; 10];
        assert!(SlidingWindowDataset::build(&series, 0, 1).is_err());
        assert!(SlidingWindowDataset::build(&series, 3, 0).is_err());
        assert!(matches!(
            SlidingWindowDataset::build(&series[..3], 3, 1).unwrap_err(),
            PredictError::InsufficientData {
                needed: 4,
                available: 3
            }
        ));
    }

    #[test]
    fn exactly_enough_data_yields_one_sample() {
        let series = [1.0, 2.0, 3.0, 4.0];
        let ds = SlidingWindowDataset::build(&series, 3, 1).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.targets(), &[4.0]);
    }

    #[test]
    fn bias_column_is_appended() {
        let series = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ds = SlidingWindowDataset::build(&series, 2, 1).unwrap();
        for row in ds.features_with_bias() {
            assert_eq!(row.len(), 3);
            assert_eq!(*row.last().unwrap(), 1.0);
        }
    }

    proptest! {
        /// Every feature window is a contiguous slice of the series and every
        /// target is the sample `horizon` steps after the window.
        #[test]
        fn prop_samples_are_consistent(
            series in proptest::collection::vec(-100.0_f64..100.0, 5..60),
            window in 1usize..6,
            horizon in 1usize..4,
        ) {
            prop_assume!(series.len() >= window + horizon);
            let ds = SlidingWindowDataset::build(&series, window, horizon).unwrap();
            prop_assert_eq!(ds.len(), series.len() - window - horizon + 1);
            for (i, (feat, &target)) in ds.features().iter().zip(ds.targets()).enumerate() {
                prop_assert_eq!(feat.as_slice(), &series[i..i + window]);
                prop_assert_eq!(target, series[i + window + horizon - 1]);
            }
        }
    }
}
