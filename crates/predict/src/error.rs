//! Error type for the prediction substrate.

use std::error::Error;
use std::fmt;

/// Errors produced while building datasets, fitting predictors or
/// forecasting.
///
/// # Examples
///
/// ```
/// use teg_predict::PredictError;
///
/// let err = PredictError::InsufficientData { needed: 10, available: 3 };
/// assert!(err.to_string().contains("10"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PredictError {
    /// The training series is too short for the requested window/horizon.
    InsufficientData {
        /// Minimum number of samples required.
        needed: usize,
        /// Number of samples actually available.
        available: usize,
    },
    /// A model hyper-parameter was invalid (zero window, non-positive
    /// learning rate, …).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The normal-equation system was singular and could not be solved.
    SingularSystem,
    /// Prediction was requested before the model was fitted.
    NotFitted,
    /// Vector dimensions did not match (e.g. MAPE over different lengths).
    DimensionMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InsufficientData { needed, available } => {
                write!(
                    f,
                    "training data too short: need {needed} samples, have {available}"
                )
            }
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter {name}")
            }
            Self::SingularSystem => write!(f, "normal equations are singular"),
            Self::NotFitted => write!(f, "predictor has not been fitted yet"),
            Self::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
        }
    }
}

impl Error for PredictError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        assert!(PredictError::InsufficientData {
            needed: 7,
            available: 2
        }
        .to_string()
        .contains("7"));
        assert!(PredictError::InvalidParameter {
            name: "window",
            value: 0.0
        }
        .to_string()
        .contains("window"));
        assert!(PredictError::SingularSystem
            .to_string()
            .contains("singular"));
        assert!(PredictError::NotFitted
            .to_string()
            .contains("not been fitted"));
        assert!(PredictError::DimensionMismatch { left: 3, right: 4 }
            .to_string()
            .contains("3"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<PredictError>();
    }
}
