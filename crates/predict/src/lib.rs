//! Time-series prediction substrate for DNOR.
//!
//! Section IV of the paper compares three prediction methods for forecasting
//! the radiator temperature distribution a few seconds ahead — multiple
//! linear regression (MLR), a back-propagation neural network (BPNN) and
//! support vector regression (SVR) — and selects MLR for the best accuracy
//! and lowest runtime.  DNOR then uses the chosen predictor to decide whether
//! a freshly computed configuration is worth the switching overhead.
//!
//! This crate implements all three predictors from scratch (no external ML
//! dependencies) on a shared [`Predictor`] trait, together with:
//!
//! * [`SlidingWindowDataset`] — the autoregressive design matrix both the
//!   paper and this suite train on (predict the next sample from the last
//!   `w` samples),
//! * [`linalg`] — the small dense linear-algebra kernel (normal equations,
//!   Gaussian elimination) MLR needs,
//! * [`metrics`] — MAPE (the paper's Eq. 3), RMSE and MAE.
//!
//! # Examples
//!
//! ```
//! use teg_predict::{MultipleLinearRegression, Predictor};
//!
//! # fn main() -> Result<(), teg_predict::PredictError> {
//! // A slowly rising temperature signal.
//! let series: Vec<f64> = (0..120).map(|i| 80.0 + 0.05 * i as f64).collect();
//! let mut mlr = MultipleLinearRegression::new(5)?;
//! mlr.fit(&series)?;
//! let forecast = mlr.forecast(&series, 2)?;
//! assert_eq!(forecast.len(), 2);
//! // The forecast continues the trend.
//! assert!(forecast[0] > series[series.len() - 1] - 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)`-style validation is used deliberately throughout: unlike
// `x <= 0.0` it also rejects NaN parameters.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

mod bpnn;
mod dataset;
mod error;
pub mod linalg;
pub mod metrics;
mod mlr;
mod predictor;
mod svr;

pub use bpnn::BackPropagationNetwork;
pub use dataset::SlidingWindowDataset;
pub use error::PredictError;
pub use mlr::MultipleLinearRegression;
pub use predictor::Predictor;
pub use svr::SupportVectorRegression;
