//! Minimal dense linear algebra used by the MLR predictor.
//!
//! Only the handful of operations the normal equations need are provided:
//! building `XᵀX` / `Xᵀy` and solving a small symmetric positive-definite
//! system by Gaussian elimination with partial pivoting.  The systems involved
//! have the size of the regression window (a handful of unknowns), so no
//! attention is paid to cache blocking or SIMD.

use crate::error::PredictError;

/// Solves the linear system `A·x = b` by Gaussian elimination with partial
/// pivoting, consuming the inputs.
///
/// # Errors
///
/// Returns [`PredictError::DimensionMismatch`] if `A` is not square or its
/// size disagrees with `b`, and [`PredictError::SingularSystem`] if a pivot
/// collapses to (numerical) zero.
///
/// # Examples
///
/// ```
/// use teg_predict::linalg::solve;
///
/// # fn main() -> Result<(), teg_predict::PredictError> {
/// let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
/// let b = vec![3.0, 5.0];
/// let x = solve(a, b)?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
// Gaussian elimination over parallel row/column tables reads clearest with
// explicit indices.
#[allow(clippy::needless_range_loop)]
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, PredictError> {
    let n = a.len();
    if b.len() != n {
        return Err(PredictError::DimensionMismatch {
            left: n,
            right: b.len(),
        });
    }
    for (i, row) in a.iter().enumerate() {
        if row.len() != n {
            return Err(PredictError::DimensionMismatch {
                left: n,
                right: a[i].len(),
            });
        }
    }

    for col in 0..n {
        // Partial pivoting: bring the largest remaining entry to the diagonal.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if a[pivot_row][col].abs() < 1e-12 {
            return Err(PredictError::SingularSystem);
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        let pivot = a[col][col];
        for row in (col + 1)..n {
            let factor = a[row][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in (row + 1)..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

/// Computes `XᵀX + λI` for a design matrix stored row-wise.
///
/// The ridge term `λ` keeps the normal equations well conditioned when the
/// window columns are nearly collinear (as they are for a slowly varying
/// temperature signal).
#[must_use]
pub fn gram_matrix(design: &[Vec<f64>], ridge: f64) -> Vec<Vec<f64>> {
    let cols = design.first().map_or(0, Vec::len);
    let mut out = vec![vec![0.0; cols]; cols];
    for row in design {
        for i in 0..cols {
            for j in 0..cols {
                out[i][j] += row[i] * row[j];
            }
        }
    }
    for (i, row) in out.iter_mut().enumerate() {
        row[i] += ridge;
    }
    out
}

/// Computes `Xᵀy` for a design matrix stored row-wise.
///
/// # Panics
///
/// Panics if the number of design rows differs from the number of targets.
#[must_use]
pub fn design_times_targets(design: &[Vec<f64>], targets: &[f64]) -> Vec<f64> {
    assert_eq!(
        design.len(),
        targets.len(),
        "design and target row counts differ"
    );
    let cols = design.first().map_or(0, Vec::len);
    let mut out = vec![0.0; cols];
    for (row, &y) in design.iter().zip(targets.iter()) {
        for (i, &x) in row.iter().enumerate() {
            out[i] += x * y;
        }
    }
    out
}

/// Dot product of two equally long slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product of unequal lengths");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_identity_system() {
        let a = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let b = vec![4.0, -2.0, 7.5];
        let x = solve(a, b.clone()).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        // The first pivot is zero, forcing a row swap.
        let a = vec![vec![0.0, 1.0], vec![2.0, 1.0]];
        let b = vec![3.0, 7.0];
        let x = solve(a, b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_singular_and_mismatched_systems() {
        let singular = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert_eq!(
            solve(singular, vec![1.0, 2.0]).unwrap_err(),
            PredictError::SingularSystem
        );
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert!(matches!(
            solve(a, vec![1.0]).unwrap_err(),
            PredictError::DimensionMismatch { .. }
        ));
        let ragged = vec![vec![1.0, 0.0], vec![0.0]];
        assert!(matches!(
            solve(ragged, vec![1.0, 2.0]).unwrap_err(),
            PredictError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn gram_matrix_is_symmetric_with_ridge_on_diagonal() {
        let design = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let g = gram_matrix(&design, 0.5);
        assert_eq!(g.len(), 2);
        assert!((g[0][1] - g[1][0]).abs() < 1e-12);
        // Diagonal entries include the ridge.
        assert!((g[0][0] - (1.0 + 9.0 + 25.0 + 0.5)).abs() < 1e-12);
        assert!((g[1][1] - (4.0 + 16.0 + 36.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn design_times_targets_matches_hand_computation() {
        let design = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let y = vec![10.0, 20.0];
        let v = design_times_targets(&design, &y);
        assert_eq!(v, vec![1.0 * 10.0 + 3.0 * 20.0, 2.0 * 10.0 + 4.0 * 20.0]);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    proptest! {
        /// Solving `A·x = A·x0` recovers `x0` for well conditioned diagonally
        /// dominant matrices.
        #[test]
        fn prop_solve_round_trips(
            x0 in proptest::collection::vec(-10.0_f64..10.0, 1..6),
            seeds in proptest::collection::vec(-1.0_f64..1.0, 36),
        ) {
            let n = x0.len();
            // Build a diagonally dominant matrix from the seed values.
            let mut a = vec![vec![0.0; n]; n];
            for i in 0..n {
                for j in 0..n {
                    a[i][j] = seeds[(i * 6 + j) % seeds.len()];
                }
                a[i][i] = 10.0 + a[i][i].abs();
            }
            let b: Vec<f64> = (0..n).map(|i| dot(&a[i], &x0)).collect();
            let x = solve(a, b).unwrap();
            for (got, want) in x.iter().zip(x0.iter()) {
                prop_assert!((got - want).abs() < 1e-6);
            }
        }
    }
}
