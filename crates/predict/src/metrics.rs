//! Forecast-accuracy metrics.
//!
//! The paper scores its predictors with the mean absolute percentage error
//! (its Eq. 3); RMSE and MAE are provided as well because they remain
//! meaningful when actual values approach zero.

use crate::error::PredictError;

fn check_pair(actual: &[f64], forecast: &[f64]) -> Result<(), PredictError> {
    if actual.len() != forecast.len() {
        return Err(PredictError::DimensionMismatch {
            left: actual.len(),
            right: forecast.len(),
        });
    }
    if actual.is_empty() {
        return Err(PredictError::InsufficientData {
            needed: 1,
            available: 0,
        });
    }
    Ok(())
}

/// Mean absolute percentage error in percent (the paper's Eq. 3):
/// `M = (100/n)·Σ |A_t − F_t| / |A_t|`.
///
/// # Errors
///
/// Returns [`PredictError::DimensionMismatch`] for unequal lengths,
/// [`PredictError::InsufficientData`] for empty inputs and
/// [`PredictError::InvalidParameter`] if any actual value is zero (the metric
/// is undefined there).
///
/// # Examples
///
/// ```
/// use teg_predict::metrics::mape;
///
/// # fn main() -> Result<(), teg_predict::PredictError> {
/// let err = mape(&[100.0, 200.0], &[99.0, 202.0])?;
/// assert!((err - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn mape(actual: &[f64], forecast: &[f64]) -> Result<f64, PredictError> {
    check_pair(actual, forecast)?;
    let mut sum = 0.0;
    for (&a, &f) in actual.iter().zip(forecast.iter()) {
        if a == 0.0 {
            return Err(PredictError::InvalidParameter {
                name: "actual value",
                value: 0.0,
            });
        }
        sum += ((a - f) / a).abs();
    }
    Ok(100.0 * sum / actual.len() as f64)
}

/// Root-mean-square error.
///
/// # Errors
///
/// Returns [`PredictError::DimensionMismatch`] for unequal lengths and
/// [`PredictError::InsufficientData`] for empty inputs.
///
/// # Examples
///
/// ```
/// use teg_predict::metrics::rmse;
///
/// # fn main() -> Result<(), teg_predict::PredictError> {
/// assert!((rmse(&[1.0, 2.0], &[1.0, 4.0])? - (2.0_f64).sqrt()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn rmse(actual: &[f64], forecast: &[f64]) -> Result<f64, PredictError> {
    check_pair(actual, forecast)?;
    let sum: f64 = actual
        .iter()
        .zip(forecast.iter())
        .map(|(&a, &f)| (a - f) * (a - f))
        .sum();
    Ok((sum / actual.len() as f64).sqrt())
}

/// Mean absolute error.
///
/// # Errors
///
/// Returns [`PredictError::DimensionMismatch`] for unequal lengths and
/// [`PredictError::InsufficientData`] for empty inputs.
///
/// # Examples
///
/// ```
/// use teg_predict::metrics::mae;
///
/// # fn main() -> Result<(), teg_predict::PredictError> {
/// assert_eq!(mae(&[1.0, 2.0], &[2.0, 0.0])?, 1.5);
/// # Ok(())
/// # }
/// ```
pub fn mae(actual: &[f64], forecast: &[f64]) -> Result<f64, PredictError> {
    check_pair(actual, forecast)?;
    let sum: f64 = actual
        .iter()
        .zip(forecast.iter())
        .map(|(&a, &f)| (a - f).abs())
        .sum();
    Ok(sum / actual.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_forecasts_have_zero_error() {
        let a = [95.0, 96.0, 97.0];
        assert_eq!(mape(&a, &a).unwrap(), 0.0);
        assert_eq!(rmse(&a, &a).unwrap(), 0.0);
        assert_eq!(mae(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn hand_computed_values() {
        let a = [100.0, 50.0];
        let f = [90.0, 55.0];
        assert!((mape(&a, &f).unwrap() - 10.0).abs() < 1e-12);
        assert!((mae(&a, &f).unwrap() - 7.5).abs() < 1e-12);
        assert!((rmse(&a, &f).unwrap() - ((100.0 + 25.0) / 2.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn dimension_and_emptiness_checks() {
        assert!(matches!(
            mape(&[1.0], &[1.0, 2.0]),
            Err(PredictError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            rmse(&[], &[]),
            Err(PredictError::InsufficientData { .. })
        ));
        assert!(matches!(
            mae(&[], &[]),
            Err(PredictError::InsufficientData { .. })
        ));
    }

    #[test]
    fn mape_rejects_zero_actuals() {
        assert!(matches!(
            mape(&[0.0, 1.0], &[1.0, 1.0]),
            Err(PredictError::InvalidParameter { .. })
        ));
    }

    proptest! {
        /// All three metrics are non-negative and zero only for perfect
        /// forecasts (up to floating-point noise).
        #[test]
        fn prop_metrics_non_negative(
            actual in proptest::collection::vec(1.0_f64..200.0, 1..30),
            noise in proptest::collection::vec(-5.0_f64..5.0, 1..30),
        ) {
            let n = actual.len().min(noise.len());
            let actual = &actual[..n];
            let forecast: Vec<f64> =
                actual.iter().zip(noise.iter()).map(|(a, e)| a + e).collect();
            prop_assert!(mape(actual, &forecast).unwrap() >= 0.0);
            prop_assert!(rmse(actual, &forecast).unwrap() >= 0.0);
            prop_assert!(mae(actual, &forecast).unwrap() >= 0.0);
            // RMSE dominates MAE by the power-mean inequality.
            prop_assert!(
                rmse(actual, &forecast).unwrap() + 1e-12 >= mae(actual, &forecast).unwrap()
            );
        }
    }
}
