//! Multiple linear regression (the predictor the paper selects).

use crate::dataset::SlidingWindowDataset;
use crate::error::PredictError;
use crate::linalg::{design_times_targets, dot, gram_matrix, solve};
use crate::predictor::Predictor;

/// Autoregressive multiple linear regression fitted by ridge-regularised
/// normal equations.
///
/// The model predicts the next sample as an affine combination of the last
/// `window` samples:
///
/// ```text
/// ŷ_{t+1} = θ_1·y_{t−w+1} + … + θ_w·y_t + θ_0
/// ```
///
/// A tiny ridge term keeps the system well conditioned when the window
/// columns are nearly collinear, which is always the case for the slowly
/// varying coolant temperature.
///
/// # Examples
///
/// ```
/// use teg_predict::{MultipleLinearRegression, Predictor};
///
/// # fn main() -> Result<(), teg_predict::PredictError> {
/// // A noiseless linear ramp is forecast almost exactly.
/// let series: Vec<f64> = (0..50).map(|i| 2.0 * i as f64).collect();
/// let mut mlr = MultipleLinearRegression::new(3)?;
/// mlr.fit(&series)?;
/// let next = mlr.predict_next(&series)?;
/// assert!((next - 100.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultipleLinearRegression {
    window: usize,
    ridge: f64,
    coefficients: Option<Vec<f64>>,
}

impl MultipleLinearRegression {
    /// Creates an (unfitted) model with the given window length and the
    /// default ridge regularisation of `1e-6`.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::InvalidParameter`] if the window is zero.
    pub fn new(window: usize) -> Result<Self, PredictError> {
        Self::with_ridge(window, 1e-6)
    }

    /// Creates a model with an explicit ridge term.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::InvalidParameter`] if the window is zero or
    /// the ridge term is negative/non-finite.
    pub fn with_ridge(window: usize, ridge: f64) -> Result<Self, PredictError> {
        if window == 0 {
            return Err(PredictError::InvalidParameter {
                name: "window",
                value: 0.0,
            });
        }
        if !ridge.is_finite() || ridge < 0.0 {
            return Err(PredictError::InvalidParameter {
                name: "ridge",
                value: ridge,
            });
        }
        Ok(Self {
            window,
            ridge,
            coefficients: None,
        })
    }

    /// The fitted coefficients (window weights followed by the intercept), if
    /// the model has been fitted.
    #[must_use]
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.coefficients.as_deref()
    }
}

impl Predictor for MultipleLinearRegression {
    fn name(&self) -> &'static str {
        "MLR"
    }

    fn window(&self) -> usize {
        self.window
    }

    fn fit(&mut self, series: &[f64]) -> Result<(), PredictError> {
        let dataset = SlidingWindowDataset::build(series, self.window, 1)?;
        let design = dataset.features_with_bias();
        let gram = gram_matrix(&design, self.ridge);
        let rhs = design_times_targets(&design, dataset.targets());
        let coefficients = solve(gram, rhs)?;
        self.coefficients = Some(coefficients);
        Ok(())
    }

    fn is_fitted(&self) -> bool {
        self.coefficients.is_some()
    }

    fn predict_next(&self, history: &[f64]) -> Result<f64, PredictError> {
        let Some(coefficients) = &self.coefficients else {
            return Err(PredictError::NotFitted);
        };
        if history.len() < self.window {
            return Err(PredictError::InsufficientData {
                needed: self.window,
                available: history.len(),
            });
        }
        let tail = &history[history.len() - self.window..];
        let weights = &coefficients[..self.window];
        let intercept = coefficients[self.window];
        Ok(dot(tail, weights) + intercept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;

    #[test]
    fn construction_validation() {
        assert!(MultipleLinearRegression::new(0).is_err());
        assert!(MultipleLinearRegression::with_ridge(3, -1.0).is_err());
        assert!(MultipleLinearRegression::with_ridge(3, f64::NAN).is_err());
        let m = MultipleLinearRegression::new(3).unwrap();
        assert_eq!(m.window(), 3);
        assert_eq!(m.name(), "MLR");
        assert!(!m.is_fitted());
        assert!(m.coefficients().is_none());
    }

    #[test]
    fn unfitted_model_refuses_to_predict() {
        let m = MultipleLinearRegression::new(3).unwrap();
        assert!(matches!(
            m.predict_next(&[1.0, 2.0, 3.0]),
            Err(PredictError::NotFitted)
        ));
    }

    #[test]
    fn fits_a_linear_ramp_exactly() {
        let series: Vec<f64> = (0..40).map(|i| 5.0 + 0.25 * i as f64).collect();
        let mut m = MultipleLinearRegression::new(4).unwrap();
        m.fit(&series).unwrap();
        assert!(m.is_fitted());
        let next = m.predict_next(&series).unwrap();
        assert!((next - (5.0 + 0.25 * 40.0)).abs() < 1e-6);
        // Multi-step forecasts keep following the ramp.
        let forecast = m.forecast(&series, 5).unwrap();
        for (k, value) in forecast.iter().enumerate() {
            let expected = 5.0 + 0.25 * (40 + k) as f64;
            assert!(
                (value - expected).abs() < 1e-4,
                "step {k}: {value} vs {expected}"
            );
        }
    }

    #[test]
    fn fits_a_constant_series() {
        let series = vec![91.5; 30];
        let mut m = MultipleLinearRegression::new(5).unwrap();
        m.fit(&series).unwrap();
        let next = m.predict_next(&series).unwrap();
        assert!((next - 91.5).abs() < 1e-6);
    }

    #[test]
    fn tracks_a_slow_sinusoid_with_small_error() {
        // Representative of thermostat-regulated coolant temperature
        // oscillation; the 1-step MAPE should be a fraction of a percent, in
        // line with the paper's Fig. 5.
        let series: Vec<f64> = (0..400)
            .map(|i| 92.0 + 3.0 * (i as f64 * 0.05).sin())
            .collect();
        let mut m = MultipleLinearRegression::new(5).unwrap();
        m.fit(&series[..300]).unwrap();
        let mut actual = Vec::new();
        let mut predicted = Vec::new();
        for t in 300..399 {
            predicted.push(m.predict_next(&series[..t]).unwrap());
            actual.push(series[t]);
        }
        let err = mape(&actual, &predicted).unwrap();
        assert!(err < 0.5, "MLR MAPE {err}% is too large");
    }

    #[test]
    fn too_short_series_is_rejected() {
        let mut m = MultipleLinearRegression::new(5).unwrap();
        assert!(matches!(
            m.fit(&[1.0, 2.0, 3.0]),
            Err(PredictError::InsufficientData { .. })
        ));
        // Fit on something valid, then predict with a short window.
        let series: Vec<f64> = (0..20).map(f64::from).collect();
        m.fit(&series).unwrap();
        assert!(matches!(
            m.predict_next(&[1.0, 2.0]),
            Err(PredictError::InsufficientData { .. })
        ));
    }

    #[test]
    fn coefficients_have_window_plus_one_entries() {
        let series: Vec<f64> = (0..30).map(|i| (i as f64).sqrt()).collect();
        let mut m = MultipleLinearRegression::new(6).unwrap();
        m.fit(&series).unwrap();
        assert_eq!(m.coefficients().unwrap().len(), 7);
    }
}
