//! The common interface all three prediction methods implement.

use crate::error::PredictError;

/// A single-series forecaster: fit on a history, then forecast the next few
/// samples from the most recent window.
///
/// DNOR holds one fitted predictor per signal (the coolant inlet temperature
/// is sufficient because the whole distribution is derived from it, but the
/// suite also supports per-module predictors as the paper describes).
///
/// # Examples
///
/// ```
/// use teg_predict::{MultipleLinearRegression, Predictor};
///
/// # fn main() -> Result<(), teg_predict::PredictError> {
/// let series: Vec<f64> = (0..60).map(|i| 90.0 + (i as f64 * 0.1).sin()).collect();
/// let mut model = MultipleLinearRegression::new(4)?;
/// model.fit(&series)?;
/// assert_eq!(model.forecast(&series, 3)?.len(), 3);
/// # Ok(())
/// # }
/// ```
pub trait Predictor {
    /// Human-readable name of the method (used in reports and Fig. 5).
    fn name(&self) -> &'static str;

    /// Length of the autoregressive window the predictor consumes.
    fn window(&self) -> usize;

    /// Fits the predictor to a training series.
    ///
    /// # Errors
    ///
    /// Implementations return [`PredictError::InsufficientData`] when the
    /// series cannot fill a single training window and may return other
    /// [`PredictError`] variants for numerically degenerate inputs.
    fn fit(&mut self, series: &[f64]) -> Result<(), PredictError>;

    /// Returns `true` once the predictor has been fitted.
    fn is_fitted(&self) -> bool;

    /// Predicts the sample one step after the given history window.
    ///
    /// The slice must contain at least [`Predictor::window`] samples; only
    /// the trailing window is used.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::NotFitted`] before [`Predictor::fit`] and
    /// [`PredictError::InsufficientData`] for a too-short history.
    fn predict_next(&self, history: &[f64]) -> Result<f64, PredictError>;

    /// Iteratively forecasts `horizon` future samples by feeding each
    /// prediction back as input (the standard multi-step strategy for
    /// autoregressive models).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Predictor::predict_next`]; a zero horizon is
    /// rejected as [`PredictError::InvalidParameter`].
    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>, PredictError> {
        if horizon == 0 {
            return Err(PredictError::InvalidParameter {
                name: "horizon",
                value: 0.0,
            });
        }
        let window = self.window();
        if history.len() < window {
            return Err(PredictError::InsufficientData {
                needed: window,
                available: history.len(),
            });
        }
        let mut rolling: Vec<f64> = history[history.len() - window..].to_vec();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let next = self.predict_next(&rolling)?;
            out.push(next);
            rolling.remove(0);
            rolling.push(next);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial persistence predictor used to exercise the trait's default
    /// `forecast` implementation in isolation.
    struct Persistence {
        fitted: bool,
    }

    impl Predictor for Persistence {
        fn name(&self) -> &'static str {
            "persistence"
        }

        fn window(&self) -> usize {
            2
        }

        fn fit(&mut self, series: &[f64]) -> Result<(), PredictError> {
            if series.len() < 2 {
                return Err(PredictError::InsufficientData {
                    needed: 2,
                    available: series.len(),
                });
            }
            self.fitted = true;
            Ok(())
        }

        fn is_fitted(&self) -> bool {
            self.fitted
        }

        fn predict_next(&self, history: &[f64]) -> Result<f64, PredictError> {
            if !self.fitted {
                return Err(PredictError::NotFitted);
            }
            if history.len() < 2 {
                return Err(PredictError::InsufficientData {
                    needed: 2,
                    available: history.len(),
                });
            }
            Ok(history[history.len() - 1])
        }
    }

    #[test]
    fn forecast_repeats_last_value_for_persistence() {
        let mut p = Persistence { fitted: false };
        p.fit(&[1.0, 2.0, 3.0]).unwrap();
        let f = p.forecast(&[1.0, 2.0, 3.0], 4).unwrap();
        assert_eq!(f, vec![3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn forecast_validates_inputs() {
        let mut p = Persistence { fitted: false };
        assert!(matches!(
            p.forecast(&[1.0, 2.0], 1),
            Err(PredictError::NotFitted)
        ));
        p.fit(&[1.0, 2.0]).unwrap();
        assert!(matches!(
            p.forecast(&[1.0, 2.0], 0),
            Err(PredictError::InvalidParameter { .. })
        ));
        assert!(matches!(
            p.forecast(&[1.0], 2),
            Err(PredictError::InsufficientData { .. })
        ));
    }
}
