//! Linear support vector regression predictor.
//!
//! An ε-insensitive linear SVR trained by stochastic sub-gradient descent on
//! the primal objective — the "SVR" of the paper's Section IV.  Inputs and
//! targets are z-score normalised over the training data.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::dataset::SlidingWindowDataset;
use crate::error::PredictError;
use crate::linalg::dot;
use crate::predictor::Predictor;

/// Linear ε-SVR on the autoregressive window.
///
/// # Examples
///
/// ```
/// use teg_predict::{Predictor, SupportVectorRegression};
///
/// # fn main() -> Result<(), teg_predict::PredictError> {
/// let series: Vec<f64> = (0..150).map(|i| 88.0 + 0.03 * i as f64).collect();
/// let mut svr = SupportVectorRegression::new(5, 11)?;
/// svr.fit(&series)?;
/// let next = svr.predict_next(&series)?;
/// assert!((next - 92.5).abs() < 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SupportVectorRegression {
    window: usize,
    epsilon: f64,
    regularisation: f64,
    epochs: usize,
    learning_rate: f64,
    seed: u64,
    state: Option<FittedSvr>,
}

#[derive(Debug, Clone, PartialEq)]
struct FittedSvr {
    weights: Vec<f64>,
    bias: f64,
    input_mean: f64,
    input_std: f64,
    target_mean: f64,
    target_std: f64,
}

impl SupportVectorRegression {
    /// Creates an (unfitted) SVR with the given window and seed, using the
    /// default tube width ε = 0.01 (in normalised units), weak L2
    /// regularisation, 300 epochs and a 0.01 learning rate.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::InvalidParameter`] if the window is zero.
    pub fn new(window: usize, seed: u64) -> Result<Self, PredictError> {
        Self::with_hyperparameters(window, seed, 0.01, 1e-4, 300, 0.01)
    }

    /// Creates an SVR with explicit hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::InvalidParameter`] if the window or epoch
    /// count is zero, ε or the regularisation is negative, or the learning
    /// rate is not strictly positive and finite.
    pub fn with_hyperparameters(
        window: usize,
        seed: u64,
        epsilon: f64,
        regularisation: f64,
        epochs: usize,
        learning_rate: f64,
    ) -> Result<Self, PredictError> {
        if window == 0 {
            return Err(PredictError::InvalidParameter {
                name: "window",
                value: 0.0,
            });
        }
        if epochs == 0 {
            return Err(PredictError::InvalidParameter {
                name: "epochs",
                value: 0.0,
            });
        }
        if !(epsilon >= 0.0) || !epsilon.is_finite() {
            return Err(PredictError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
            });
        }
        if !(regularisation >= 0.0) || !regularisation.is_finite() {
            return Err(PredictError::InvalidParameter {
                name: "regularisation",
                value: regularisation,
            });
        }
        if !(learning_rate > 0.0) || !learning_rate.is_finite() {
            return Err(PredictError::InvalidParameter {
                name: "learning rate",
                value: learning_rate,
            });
        }
        Ok(Self {
            window,
            epsilon,
            regularisation,
            epochs,
            learning_rate,
            seed,
            state: None,
        })
    }
}

impl Predictor for SupportVectorRegression {
    fn name(&self) -> &'static str {
        "SVR"
    }

    fn window(&self) -> usize {
        self.window
    }

    fn fit(&mut self, series: &[f64]) -> Result<(), PredictError> {
        let dataset = SlidingWindowDataset::build(series, self.window, 1)?;
        let all: Vec<f64> = dataset.features().iter().flatten().copied().collect();
        let input_mean = all.iter().sum::<f64>() / all.len() as f64;
        let input_std = (all.iter().map(|x| (x - input_mean).powi(2)).sum::<f64>()
            / all.len() as f64)
            .sqrt()
            .max(1e-9);
        let target_mean = dataset.targets().iter().sum::<f64>() / dataset.len() as f64;
        let target_std = (dataset
            .targets()
            .iter()
            .map(|y| (y - target_mean).powi(2))
            .sum::<f64>()
            / dataset.len() as f64)
            .sqrt()
            .max(1e-9);

        let features: Vec<Vec<f64>> = dataset
            .features()
            .iter()
            .map(|row| row.iter().map(|&x| (x - input_mean) / input_std).collect())
            .collect();
        let targets: Vec<f64> = dataset
            .targets()
            .iter()
            .map(|&y| (y - target_mean) / target_std)
            .collect();

        let mut weights = vec![0.0; self.window];
        let mut bias = 0.0;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..features.len()).collect();

        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                let x = &features[idx];
                let y = targets[idx];
                let prediction = dot(&weights, x) + bias;
                let residual = prediction - y;
                // ε-insensitive sub-gradient.
                let grad = if residual > self.epsilon {
                    1.0
                } else if residual < -self.epsilon {
                    -1.0
                } else {
                    0.0
                };
                for (w, &xi) in weights.iter_mut().zip(x.iter()) {
                    *w -= self.learning_rate * (grad * xi + self.regularisation * *w);
                }
                bias -= self.learning_rate * grad;
            }
        }

        self.state = Some(FittedSvr {
            weights,
            bias,
            input_mean,
            input_std,
            target_mean,
            target_std,
        });
        Ok(())
    }

    fn is_fitted(&self) -> bool {
        self.state.is_some()
    }

    fn predict_next(&self, history: &[f64]) -> Result<f64, PredictError> {
        let Some(state) = &self.state else {
            return Err(PredictError::NotFitted);
        };
        if history.len() < self.window {
            return Err(PredictError::InsufficientData {
                needed: self.window,
                available: history.len(),
            });
        }
        let inputs: Vec<f64> = history[history.len() - self.window..]
            .iter()
            .map(|&x| (x - state.input_mean) / state.input_std)
            .collect();
        let normalised = dot(&state.weights, &inputs) + state.bias;
        Ok(normalised * state.target_std + state.target_mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;

    #[test]
    fn construction_validation() {
        assert!(SupportVectorRegression::new(0, 1).is_err());
        assert!(
            SupportVectorRegression::with_hyperparameters(4, 1, -0.1, 1e-4, 100, 0.01).is_err()
        );
        assert!(SupportVectorRegression::with_hyperparameters(4, 1, 0.1, -1.0, 100, 0.01).is_err());
        assert!(SupportVectorRegression::with_hyperparameters(4, 1, 0.1, 1e-4, 0, 0.01).is_err());
        assert!(SupportVectorRegression::with_hyperparameters(4, 1, 0.1, 1e-4, 100, 0.0).is_err());
        let svr = SupportVectorRegression::new(4, 1).unwrap();
        assert_eq!(svr.name(), "SVR");
        assert_eq!(svr.window(), 4);
        assert!(!svr.is_fitted());
    }

    #[test]
    fn unfitted_svr_refuses_to_predict() {
        let svr = SupportVectorRegression::new(3, 1).unwrap();
        assert!(matches!(
            svr.predict_next(&[1.0, 2.0, 3.0]),
            Err(PredictError::NotFitted)
        ));
    }

    #[test]
    fn learns_a_constant_series() {
        let series = vec![88.0; 80];
        let mut svr = SupportVectorRegression::new(4, 5).unwrap();
        svr.fit(&series).unwrap();
        let next = svr.predict_next(&series).unwrap();
        assert!((next - 88.0).abs() < 1.0, "predicted {next}");
    }

    #[test]
    fn tracks_a_slow_oscillation() {
        let series: Vec<f64> = (0..500)
            .map(|i| 92.0 + 3.0 * (i as f64 * 0.05).sin())
            .collect();
        let mut svr = SupportVectorRegression::new(5, 3).unwrap();
        svr.fit(&series[..400]).unwrap();
        let mut actual = Vec::new();
        let mut predicted = Vec::new();
        for t in 400..499 {
            predicted.push(svr.predict_next(&series[..t]).unwrap());
            actual.push(series[t]);
        }
        let err = mape(&actual, &predicted).unwrap();
        assert!(err < 3.0, "SVR MAPE {err}% is too large");
    }

    #[test]
    fn deterministic_per_seed() {
        let series: Vec<f64> = (0..150).map(|i| 85.0 + 0.05 * i as f64).collect();
        let mut a = SupportVectorRegression::new(4, 21).unwrap();
        let mut b = SupportVectorRegression::new(4, 21).unwrap();
        a.fit(&series).unwrap();
        b.fit(&series).unwrap();
        assert_eq!(
            a.predict_next(&series).unwrap(),
            b.predict_next(&series).unwrap()
        );
    }

    #[test]
    fn short_histories_are_rejected_after_fitting() {
        let series: Vec<f64> = (0..60).map(f64::from).collect();
        let mut svr = SupportVectorRegression::new(5, 0).unwrap();
        svr.fit(&series).unwrap();
        assert!(matches!(
            svr.predict_next(&[1.0]),
            Err(PredictError::InsufficientData { .. })
        ));
    }
}
