//! A command-line controller for a running `teg-served` daemon.
//!
//! ```text
//! cargo run -p teg-serve --example teg_servectl -- stats    127.0.0.1:7070
//! cargo run -p teg-serve --example teg_servectl -- submit   127.0.0.1:7070 nightly \
//!     "modules=20,40|seeds=1,2|drive=city:120|lineup=paper-fixed:0.002" fixed:0.002
//! cargo run -p teg-serve --example teg_servectl -- cancel   127.0.0.1:7070 nightly
//! cargo run -p teg-serve --example teg_servectl -- shutdown 127.0.0.1:7070
//! ```
//!
//! `submit` streams progress as cells arrive and prints the per-scheme
//! summary table once the sweep completes.

use std::process::ExitCode;

use teg_serve::{protocol::parse_policy, ServeClient, SubmitRequest};
use teg_sim::GridSpec;

fn usage() -> ExitCode {
    eprintln!(
        "usage: teg_servectl stats <addr>\n\
         \x20      teg_servectl submit <addr> <id> <grid-spec> [policy]\n\
         \x20      teg_servectl cancel <addr> <id>\n\
         \x20      teg_servectl shutdown <addr>\n\
         policy: `measured` (default) or `fixed:<seconds>`"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, addr] if cmd == "stats" => stats(addr),
        [cmd, addr] if cmd == "shutdown" => shutdown(addr),
        [cmd, addr, id] if cmd == "cancel" => cancel(addr, id),
        [cmd, addr, id, spec] if cmd == "submit" => submit(addr, id, spec, "measured"),
        [cmd, addr, id, spec, policy] if cmd == "submit" => submit(addr, id, spec, policy),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

fn stats(addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    let reply = ServeClient::connect(addr)?.stats()?;
    println!("active sweeps      {}", reply.active);
    println!("queued cells       {}", reply.queued_cells);
    println!("completed sweeps   {}", reply.completed_requests);
    println!("workers            {}", reply.workers);
    println!(
        "trace cache        {} entries, {} hits / {} misses, {} evictions",
        reply.cache_len, reply.cache_hits, reply.cache_misses, reply.cache_evictions
    );
    println!(
        "pre-solve planner  {} keys planned, {} solved ahead of cells",
        reply.presolve_planned, reply.presolve_solved
    );
    println!("workers respawned  {}", reply.workers_respawned);
    println!(
        "connections        {} open, {} rejected at the cap",
        reply.connections, reply.connections_rejected
    );
    Ok(())
}

fn cancel(addr: &str, id: &str) -> Result<(), Box<dyn std::error::Error>> {
    ServeClient::connect(addr)?.cancel(id)?;
    println!("cancelled `{id}`");
    Ok(())
}

fn shutdown(addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    ServeClient::connect(addr)?.shutdown_server()?;
    println!("daemon acknowledged shutdown");
    Ok(())
}

fn submit(
    addr: &str,
    id: &str,
    spec: &str,
    policy: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let request = SubmitRequest {
        id: id.to_owned(),
        grid: GridSpec::parse(spec)?,
        policy: parse_policy(policy)?,
    };
    let mut client = ServeClient::connect(addr)?;
    let mut stream = client.submit(&request)?;
    let total = stream.accepted().cells;
    let resumed = stream.accepted().resumed;
    if resumed > 0 {
        println!("accepted: {total} cells ({resumed} resumed from checkpoint)");
    } else {
        println!("accepted: {total} cells");
    }
    while let Some(cell) = stream.next_cell()? {
        println!(
            "  [{}/{}] {} — {} schemes",
            cell.key().index() + 1,
            total,
            cell.key(),
            cell.report().reports().len()
        );
    }
    let report = stream.into_report()?;
    println!(
        "done: {} thermal solves\n\n{}",
        report.thermal_solves(),
        report.summary_table()
    );
    Ok(())
}
