//! Seeded chaos soak for the sweep service.
//!
//! ```text
//! chaos_soak [--sessions N] [--seed S] [--out PATH]
//! ```
//!
//! Each session boots a checkpointing [`SweepServer`], runs one undisturbed
//! baseline sweep to capture the clean byte stream, then re-runs the same
//! grid through a seeded [`ChaosProxy`] with a [`ResilientClient`] while a
//! poison pill kills one worker thread mid-session.  The session passes only
//! if
//!
//! 1. the resilient run completes despite the injected kills, truncations,
//!    corruptions, delays and split writes;
//! 2. its canonical CELL+DONE stream is **byte-identical** to the
//!    undisturbed baseline;
//! 3. the decoded [`SweepReport`](teg_sim::SweepReport)s compare equal
//!    (bit-exact `f64`s);
//! 4. the supervisor respawned the poisoned worker (`workers_respawned` in
//!    STATS) and the server is quiescent afterwards (no active sweeps, no
//!    queued cells, no leftover journal).
//!
//! Fault schedules are a pure function of the session seed, so a passing
//! seed passes forever; the per-session summary (attempt counts, fault
//! tallies) lands in `--out` for CI artifacts.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use teg_serve::{
    ChaosPlan, ChaosProxy, ResilientClient, RetryPolicy, ServeClient, ServerConfig, SubmitRequest,
    SweepServer,
};
use teg_sim::{GridSpec, RuntimePolicy};
use teg_units::Seconds;

/// The sweep every session runs: 4 cells, small enough that a CI soak of a
/// few sessions stays in seconds, large enough that kills land mid-stream.
const SPEC: &str = "modules=6,8|seeds=1,2|drive=city:12|lineup=paper-fixed:0.002";
const POLICY: RuntimePolicy = RuntimePolicy::Fixed(Seconds::new(0.002));

/// How long to wait for the server to go quiescent after the chaos run.
const QUIESCENCE: Duration = Duration::from_secs(20);

fn usage() -> ! {
    eprintln!("usage: chaos_soak [--sessions N] [--seed S] [--out PATH]");
    std::process::exit(2);
}

struct Args {
    sessions: u64,
    seed: u64,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        sessions: 3,
        seed: 0xC4A0_5EED,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            usage();
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sessions" => {
                parsed.sessions = value(&mut args, "--sessions").parse().unwrap_or_else(|_| {
                    eprintln!("error: --sessions value is not an integer");
                    usage();
                });
            }
            "--seed" => {
                parsed.seed = value(&mut args, "--seed").parse().unwrap_or_else(|_| {
                    eprintln!("error: --seed value is not an integer");
                    usage();
                });
            }
            "--out" => parsed.out = Some(value(&mut args, "--out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage();
            }
        }
    }
    parsed
}

fn request(id: &str) -> SubmitRequest {
    SubmitRequest {
        id: id.to_owned(),
        grid: GridSpec::parse(SPEC).expect("the soak grid spec is valid"),
        policy: POLICY,
    }
}

/// Polls STATS until the server reports no active sweeps and an empty
/// queue, or the quiescence budget runs out.
fn await_quiescence(addr: std::net::SocketAddr) -> Result<teg_serve::StatsReply, String> {
    let deadline = Instant::now() + QUIESCENCE;
    loop {
        let stats = ServeClient::connect(addr)
            .and_then(|mut c| c.stats())
            .map_err(|err| format!("stats poll failed: {err}"))?;
        if stats.active == 0 && stats.queued_cells == 0 {
            return Ok(stats);
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "server not quiescent after {QUIESCENCE:?}: {} active, {} queued",
                stats.active, stats.queued_cells
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// One seeded session; returns its summary line and destructive-fault count
/// (kills + truncations + corruptions), or the failure description.
fn session(ordinal: u64, seed: u64) -> Result<(String, usize), String> {
    let checkpoint_dir =
        std::env::temp_dir().join(format!("teg-chaos-soak-{}-{ordinal}", std::process::id()));
    std::fs::create_dir_all(&checkpoint_dir)
        .map_err(|err| format!("cannot create checkpoint dir: {err}"))?;

    let server = SweepServer::start(ServerConfig {
        workers: 2,
        queue_capacity: 2,
        checkpoint_dir: Some(checkpoint_dir.clone()),
        idle_timeout_secs: Some(30.0),
        ..ServerConfig::default()
    })
    .map_err(|err| format!("server failed to start: {err}"))?;
    let addr = server.addr();

    let outcome = (|| {
        // Undisturbed baseline: the byte stream every chaos run must match.
        // Same id as the chaos run — the DONE payload echoes the id, so the
        // byte-identity assertion needs both runs to submit as one request.
        // The baseline completes (and deletes its journal) before the chaos
        // run starts, so the id is free for reuse.
        let id = format!("soak-{ordinal}");
        let baseline = ResilientClient::new(addr.to_string())
            .run(&request(&id))
            .map_err(|err| format!("baseline run failed: {err}"))?;
        if baseline.attempts() != 1 {
            return Err(format!(
                "baseline needed {} attempts on a fault-free path",
                baseline.attempts()
            ));
        }

        let proxy = ChaosProxy::start(
            addr,
            ChaosPlan {
                seed,
                ..ChaosPlan::default()
            },
        )
        .map_err(|err| format!("proxy failed to start: {err}"))?;

        // Kill one worker mid-session: the supervisor must respawn it and
        // the sweep must not notice beyond momentary throughput.
        let chaotic = std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(30));
                server.poison_worker();
            });
            ResilientClient::new(proxy.addr().to_string())
                .retry_policy(RetryPolicy {
                    max_attempts: 48,
                    base_delay: Duration::from_millis(10),
                    max_delay: Duration::from_millis(250),
                    stall_timeout: Duration::from_secs(5),
                    seed,
                })
                .run(&request(&id))
        })
        .map_err(|err| format!("chaos run failed: {err}"))?;

        if chaotic.canonical_stream() != baseline.canonical_stream() {
            return Err("canonical CELL+DONE stream differs from the baseline".to_owned());
        }
        let attempts = chaotic.attempts();
        let stats = await_quiescence(addr)?;
        if stats.workers_respawned == 0 {
            return Err("poisoned worker was never respawned".to_owned());
        }
        if stats.completed_requests < 2 {
            return Err(format!(
                "expected both sweeps to complete, server counted {}",
                stats.completed_requests
            ));
        }
        let expected = baseline
            .into_report()
            .map_err(|err| format!("baseline report failed to decode: {err}"))?;
        let got = chaotic
            .into_report()
            .map_err(|err| format!("chaos report failed to decode: {err}"))?;
        if got != expected {
            return Err("decoded SweepReport differs from the baseline".to_owned());
        }
        let leftovers = std::fs::read_dir(&checkpoint_dir)
            .map(|entries| entries.count())
            .unwrap_or(0);
        if leftovers != 0 {
            return Err(format!(
                "{leftovers} journal file(s) left behind after both sweeps completed"
            ));
        }

        let pstats = proxy.stats();
        let disruptions = pstats.disruptions();
        let line = format!(
            "session {ordinal}: seed {seed:#x} PASS — {attempts} connection(s), \
             {} frames proxied, {} kills, {} truncations, {} corruptions, \
             {} delays, {} splits, {} worker respawn(s)",
            pstats.frames(),
            pstats.kills(),
            pstats.truncations(),
            pstats.corruptions(),
            pstats.delays(),
            pstats.splits(),
            stats.workers_respawned,
        );
        proxy.stop();
        Ok((line, disruptions))
    })();

    server.shutdown();
    let _ = std::fs::remove_dir_all(&checkpoint_dir);
    outcome
}

fn main() -> ExitCode {
    let args = parse_args();
    // The poison pill panics a worker thread *by design*; keep its
    // backtrace out of the soak log while leaving every other panic loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let poison = info
            .payload()
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .is_some_and(|message| message.contains("chaos poison pill"));
        if !poison {
            default_hook(info);
        }
    }));
    let started = Instant::now();
    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "chaos_soak: {} session(s), base seed {:#x}, grid `{SPEC}`",
        args.sessions, args.seed
    );
    let mut failures = 0usize;
    let mut disruptions = 0usize;
    for ordinal in 0..args.sessions {
        let seed = args.seed.wrapping_add(ordinal);
        match session(ordinal, seed) {
            Ok((line, destroyed)) => {
                disruptions += destroyed;
                println!("{line}");
                let _ = writeln!(summary, "{line}");
            }
            Err(err) => {
                failures += 1;
                let line = format!("session {ordinal}: seed {seed:#x} FAIL — {err}");
                eprintln!("{line}");
                let _ = writeln!(summary, "{line}");
            }
        }
    }
    // A soak that injected nothing destructive proved nothing: fail loudly
    // so a seed or probability change cannot silently drain the coverage.
    if failures == 0 && disruptions == 0 {
        failures += 1;
        let line = "chaos_soak: FAIL — no kill/truncate/corrupt fault was injected across \
                    the whole soak; change --seed or raise the plan's probabilities"
            .to_owned();
        eprintln!("{line}");
        let _ = writeln!(summary, "{line}");
    }
    let verdict = if failures == 0 { "PASS" } else { "FAIL" };
    let footer = format!(
        "chaos_soak: {verdict} — {}/{} session(s) byte-identical to their undisturbed baselines in {:.1}s",
        args.sessions as usize - failures,
        args.sessions,
        started.elapsed().as_secs_f64()
    );
    println!("{footer}");
    let _ = writeln!(summary, "{footer}");
    if let Some(path) = &args.out {
        if let Err(err) = std::fs::write(path, &summary) {
            eprintln!("warning: could not write summary to {path}: {err}");
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
