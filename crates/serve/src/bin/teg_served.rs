//! The sweep service daemon binary.
//!
//! ```text
//! teg-served [--addr HOST:PORT] [--workers N] [--queue N] [--max-cells N]
//!            [--max-steps N] [--cache N] [--checkpoint-dir DIR]
//!            [--max-frame BYTES] [--max-request-secs SECS]
//!            [--idle-timeout-secs SECS] [--max-connections N] [--smoke]
//! ```
//!
//! Without `--smoke` the daemon binds, prints `listening on <addr>` and runs
//! until a client sends a SHUTDOWN frame.  With `--smoke` it instead binds an
//! ephemeral port, drives a small deterministic sweep through the wire client
//! and asserts the streamed report equals the in-process
//! [`SweepRunner`] report — the end-to-end self-test CI
//! runs.

use std::process::ExitCode;

use teg_serve::{ServeClient, ServerConfig, SubmitRequest, SweepServer};
use teg_sim::{GridSpec, RuntimePolicy, SweepRunner};
use teg_units::Seconds;

fn usage() -> ! {
    eprintln!(
        "usage: teg-served [--addr HOST:PORT] [--workers N] [--queue N] [--max-cells N]\n\
         \x20                 [--max-steps N] [--cache N] [--checkpoint-dir DIR]\n\
         \x20                 [--max-frame BYTES] [--max-request-secs SECS]\n\
         \x20                 [--idle-timeout-secs SECS] [--max-connections N] [--smoke]"
    );
    std::process::exit(2);
}

fn parse_args() -> (ServerConfig, bool) {
    let mut config = ServerConfig::default();
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            usage();
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = value(&mut args, "--addr"),
            "--workers" => config.workers = numeric(&value(&mut args, "--workers"), "--workers"),
            "--queue" => {
                config.queue_capacity = numeric(&value(&mut args, "--queue"), "--queue");
            }
            "--max-cells" => {
                config.max_cells = numeric(&value(&mut args, "--max-cells"), "--max-cells");
            }
            "--max-steps" => {
                config.max_steps = numeric(&value(&mut args, "--max-steps"), "--max-steps");
            }
            "--cache" => config.cache_capacity = numeric(&value(&mut args, "--cache"), "--cache"),
            "--checkpoint-dir" => {
                config.checkpoint_dir = Some(value(&mut args, "--checkpoint-dir").into());
            }
            "--max-frame" => {
                config.max_frame = numeric(&value(&mut args, "--max-frame"), "--max-frame");
            }
            "--max-request-secs" => {
                config.max_request_secs = Some(seconds(
                    &value(&mut args, "--max-request-secs"),
                    "--max-request-secs",
                ));
            }
            "--idle-timeout-secs" => {
                config.idle_timeout_secs = Some(seconds(
                    &value(&mut args, "--idle-timeout-secs"),
                    "--idle-timeout-secs",
                ));
            }
            "--max-connections" => {
                config.max_connections =
                    numeric(&value(&mut args, "--max-connections"), "--max-connections");
            }
            "--smoke" => smoke = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage();
            }
        }
    }
    (config, smoke)
}

fn numeric(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} value `{text}` is not an integer");
        usage();
    })
}

fn seconds(text: &str, flag: &str) -> f64 {
    let parsed: f64 = text.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} value `{text}` is not a number of seconds");
        usage();
    });
    if !parsed.is_finite() || parsed <= 0.0 {
        eprintln!("error: {flag} must be a positive, finite number of seconds");
        usage();
    }
    parsed
}

/// End-to-end self-test: the streamed report must equal the in-process one.
fn smoke(mut config: ServerConfig) -> ExitCode {
    config.addr = "127.0.0.1:0".to_owned();
    config.checkpoint_dir = None;
    let spec = "modules=6,8|seeds=1,2|drive=city:10|lineup=paper-fixed:0.002";
    let policy = RuntimePolicy::Fixed(Seconds::new(0.002));
    let grid_spec = match GridSpec::parse(spec) {
        Ok(grid) => grid,
        Err(err) => {
            eprintln!("smoke: bad grid spec: {err}");
            return ExitCode::FAILURE;
        }
    };

    let expected = match grid_spec
        .to_grid()
        .map_err(|err| err.to_string())
        .and_then(|grid| {
            SweepRunner::new()
                .runtime_policy(policy)
                .run(&grid)
                .map_err(|err| err.to_string())
        }) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("smoke: in-process sweep failed: {err}");
            return ExitCode::FAILURE;
        }
    };

    let served = (|| -> Result<_, Box<dyn std::error::Error>> {
        let server = SweepServer::start(config)?;
        let addr = server.addr();
        let mut client = ServeClient::connect(addr)?;
        let request = SubmitRequest {
            id: "smoke".into(),
            grid: grid_spec,
            policy,
        };
        let report = client.submit(&request)?.into_report()?;
        client.shutdown_server()?;
        server.wait();
        Ok(report)
    })();
    let served = match served {
        Ok(report) => report,
        Err(err) => {
            eprintln!("smoke: service sweep failed: {err}");
            return ExitCode::FAILURE;
        }
    };

    if served != expected {
        eprintln!("smoke: FAIL — streamed report differs from the in-process report");
        return ExitCode::FAILURE;
    }
    println!(
        "smoke: PASS — {} cells streamed bit-identically ({} thermal solves)",
        served.cells().len(),
        served.thermal_solves()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let (config, run_smoke) = parse_args();
    if run_smoke {
        return smoke(config);
    }
    match SweepServer::start(config) {
        Ok(server) => {
            println!("listening on {}", server.addr());
            server.wait();
            println!("shut down");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: failed to start: {err}");
            ExitCode::FAILURE
        }
    }
}
