//! Deterministic wire-fault injection: a TCP shim between a client and the
//! sweep service.
//!
//! A [`ChaosProxy`] listens on an ephemeral port and relays every connection
//! to an upstream server, frame by frame.  Each relay direction draws one
//! [`FaultAction`] per frame from a [`FaultSchedule`] — a seeded
//! deterministic stream — so a given [`ChaosPlan`] seed always injects the
//! same faults at the same frame ordinals of the same connection.  The
//! injected repertoire covers the transport failures a production deployment
//! sees:
//!
//! * **delays** — the whole frame is held back before delivery;
//! * **split writes** — the frame is delivered in two bursts, exercising
//!   partial-read paths without breaking frame sync;
//! * **corruption** — the frame's kind byte is flipped to an unassigned
//!   value, which the receiving framing layer rejects as
//!   [`WireError::UnknownKind`](crate::WireError::UnknownKind) (payload
//!   bytes are left alone: the protocol carries no checksum, so payload
//!   corruption would be undetectable and is out of scope);
//! * **truncation** — the frame is cut mid-body and the connection killed,
//!   surfacing as [`WireError::Truncated`](crate::WireError::Truncated);
//! * **kills** — the connection is dropped cold, mid-stream.
//!
//! Determinism contract: the fault *schedule* is a pure function of
//! `(plan seed, connection ordinal, direction, frame ordinal)`.  What those
//! faults then *do* to a session can depend on scheduling (a killed
//! connection may already have more frames in flight on one run than on
//! another), but a resilient client's final assembled stream must come out
//! byte-identical regardless — that is exactly the property the
//! `chaos_soak` bin asserts.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use rand_chacha::{ChaCha8Rng, RngCore, SeedableRng};

/// How long relay reads block before re-checking the shutdown flag.
const RELAY_POLL: Duration = Duration::from_millis(50);

/// Gap between the two bursts of a split write — far below any frame
/// receiver's read timeout, so a split never masquerades as truncation.
const SPLIT_GAP: Duration = Duration::from_millis(1);

/// Largest frame the proxy will buffer; matches the service's own cap.
const PROXY_MAX_FRAME: usize = crate::wire::MAX_FRAME;

/// The seeded fault mix of one proxy.  Probabilities are per *frame* and are
/// checked in the order kill → truncate → corrupt → delay → split against a
/// single uniform draw, so they must sum to at most 1.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Root seed; every `(connection, direction)` schedule derives from it.
    pub seed: u64,
    /// Probability a frame's connection is dropped cold instead of
    /// delivering the frame.
    pub kill_probability: f64,
    /// Probability a frame is cut mid-body and the connection dropped.
    pub truncate_probability: f64,
    /// Probability a frame's kind byte is flipped to an unassigned value.
    pub corrupt_probability: f64,
    /// Probability a frame is delayed before delivery.
    pub delay_probability: f64,
    /// Probability a frame is delivered in two bursts.
    pub split_probability: f64,
    /// Ceiling of an injected delay (actual delay is a uniform draw below
    /// it).  Keep this well under the resilient client's stall timeout.
    pub max_delay: Duration,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            kill_probability: 0.06,
            truncate_probability: 0.04,
            corrupt_probability: 0.04,
            delay_probability: 0.10,
            split_probability: 0.10,
            max_delay: Duration::from_millis(20),
        }
    }
}

impl ChaosPlan {
    /// A plan that injects nothing — the proxy becomes a transparent relay,
    /// which the test suite uses to prove the shim itself preserves bytes.
    #[must_use]
    pub fn benign(seed: u64) -> Self {
        Self {
            seed,
            kill_probability: 0.0,
            truncate_probability: 0.0,
            corrupt_probability: 0.0,
            delay_probability: 0.0,
            split_probability: 0.0,
            max_delay: Duration::ZERO,
        }
    }
}

/// What happens to one relayed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Forward unchanged.
    Deliver,
    /// Hold the whole frame back, then forward unchanged.
    Delay(Duration),
    /// Forward in two bursts with a short gap.
    Split,
    /// Flip the kind byte to the unassigned value `0x7f`, then forward.
    Corrupt,
    /// Forward the header and half the body, then kill the connection.
    Truncate,
    /// Kill the connection without forwarding anything.
    Kill,
}

/// The deterministic per-direction fault stream of one proxied connection.
#[derive(Debug)]
pub struct FaultSchedule {
    rng: ChaCha8Rng,
    plan: ChaosPlan,
}

impl FaultSchedule {
    /// Derives the schedule for `direction` (0 = client→server,
    /// 1 = server→client) of the `connection`-th proxied connection.
    #[must_use]
    pub fn new(plan: &ChaosPlan, connection: u64, direction: u64) -> Self {
        let mixed = plan
            .seed
            .wrapping_add(connection.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(direction.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        Self {
            rng: ChaCha8Rng::seed_from_u64(mixed),
            plan: plan.clone(),
        }
    }

    /// A uniform draw in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Draws the action for the next frame.
    pub fn next_action(&mut self) -> FaultAction {
        let draw = self.unit();
        let mut edge = self.plan.kill_probability;
        if draw < edge {
            return FaultAction::Kill;
        }
        edge += self.plan.truncate_probability;
        if draw < edge {
            return FaultAction::Truncate;
        }
        edge += self.plan.corrupt_probability;
        if draw < edge {
            return FaultAction::Corrupt;
        }
        edge += self.plan.delay_probability;
        if draw < edge {
            return FaultAction::Delay(self.plan.max_delay.mul_f64(self.unit()));
        }
        edge += self.plan.split_probability;
        if draw < edge {
            return FaultAction::Split;
        }
        FaultAction::Deliver
    }
}

/// Live counters of everything a proxy did, for soak summaries.
#[derive(Debug, Default)]
pub struct ChaosStats {
    connections: AtomicUsize,
    frames: AtomicUsize,
    delays: AtomicUsize,
    splits: AtomicUsize,
    corruptions: AtomicUsize,
    truncations: AtomicUsize,
    kills: AtomicUsize,
}

impl ChaosStats {
    /// Connections proxied.
    #[must_use]
    pub fn connections(&self) -> usize {
        self.connections.load(Ordering::Relaxed)
    }

    /// Frames relayed (whatever their fate).
    #[must_use]
    pub fn frames(&self) -> usize {
        self.frames.load(Ordering::Relaxed)
    }

    /// Frames delivered late.
    #[must_use]
    pub fn delays(&self) -> usize {
        self.delays.load(Ordering::Relaxed)
    }

    /// Frames delivered in two bursts.
    #[must_use]
    pub fn splits(&self) -> usize {
        self.splits.load(Ordering::Relaxed)
    }

    /// Frames delivered with a flipped kind byte.
    #[must_use]
    pub fn corruptions(&self) -> usize {
        self.corruptions.load(Ordering::Relaxed)
    }

    /// Frames cut mid-body (connection killed).
    #[must_use]
    pub fn truncations(&self) -> usize {
        self.truncations.load(Ordering::Relaxed)
    }

    /// Connections dropped cold.
    #[must_use]
    pub fn kills(&self) -> usize {
        self.kills.load(Ordering::Relaxed)
    }

    /// Faults of any destructive or visible kind (everything but clean and
    /// split/delayed delivery).
    #[must_use]
    pub fn disruptions(&self) -> usize {
        self.corruptions() + self.truncations() + self.kills()
    }
}

/// One raw frame as the proxy sees it: the 4-byte length header plus the
/// body (kind byte + payload).
struct RawFrame {
    header: [u8; 4],
    body: Vec<u8>,
}

/// A fault-injecting TCP relay in front of a sweep service.
pub struct ChaosProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    relays: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stats: Arc<ChaosStats>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and starts relaying every accepted
    /// connection to `upstream` under `plan`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn start(upstream: SocketAddr, plan: ChaosPlan) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let relays: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let stats = Arc::new(ChaosStats::default());
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let relays = Arc::clone(&relays);
            let stats = Arc::clone(&stats);
            thread::spawn(move || {
                proxy_accept_loop(&listener, upstream, &plan, &shutdown, &relays, &stats);
            })
        };
        Ok(Self {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            relays,
            stats,
        })
    }

    /// The proxy's listen address — point the client here instead of at the
    /// server.
    #[must_use]
    pub const fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The proxy's live fault counters.
    #[must_use]
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Stops accepting, tears down every live relay and joins all threads.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        let relays =
            std::mem::take(&mut *self.relays.lock().unwrap_or_else(PoisonError::into_inner));
        for relay in relays {
            let _ = relay.join();
        }
    }
}

fn proxy_accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: &ChaosPlan,
    shutdown: &Arc<AtomicBool>,
    relays: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    stats: &Arc<ChaosStats>,
) {
    let mut connection: u64 = 0;
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((client, _)) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let Ok(server) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                let _ = client.set_read_timeout(Some(RELAY_POLL));
                let _ = server.set_read_timeout(Some(RELAY_POLL));
                let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
                    let _ = client.shutdown(Shutdown::Both);
                    let _ = server.shutdown(Shutdown::Both);
                    continue;
                };
                let forward = spawn_relay(
                    client_r,
                    server,
                    FaultSchedule::new(plan, connection, 0),
                    Arc::clone(shutdown),
                    Arc::clone(stats),
                );
                let backward = spawn_relay(
                    server_r,
                    client,
                    FaultSchedule::new(plan, connection, 1),
                    Arc::clone(shutdown),
                    Arc::clone(stats),
                );
                let mut relays = relays.lock().unwrap_or_else(PoisonError::into_inner);
                relays.push(forward);
                relays.push(backward);
                // Reap finished relay threads so long soaks do not
                // accumulate a handle pair per connection ever proxied.
                let mut index = 0;
                while index < relays.len() {
                    if relays[index].is_finished() {
                        let finished = relays.swap_remove(index);
                        let _ = finished.join();
                    } else {
                        index += 1;
                    }
                }
                connection += 1;
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => thread::sleep(RELAY_POLL),
            Err(_) => thread::sleep(RELAY_POLL),
        }
    }
}

fn spawn_relay(
    from: TcpStream,
    to: TcpStream,
    schedule: FaultSchedule,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ChaosStats>,
) -> JoinHandle<()> {
    thread::spawn(move || relay(from, to, schedule, &shutdown, &stats))
}

/// Drops both ends of a relayed connection.  Killing both sockets (not just
/// one direction) makes the opposite relay's blocked read fail too, so the
/// pair always dies together.
fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

fn relay(
    mut from: TcpStream,
    mut to: TcpStream,
    mut schedule: FaultSchedule,
    shutdown: &AtomicBool,
    stats: &ChaosStats,
) {
    while let Some(mut frame) = read_raw_frame(&mut from, shutdown) {
        stats.frames.fetch_add(1, Ordering::Relaxed);
        let action = schedule.next_action();
        let delivered = match action {
            FaultAction::Deliver => deliver(&mut to, &frame),
            FaultAction::Delay(delay) => {
                stats.delays.fetch_add(1, Ordering::Relaxed);
                thread::sleep(delay);
                deliver(&mut to, &frame)
            }
            FaultAction::Split => {
                stats.splits.fetch_add(1, Ordering::Relaxed);
                deliver_split(&mut to, &frame)
            }
            FaultAction::Corrupt => {
                stats.corruptions.fetch_add(1, Ordering::Relaxed);
                // Body byte 0 is the frame kind; 0x7f is unassigned on both
                // sides of the protocol, so the receiving framing layer
                // detects the corruption deterministically.  Payload bytes
                // are left alone — the protocol carries no checksum, so
                // payload corruption would be silent.
                frame.body[0] = 0x7f;
                deliver(&mut to, &frame)
            }
            FaultAction::Truncate => {
                stats.truncations.fetch_add(1, Ordering::Relaxed);
                let cut = frame.body.len() / 2;
                let _ = to.write_all(&frame.header);
                let _ = to.write_all(&frame.body[..cut]);
                let _ = to.flush();
                sever(&from, &to);
                break;
            }
            FaultAction::Kill => {
                stats.kills.fetch_add(1, Ordering::Relaxed);
                sever(&from, &to);
                break;
            }
        };
        if !delivered {
            break;
        }
    }
    sever(&from, &to);
}

fn deliver(to: &mut TcpStream, frame: &RawFrame) -> bool {
    to.write_all(&frame.header)
        .and_then(|()| to.write_all(&frame.body))
        .and_then(|()| to.flush())
        .is_ok()
}

fn deliver_split(to: &mut TcpStream, frame: &RawFrame) -> bool {
    // First burst: the header plus the first body byte (the kind), so the
    // receiver is parked mid-body when the gap hits.
    let cut = 1.min(frame.body.len());
    let first = to
        .write_all(&frame.header)
        .and_then(|()| to.write_all(&frame.body[..cut]))
        .and_then(|()| to.flush());
    if first.is_err() {
        return false;
    }
    thread::sleep(SPLIT_GAP);
    to.write_all(&frame.body[cut..])
        .and_then(|()| to.flush())
        .is_ok()
}

/// Reads one whole raw frame, retrying timeouts until `shutdown`.  `None`
/// on EOF, transport failure, shutdown, or a length prefix beyond the cap.
fn read_raw_frame(from: &mut TcpStream, shutdown: &AtomicBool) -> Option<RawFrame> {
    let mut header = [0u8; 4];
    read_full(from, &mut header, shutdown)?;
    let length = u32::from_be_bytes(header) as usize;
    if length == 0 || length > PROXY_MAX_FRAME {
        return None;
    }
    let mut body = vec![0u8; length];
    read_full(from, &mut body, shutdown)?;
    Some(RawFrame { header, body })
}

/// Fills `buf` completely, treating timeouts as retry points.  `None` on
/// EOF, failure or shutdown.
fn read_full(from: &mut TcpStream, buf: &mut [u8], shutdown: &AtomicBool) -> Option<()> {
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::Relaxed) {
            return None;
        }
        match from.read(&mut buf[filled..]) {
            Ok(0) => return None,
            Ok(n) => filled += n,
            Err(err)
                if matches!(
                    err.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed_connection_and_direction() {
        let plan = ChaosPlan::default();
        let actions = |conn, dir| {
            let mut schedule = FaultSchedule::new(&plan, conn, dir);
            (0..64).map(|_| schedule.next_action()).collect::<Vec<_>>()
        };
        assert_eq!(actions(0, 0), actions(0, 0));
        assert_eq!(actions(3, 1), actions(3, 1));
        assert_ne!(actions(0, 0), actions(1, 0));
        assert_ne!(actions(0, 0), actions(0, 1));
    }

    #[test]
    fn benign_plan_always_delivers() {
        let mut schedule = FaultSchedule::new(&ChaosPlan::benign(7), 0, 1);
        for _ in 0..256 {
            assert_eq!(schedule.next_action(), FaultAction::Deliver);
        }
    }

    #[test]
    fn default_plan_mixes_all_fault_kinds() {
        let mut schedule = FaultSchedule::new(&ChaosPlan::default(), 0, 0);
        let actions: Vec<FaultAction> = (0..4096).map(|_| schedule.next_action()).collect();
        assert!(actions.contains(&FaultAction::Kill));
        assert!(actions.contains(&FaultAction::Truncate));
        assert!(actions.contains(&FaultAction::Corrupt));
        assert!(actions.contains(&FaultAction::Split));
        assert!(actions.iter().any(|a| matches!(a, FaultAction::Delay(_))));
        assert!(actions.contains(&FaultAction::Deliver));
        // The mix must remain dominated by clean delivery, or nothing ever
        // completes.
        let clean = actions
            .iter()
            .filter(|a| matches!(a, FaultAction::Deliver))
            .count();
        assert!(clean * 2 > actions.len(), "{clean}/{}", actions.len());
    }
}
