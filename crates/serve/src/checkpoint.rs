//! Append-only checkpoint journals for long sweeps.
//!
//! One journal per request id, `<id>.ckpt` inside the server's checkpoint
//! directory (ids are path-safe by [`validate_id`](crate::protocol::validate_id)).
//! The format is a text header binding the journal to one exact request:
//!
//! ```text
//! teg-sweep-checkpoint v2
//! grid <canonical grid spec>
//! policy <policy token>
//! cell <index> <escaped byte length> <escaped CELL payload>
//! cell <index> <escaped byte length> <escaped CELL payload>
//! …
//! ```
//!
//! Each finished cell is appended — and flushed — *before* it is streamed to
//! the client, so anything the client saw is durable.  Escaping folds the
//! multi-line CELL payload onto one journal line (`\` → `\\`, newline →
//! `\n`); the stored bytes are exactly what [`encode_cell`](crate::codec::encode_cell)
//! produced, so a resumed request re-emits byte-identical frames without
//! re-solving.
//!
//! Crash safety is structural: every cell record carries the byte length of
//! its escaped payload, so each line proves its own completeness.  A final
//! line whose payload matches its declared length is a finished append that
//! merely lost its trailing newline (killed between `write` and the
//! terminator landing) and is recovered; a line whose payload falls short of
//! the declared length is genuinely torn and is dropped along with
//! everything after it, leaving the cells before it usable.  A header that
//! does not match the resubmitted request's grid spec and policy is a
//! [`CheckpointLoad::Mismatch`] — the server rejects rather than mixing
//! incompatible results.  v1 journals (no length field) mismatch on the
//! format line and are likewise refused rather than half-recovered.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Magic first line of every journal.
pub const CHECKPOINT_MAGIC: &str = "teg-sweep-checkpoint v2";

/// Folds a CELL payload onto one journal line.
#[must_use]
pub fn escape_payload(payload: &str) -> String {
    let mut out = String::with_capacity(payload.len());
    for c in payload.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Inverse of [`escape_payload`]; `None` for a torn escape sequence.
#[must_use]
pub fn unescape_payload(line: &str) -> Option<String> {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            _ => return None,
        }
    }
    Some(out)
}

/// The journal file for one request id.
#[must_use]
pub fn checkpoint_path(dir: &Path, id: &str) -> PathBuf {
    dir.join(format!("{id}.ckpt"))
}

/// What loading a journal found.
#[derive(Debug)]
pub enum CheckpointLoad {
    /// No journal exists for the id — a fresh run.
    Missing,
    /// A journal exists but belongs to a different grid or policy.
    Mismatch {
        /// Which header line disagreed.
        reason: String,
    },
    /// The recovered cells: grid index → the exact CELL payload previously
    /// streamed.
    Cells(BTreeMap<usize, String>),
}

/// Loads the journal for `id`, checking its header against the resubmitted
/// request's canonical grid spec and policy token.
///
/// # Errors
///
/// Propagates I/O failures other than the file not existing.
pub fn load_checkpoint(
    dir: &Path,
    id: &str,
    grid_spec: &str,
    policy: &str,
) -> io::Result<CheckpointLoad> {
    let path = checkpoint_path(dir, id);
    let mut text = String::new();
    match File::open(&path) {
        Ok(mut file) => {
            file.read_to_string(&mut text)?;
        }
        Err(err) if err.kind() == io::ErrorKind::NotFound => {
            return Ok(CheckpointLoad::Missing);
        }
        Err(err) => return Err(err),
    }
    // Every cell record is self-validating (it declares its escaped payload
    // length), so the final line is parsed even without a trailing newline:
    // a complete append that lost only its terminator is recovered, while a
    // genuinely truncated one fails its own length check below.
    let mut lines = text.lines();
    let expect = |got: Option<&str>, want: &str, what: &str| -> Result<(), String> {
        match got {
            Some(line) if line == want => Ok(()),
            Some(line) => Err(format!("{what} mismatch: journal has `{line}`")),
            None => Err(format!("journal truncated before its {what} line")),
        }
    };
    let header = expect(lines.next(), CHECKPOINT_MAGIC, "format")
        .and_then(|()| expect(lines.next(), &format!("grid {grid_spec}"), "grid"))
        .and_then(|()| expect(lines.next(), &format!("policy {policy}"), "policy"));
    if let Err(reason) = header {
        return Ok(CheckpointLoad::Mismatch { reason });
    }
    let mut cells = BTreeMap::new();
    for line in lines {
        // Stop at the first malformed or short line; everything before it is
        // intact.  A torn append truncates the line somewhere, so either the
        // prefix fields fail to parse or the payload comes up shorter than
        // its declared length.
        let Some(rest) = line.strip_prefix("cell ") else {
            break;
        };
        let Some((index, rest)) = rest.split_once(' ') else {
            break;
        };
        let Ok(index) = index.parse::<usize>() else {
            break;
        };
        let Some((length, escaped)) = rest.split_once(' ') else {
            break;
        };
        let Ok(length) = length.parse::<usize>() else {
            break;
        };
        if escaped.len() != length {
            break;
        }
        let Some(payload) = unescape_payload(escaped) else {
            break;
        };
        cells.insert(index, payload);
    }
    Ok(CheckpointLoad::Cells(cells))
}

/// An open journal accepting cell appends.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: BufWriter<File>,
}

impl CheckpointWriter {
    /// Opens (or creates) the journal for `id`, writing the header when the
    /// file is new.  Call [`load_checkpoint`] first — this does not validate
    /// an existing header.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write failures.
    pub fn open(dir: &Path, id: &str, grid_spec: &str, policy: &str) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = checkpoint_path(dir, id);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let fresh = file.metadata()?.len() == 0;
        let mut writer = Self {
            file: BufWriter::new(file),
        };
        if fresh {
            writer.file.write_all(
                format!("{CHECKPOINT_MAGIC}\ngrid {grid_spec}\npolicy {policy}\n").as_bytes(),
            )?;
            writer.file.flush()?;
        }
        Ok(writer)
    }

    /// Appends one finished cell and flushes, so the entry is durable before
    /// the cell is streamed.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn append(&mut self, index: usize, payload: &str) -> io::Result<()> {
        let escaped = escape_payload(payload);
        self.file
            .write_all(format!("cell {index} {} {escaped}\n", escaped.len()).as_bytes())?;
        self.file.flush()
    }
}

/// Removes the journal for `id` (after a successful DONE).
///
/// # Errors
///
/// Propagates deletion failures other than the file already being gone.
pub fn delete_checkpoint(dir: &Path, id: &str) -> io::Result<()> {
    match std::fs::remove_file(checkpoint_path(dir, id)) {
        Ok(()) => Ok(()),
        Err(err) if err.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(err) => Err(err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "teg-serve-ckpt-{}-{}-{tag}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn escaping_round_trips_awkward_payloads() {
        for payload in ["", "plain", "two\nlines\n", "back\\slash", "\\n\n\\\\"] {
            let escaped = escape_payload(payload);
            assert!(!escaped.contains('\n'));
            assert_eq!(unescape_payload(&escaped).unwrap(), payload);
        }
        assert!(unescape_payload("torn\\").is_none());
        assert!(unescape_payload("bad\\x").is_none());
    }

    #[test]
    fn journal_round_trips_and_deletes() {
        let dir = temp_dir("roundtrip");
        assert!(matches!(
            load_checkpoint(&dir, "job", "modules=8", "measured").unwrap(),
            CheckpointLoad::Missing
        ));
        let mut writer = CheckpointWriter::open(&dir, "job", "modules=8", "measured").unwrap();
        writer.append(0, "cell 0\nbody a\n").unwrap();
        writer.append(2, "cell 2\nbody b\n").unwrap();
        drop(writer);
        // Reopening appends without duplicating the header.
        let mut writer = CheckpointWriter::open(&dir, "job", "modules=8", "measured").unwrap();
        writer.append(1, "cell 1\nbody c\n").unwrap();
        drop(writer);
        let CheckpointLoad::Cells(cells) =
            load_checkpoint(&dir, "job", "modules=8", "measured").unwrap()
        else {
            panic!("expected cells");
        };
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[&0], "cell 0\nbody a\n");
        assert_eq!(cells[&1], "cell 1\nbody c\n");
        assert_eq!(cells[&2], "cell 2\nbody b\n");
        delete_checkpoint(&dir, "job").unwrap();
        delete_checkpoint(&dir, "job").unwrap(); // idempotent
        assert!(matches!(
            load_checkpoint(&dir, "job", "modules=8", "measured").unwrap(),
            CheckpointLoad::Missing
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn grid_and_policy_mismatches_are_refused() {
        let dir = temp_dir("mismatch");
        let mut writer = CheckpointWriter::open(&dir, "job", "modules=8", "measured").unwrap();
        writer.append(0, "x").unwrap();
        drop(writer);
        for (grid, policy) in [("modules=12", "measured"), ("modules=8", "fixed:0.002")] {
            assert!(matches!(
                load_checkpoint(&dir, "job", grid, policy).unwrap(),
                CheckpointLoad::Mismatch { .. }
            ));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tails_and_malformed_lines_drop_cleanly() {
        let dir = temp_dir("torn");
        let mut writer = CheckpointWriter::open(&dir, "job", "g", "measured").unwrap();
        writer.append(0, "good\n").unwrap();
        drop(writer);
        let path = checkpoint_path(&dir, "job");
        // A torn append: the payload is shorter than its declared length.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"cell 1 17 half-writt").unwrap();
        drop(file);
        let CheckpointLoad::Cells(cells) = load_checkpoint(&dir, "job", "g", "measured").unwrap()
        else {
            panic!("expected cells");
        };
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[&0], "good\n");
        // An append torn inside the length field itself also drops.
        std::fs::write(
            &path,
            format!("{CHECKPOINT_MAGIC}\ngrid g\npolicy measured\ncell 1 1"),
        )
        .unwrap();
        let CheckpointLoad::Cells(cells) = load_checkpoint(&dir, "job", "g", "measured").unwrap()
        else {
            panic!("expected cells");
        };
        assert!(cells.is_empty());
        // A malformed middle line ends recovery at that point.
        std::fs::write(
            &path,
            format!(
                "{CHECKPOINT_MAGIC}\ngrid g\npolicy measured\ncell 0 1 a\ngarbage\ncell 1 1 b\n"
            ),
        )
        .unwrap();
        let CheckpointLoad::Cells(cells) = load_checkpoint(&dir, "job", "g", "measured").unwrap()
        else {
            panic!("expected cells");
        };
        assert_eq!(cells.len(), 1);
        assert!(cells.contains_key(&0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn complete_final_line_without_newline_is_recovered() {
        // Regression: a finished append that lost only its trailing newline
        // (process killed between the payload landing and the terminator)
        // used to be dropped as torn, so resume re-solved a finished cell.
        // The length field proves the line complete, so it is recovered.
        let dir = temp_dir("noterm");
        let mut writer = CheckpointWriter::open(&dir, "job", "g", "measured").unwrap();
        writer.append(0, "cell 0\nbody a\n").unwrap();
        writer.append(1, "cell 1\nbody b\n").unwrap();
        drop(writer);
        let path = checkpoint_path(&dir, "job");
        // Chop exactly the final newline: the last record is complete but
        // unterminated.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.last(), Some(&b'\n'));
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        let CheckpointLoad::Cells(cells) = load_checkpoint(&dir, "job", "g", "measured").unwrap()
        else {
            panic!("expected cells");
        };
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[&0], "cell 0\nbody a\n");
        assert_eq!(cells[&1], "cell 1\nbody b\n");
        // Chop one more byte and the same record is genuinely torn: only the
        // terminated cell survives.
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let CheckpointLoad::Cells(cells) = load_checkpoint(&dir, "job", "g", "measured").unwrap()
        else {
            panic!("expected cells");
        };
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[&0], "cell 0\nbody a\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
