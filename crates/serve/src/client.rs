//! A blocking wire-level client for the sweep service.
//!
//! [`ServeClient`] owns one connection and offers the full protocol:
//! [`submit`](ServeClient::submit) returns a [`SweepStream`] that yields
//! cells as the server streams them and closes into a
//! [`SweepReport`] equal to what an in-process
//! [`SweepRunner`](teg_sim::SweepRunner) would have produced.
//!
//! [`ResilientClient`] layers reconnect-with-resume on top: a transport
//! failure mid-stream re-dials with capped exponential backoff and seeded
//! jitter, resubmits the same id, verifies the server's checkpoint replay
//! byte-for-byte against the cells already received, and splices the fresh
//! cells on — so the caller sees one uninterrupted, bit-identical stream no
//! matter how often the connection flapped.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::thread;
use std::time::{Duration, Instant};

use rand_chacha::{ChaCha8Rng, RngCore, SeedableRng};
use teg_sim::{SweepCellReport, SweepReport};

use crate::codec::decode_cell;
use crate::protocol::{Accepted, Cancel, Done, ErrorReply, Rejected, StatsReply, SubmitRequest};
use crate::wire::{read_frame, write_frame, Frame, FrameKind, ReadOutcome, WireError, MAX_FRAME};

/// Client-side failures.
#[derive(Debug)]
pub enum ServeError {
    /// Framing or transport failure.
    Wire(WireError),
    /// The server refused the request before doing any work.
    Rejected(Rejected),
    /// The server reported a failure after admission (an ERROR frame).
    Remote(String),
    /// The server sent something the protocol does not allow here.
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Wire(err) => write!(f, "wire error: {err}"),
            Self::Rejected(rejected) => {
                write!(f, "request `{}` rejected: {}", rejected.id, rejected.reason)
            }
            Self::Remote(reason) => write!(f, "server error: {reason}"),
            Self::Protocol(reason) => write!(f, "protocol violation: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WireError> for ServeError {
    fn from(err: WireError) -> Self {
        Self::Wire(err)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(err: std::io::Error) -> Self {
        Self::Wire(WireError::Io(err))
    }
}

/// One connection to a sweep service.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    max_frame: usize,
}

impl ServeClient {
    /// Connects with the default frame cap.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        Self::connect_with_frame_cap(addr, MAX_FRAME)
    }

    /// Connects with an explicit frame cap (must match the server's to
    /// exchange large cells).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_with_frame_cap(
        addr: impl ToSocketAddrs,
        max_frame: usize,
    ) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, max_frame })
    }

    fn send(&mut self, kind: FrameKind, payload: &str) -> Result<(), ServeError> {
        write_frame(&mut self.stream, kind, payload.as_bytes(), self.max_frame)?;
        Ok(())
    }

    /// Reads the next frame, treating EOF as a protocol violation (the
    /// caller expects a reply).
    fn expect_frame(&mut self) -> Result<Frame, ServeError> {
        loop {
            match read_frame(&mut self.stream, self.max_frame)? {
                ReadOutcome::Frame(frame) => return Ok(frame),
                ReadOutcome::Idle => continue,
                ReadOutcome::Eof => {
                    return Err(ServeError::Protocol(
                        "server closed the connection mid-exchange".to_owned(),
                    ))
                }
            }
        }
    }

    /// Submits a sweep and returns the result stream after the server's
    /// admission decision.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] when the server refuses the request;
    /// otherwise wire or protocol failures.
    pub fn submit(&mut self, request: &SubmitRequest) -> Result<SweepStream<'_>, ServeError> {
        let payload = request.encode()?;
        self.send(FrameKind::Submit, &payload)?;
        let frame = self.expect_frame()?;
        let accepted = match frame.kind {
            FrameKind::Accepted => Accepted::decode(frame.text()?)?,
            FrameKind::Rejected => {
                return Err(ServeError::Rejected(Rejected::decode(frame.text()?)?))
            }
            other => {
                return Err(ServeError::Protocol(format!(
                    "expected ACCEPTED or REJECTED, got {other:?}"
                )))
            }
        };
        Ok(SweepStream {
            client: self,
            accepted,
            cells: Vec::new(),
            done: None,
        })
    }

    /// Fetches the service counters.
    ///
    /// # Errors
    ///
    /// Wire or protocol failures.
    pub fn stats(&mut self) -> Result<StatsReply, ServeError> {
        self.send(FrameKind::Stats, "")?;
        let frame = self.expect_frame()?;
        match frame.kind {
            FrameKind::StatsReply => Ok(StatsReply::decode(frame.text()?)?),
            other => Err(ServeError::Protocol(format!(
                "expected STATS_REPLY, got {other:?}"
            ))),
        }
    }

    /// Cancels the named request (usually one submitted on a *different*
    /// connection).
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] when no such request is active; otherwise wire
    /// or protocol failures.
    pub fn cancel(&mut self, id: &str) -> Result<(), ServeError> {
        let payload = Cancel { id: id.to_owned() }.encode();
        self.send(FrameKind::Cancel, &payload)?;
        let frame = self.expect_frame()?;
        match frame.kind {
            FrameKind::Accepted => Ok(()),
            FrameKind::Error => Err(ServeError::Remote(
                ErrorReply::decode(frame.text()?)?.reason,
            )),
            other => Err(ServeError::Protocol(format!(
                "expected ACCEPTED or ERROR, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to shut down and waits for the acknowledgement.
    ///
    /// # Errors
    ///
    /// Wire or protocol failures.
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        self.send(FrameKind::Shutdown, "")?;
        let frame = self.expect_frame()?;
        match frame.kind {
            FrameKind::ShutdownAck => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "expected SHUTDOWN_ACK, got {other:?}"
            ))),
        }
    }
}

/// An in-flight sweep's result stream.
///
/// Cells arrive strictly in grid index order.  Drive the stream with
/// [`SweepStream::next_cell`] for incremental consumption, or call
/// [`SweepStream::into_report`] to drain everything into a
/// [`SweepReport`].
#[derive(Debug)]
pub struct SweepStream<'a> {
    client: &'a mut ServeClient,
    accepted: Accepted,
    cells: Vec<SweepCellReport>,
    done: Option<Done>,
}

impl SweepStream<'_> {
    /// The server's admission reply (total cells, checkpoint-resumed count).
    #[must_use]
    pub const fn accepted(&self) -> &Accepted {
        &self.accepted
    }

    /// The completion marker, once the stream has ended.
    #[must_use]
    pub const fn done(&self) -> Option<&Done> {
        self.done.as_ref()
    }

    /// Receives the next cell; `Ok(None)` after the DONE frame.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] when the server aborts the sweep; otherwise
    /// wire or protocol failures.
    pub fn next_cell(&mut self) -> Result<Option<&SweepCellReport>, ServeError> {
        if self.done.is_some() {
            return Ok(None);
        }
        let frame = self.client.expect_frame()?;
        match frame.kind {
            FrameKind::Cell => {
                let cell = decode_cell(frame.text()?)?;
                self.cells.push(cell);
                Ok(self.cells.last())
            }
            FrameKind::Done => {
                self.done = Some(Done::decode(frame.text()?)?);
                Ok(None)
            }
            FrameKind::Error => Err(ServeError::Remote(
                ErrorReply::decode(frame.text()?)?.reason,
            )),
            other => Err(ServeError::Protocol(format!(
                "expected CELL, DONE or ERROR, got {other:?}"
            ))),
        }
    }

    /// Drains the stream and assembles the full report.  The summaries are
    /// recomputed exactly as [`SweepRunner`](teg_sim::SweepRunner) computes
    /// them, so under a deterministic request the result compares equal to
    /// the in-process report.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] when the server aborts the sweep; otherwise
    /// wire or protocol failures.
    pub fn into_report(mut self) -> Result<SweepReport, ServeError> {
        while self.next_cell()?.is_some() {}
        let done = self
            .done
            .as_ref()
            .expect("loop above only exits at DONE or via an error");
        Ok(SweepReport::from_cells(self.cells, done.thermal_solves))
    }
}

/// Reconnect/backoff tuning of a [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total SUBMIT attempts (first try included) before giving up.
    pub max_attempts: usize,
    /// Backoff before the second attempt; doubles per further attempt.
    pub base_delay: Duration,
    /// Ceiling on the (pre-jitter) backoff delay.
    pub max_delay: Duration,
    /// Longest mid-stream silence tolerated before the connection is
    /// declared dead and re-dialled.
    pub stall_timeout: Duration,
    /// Seed of the jitter stream.  Backoff delays are a pure function of
    /// this seed, so a retry schedule can be replayed exactly.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 16,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(2),
            stall_timeout: Duration::from_secs(30),
            seed: 0x7E65_EED5,
        }
    }
}

impl RetryPolicy {
    /// The pre-jitter delay before attempt `attempt` (1-based; attempt 1 is
    /// the first *retry*): `base_delay · 2^(attempt-1)` capped at
    /// `max_delay`.
    fn backoff(&self, attempt: usize) -> Duration {
        let doublings = attempt.saturating_sub(1).min(20) as u32;
        let delay = self.base_delay.saturating_mul(1 << doublings);
        delay.min(self.max_delay)
    }
}

/// A uniform draw in `[0, 1)` from the shared deterministic generator.
fn unit(rng: &mut ChaCha8Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Whether a failed attempt is worth a reconnect.
///
/// Transport and framing failures always are — the journal preserves every
/// streamed cell, so a fresh connection resumes instead of restarting.
/// Rejections and remote errors are retriable only when they describe a
/// transient server condition (backpressure, a stale registry entry from our
/// own dropped connection, a deadline that the resumed run will beat);
/// semantic refusals (budget, checkpoint mismatch, bad spec) and protocol
/// violations (including a replay that diverged from received cells) are
/// final.
fn retriable(err: &ServeError) -> bool {
    const TRANSIENT_REMOTE: [&str; 6] = [
        "deadline exceeded",
        "interrupted",
        "busy",
        "desynchronised",
        "unrecognised frame",
        "idle timeout",
    ];
    match err {
        ServeError::Wire(_) => true,
        ServeError::Rejected(rejected) => {
            rejected.reason.contains("busy") || rejected.reason.contains("already running")
        }
        ServeError::Remote(reason) => TRANSIENT_REMOTE.iter().any(|t| reason.contains(t)),
        ServeError::Protocol(_) => false,
    }
}

/// A client that survives connection flaps, server deadlines and transient
/// backpressure by reconnecting and resuming.
///
/// [`run`](ResilientClient::run) drives one sweep to completion across as
/// many connections as it takes (bounded by
/// [`RetryPolicy::max_attempts`]).  On every reconnect the same id is
/// resubmitted; the server replays the journalled prefix, which is verified
/// byte-for-byte against the cells already received before fresh cells are
/// spliced on.  Progress is monotonic across retries because the server
/// journals each cell *before* streaming it.
///
/// Requires a checkpointing server
/// ([`ServerConfig::checkpoint_dir`](crate::ServerConfig::checkpoint_dir))
/// for mid-stream resume; against a non-checkpointing server a reconnect
/// simply re-runs the sweep from the start, which still converges but
/// re-solves finished cells.
#[derive(Debug, Clone)]
pub struct ResilientClient {
    addr: String,
    max_frame: usize,
    policy: RetryPolicy,
}

impl ResilientClient {
    /// Creates a client for `addr` with the default [`RetryPolicy`].
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            max_frame: MAX_FRAME,
            policy: RetryPolicy::default(),
        }
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the frame cap (must match the server's to exchange large
    /// cells).
    #[must_use]
    pub const fn frame_cap(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame;
        self
    }

    /// Runs one sweep to completion, reconnecting and resuming as needed.
    ///
    /// # Errors
    ///
    /// The last attempt's error once the retry budget is exhausted, or
    /// immediately for non-retriable failures (semantic rejection, protocol
    /// violation, replay divergence).
    pub fn run(&self, request: &SubmitRequest) -> Result<ResilientReport, ServeError> {
        // An encode failure is local and deterministic: fail fast instead
        // of burning the retry budget on it.
        let payload = request.encode()?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.policy.seed);
        let mut cells: Vec<String> = Vec::new();
        let mut attempts = 0;
        loop {
            attempts += 1;
            match self.attempt(&payload, &mut cells) {
                Ok((accepted, done)) => {
                    return Ok(ResilientReport {
                        accepted,
                        cells,
                        done,
                        attempts,
                    })
                }
                Err(err) => {
                    if !retriable(&err) || attempts >= self.policy.max_attempts.max(1) {
                        return Err(err);
                    }
                    // Capped exponential backoff with seeded jitter in
                    // [0.5, 1.0]× so synchronised clients de-correlate.
                    let delay = self
                        .policy
                        .backoff(attempts)
                        .mul_f64(0.5 + 0.5 * unit(&mut rng));
                    thread::sleep(delay);
                }
            }
        }
    }

    /// One connection's worth of progress: dial, submit, verify the replayed
    /// prefix against `cells`, splice fresh cells on, and return the
    /// completion pair — or fail with the error that ended the connection
    /// (every cell received before the failure stays in `cells`).
    fn attempt(
        &self,
        payload: &str,
        cells: &mut Vec<String>,
    ) -> Result<(Accepted, Done), ServeError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true)?;
        // The short read timeout turns silence into Idle outcomes, which
        // next_frame converts into a stall verdict after stall_timeout.
        stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        write_frame(
            &mut stream,
            FrameKind::Submit,
            payload.as_bytes(),
            self.max_frame,
        )?;

        let frame = self.next_frame(&mut stream)?;
        let accepted = match frame.kind {
            FrameKind::Accepted => Accepted::decode(frame.text()?)?,
            FrameKind::Rejected => {
                return Err(ServeError::Rejected(Rejected::decode(frame.text()?)?))
            }
            FrameKind::Error => {
                return Err(ServeError::Remote(
                    ErrorReply::decode(frame.text()?)?.reason,
                ))
            }
            other => {
                return Err(ServeError::Protocol(format!(
                    "expected ACCEPTED or REJECTED, got {other:?}"
                )))
            }
        };

        let mut position = 0usize;
        loop {
            let frame = self.next_frame(&mut stream)?;
            match frame.kind {
                FrameKind::Cell => {
                    let payload = frame.text()?;
                    if let Some(seen) = cells.get(position) {
                        // The replayed journal prefix must equal what the
                        // interrupted connection already delivered; anything
                        // else breaks the bit-identical-stream contract and
                        // is final, not retriable.
                        if seen != payload {
                            return Err(ServeError::Protocol(format!(
                                "resume replay diverged at cell {position}: \
                                 journalled bytes differ from the cell already received"
                            )));
                        }
                    } else {
                        cells.push(payload.to_owned());
                    }
                    position += 1;
                }
                FrameKind::Done => {
                    let done = Done::decode(frame.text()?)?;
                    if cells.len() != accepted.cells {
                        return Err(ServeError::Protocol(format!(
                            "DONE after {} cells, expected {}",
                            cells.len(),
                            accepted.cells
                        )));
                    }
                    return Ok((accepted, done));
                }
                FrameKind::Error => {
                    return Err(ServeError::Remote(
                        ErrorReply::decode(frame.text()?)?.reason,
                    ))
                }
                other => {
                    return Err(ServeError::Protocol(format!(
                        "expected CELL, DONE or ERROR, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Reads the next frame, converting silence past
    /// [`RetryPolicy::stall_timeout`] and EOF into retriable wire errors.
    fn next_frame(&self, stream: &mut TcpStream) -> Result<Frame, ServeError> {
        let deadline = Instant::now() + self.policy.stall_timeout;
        loop {
            match read_frame(stream, self.max_frame) {
                Ok(ReadOutcome::Frame(frame)) => return Ok(frame),
                Ok(ReadOutcome::Idle) => {
                    if Instant::now() >= deadline {
                        return Err(ServeError::Wire(WireError::Io(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "no frame within the stall timeout",
                        ))));
                    }
                }
                Ok(ReadOutcome::Eof) => {
                    return Err(ServeError::Wire(WireError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-stream",
                    ))))
                }
                Err(err) => return Err(ServeError::Wire(err)),
            }
        }
    }
}

/// The completed sweep a [`ResilientClient`] assembled, with the raw frame
/// payloads kept for byte-level comparison against an undisturbed run.
#[derive(Debug, Clone)]
pub struct ResilientReport {
    accepted: Accepted,
    cells: Vec<String>,
    done: Done,
    attempts: usize,
}

impl ResilientReport {
    /// The admission reply of the attempt that completed the sweep (its
    /// `resumed` count reflects that attempt's checkpoint replay).
    #[must_use]
    pub const fn accepted(&self) -> &Accepted {
        &self.accepted
    }

    /// The completion marker as received (its `executed`/`resumed` split
    /// reflects the final attempt, not the whole retried session).
    #[must_use]
    pub const fn done(&self) -> &Done {
        &self.done
    }

    /// Raw CELL payloads in grid order, exactly as streamed.
    #[must_use]
    pub fn cell_payloads(&self) -> &[String] {
        &self.cells
    }

    /// Connections it took to finish the sweep (1 = no fault seen).
    #[must_use]
    pub const fn attempts(&self) -> usize {
        self.attempts
    }

    /// The concatenated CELL payloads followed by the completion marker *as
    /// an undisturbed run would have streamed it* (`executed` = every cell,
    /// `resumed` = 0).  The received DONE's executed/resumed split depends
    /// on where faults happened to land, so byte-identity against a clean
    /// run is asserted on this canonical form; everything else in the
    /// stream is compared raw.
    #[must_use]
    pub fn canonical_stream(&self) -> String {
        let mut out = String::new();
        for cell in &self.cells {
            out.push_str(cell);
        }
        let canonical = Done {
            id: self.done.id.clone(),
            thermal_solves: self.done.thermal_solves,
            executed: self.cells.len(),
            resumed: 0,
        };
        out.push_str(&canonical.encode());
        out
    }

    /// Decodes the cells and assembles the full [`SweepReport`], equal to
    /// what an in-process [`SweepRunner`](teg_sim::SweepRunner) would have
    /// produced for the same request.
    ///
    /// # Errors
    ///
    /// [`ServeError::Wire`] when a stored payload fails to decode (possible
    /// only if the server journalled malformed bytes).
    pub fn into_report(self) -> Result<SweepReport, ServeError> {
        let mut decoded = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            decoded.push(decode_cell(cell)?);
        }
        Ok(SweepReport::from_cells(decoded, self.done.thermal_solves))
    }
}
