//! A blocking wire-level client for the sweep service.
//!
//! [`ServeClient`] owns one connection and offers the full protocol:
//! [`submit`](ServeClient::submit) returns a [`SweepStream`] that yields
//! cells as the server streams them and closes into a
//! [`SweepReport`] equal to what an in-process
//! [`SweepRunner`](teg_sim::SweepRunner) would have produced.

use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};

use teg_sim::{SweepCellReport, SweepReport};

use crate::codec::decode_cell;
use crate::protocol::{Accepted, Cancel, Done, ErrorReply, Rejected, StatsReply, SubmitRequest};
use crate::wire::{read_frame, write_frame, Frame, FrameKind, ReadOutcome, WireError, MAX_FRAME};

/// Client-side failures.
#[derive(Debug)]
pub enum ServeError {
    /// Framing or transport failure.
    Wire(WireError),
    /// The server refused the request before doing any work.
    Rejected(Rejected),
    /// The server reported a failure after admission (an ERROR frame).
    Remote(String),
    /// The server sent something the protocol does not allow here.
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Wire(err) => write!(f, "wire error: {err}"),
            Self::Rejected(rejected) => {
                write!(f, "request `{}` rejected: {}", rejected.id, rejected.reason)
            }
            Self::Remote(reason) => write!(f, "server error: {reason}"),
            Self::Protocol(reason) => write!(f, "protocol violation: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WireError> for ServeError {
    fn from(err: WireError) -> Self {
        Self::Wire(err)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(err: std::io::Error) -> Self {
        Self::Wire(WireError::Io(err))
    }
}

/// One connection to a sweep service.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    max_frame: usize,
}

impl ServeClient {
    /// Connects with the default frame cap.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        Self::connect_with_frame_cap(addr, MAX_FRAME)
    }

    /// Connects with an explicit frame cap (must match the server's to
    /// exchange large cells).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_with_frame_cap(
        addr: impl ToSocketAddrs,
        max_frame: usize,
    ) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, max_frame })
    }

    fn send(&mut self, kind: FrameKind, payload: &str) -> Result<(), ServeError> {
        write_frame(&mut self.stream, kind, payload.as_bytes(), self.max_frame)?;
        Ok(())
    }

    /// Reads the next frame, treating EOF as a protocol violation (the
    /// caller expects a reply).
    fn expect_frame(&mut self) -> Result<Frame, ServeError> {
        loop {
            match read_frame(&mut self.stream, self.max_frame)? {
                ReadOutcome::Frame(frame) => return Ok(frame),
                ReadOutcome::Idle => continue,
                ReadOutcome::Eof => {
                    return Err(ServeError::Protocol(
                        "server closed the connection mid-exchange".to_owned(),
                    ))
                }
            }
        }
    }

    /// Submits a sweep and returns the result stream after the server's
    /// admission decision.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] when the server refuses the request;
    /// otherwise wire or protocol failures.
    pub fn submit(&mut self, request: &SubmitRequest) -> Result<SweepStream<'_>, ServeError> {
        let payload = request.encode()?;
        self.send(FrameKind::Submit, &payload)?;
        let frame = self.expect_frame()?;
        let accepted = match frame.kind {
            FrameKind::Accepted => Accepted::decode(frame.text()?)?,
            FrameKind::Rejected => {
                return Err(ServeError::Rejected(Rejected::decode(frame.text()?)?))
            }
            other => {
                return Err(ServeError::Protocol(format!(
                    "expected ACCEPTED or REJECTED, got {other:?}"
                )))
            }
        };
        Ok(SweepStream {
            client: self,
            accepted,
            cells: Vec::new(),
            done: None,
        })
    }

    /// Fetches the service counters.
    ///
    /// # Errors
    ///
    /// Wire or protocol failures.
    pub fn stats(&mut self) -> Result<StatsReply, ServeError> {
        self.send(FrameKind::Stats, "")?;
        let frame = self.expect_frame()?;
        match frame.kind {
            FrameKind::StatsReply => Ok(StatsReply::decode(frame.text()?)?),
            other => Err(ServeError::Protocol(format!(
                "expected STATS_REPLY, got {other:?}"
            ))),
        }
    }

    /// Cancels the named request (usually one submitted on a *different*
    /// connection).
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] when no such request is active; otherwise wire
    /// or protocol failures.
    pub fn cancel(&mut self, id: &str) -> Result<(), ServeError> {
        let payload = Cancel { id: id.to_owned() }.encode();
        self.send(FrameKind::Cancel, &payload)?;
        let frame = self.expect_frame()?;
        match frame.kind {
            FrameKind::Accepted => Ok(()),
            FrameKind::Error => Err(ServeError::Remote(
                ErrorReply::decode(frame.text()?)?.reason,
            )),
            other => Err(ServeError::Protocol(format!(
                "expected ACCEPTED or ERROR, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to shut down and waits for the acknowledgement.
    ///
    /// # Errors
    ///
    /// Wire or protocol failures.
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        self.send(FrameKind::Shutdown, "")?;
        let frame = self.expect_frame()?;
        match frame.kind {
            FrameKind::ShutdownAck => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "expected SHUTDOWN_ACK, got {other:?}"
            ))),
        }
    }
}

/// An in-flight sweep's result stream.
///
/// Cells arrive strictly in grid index order.  Drive the stream with
/// [`SweepStream::next_cell`] for incremental consumption, or call
/// [`SweepStream::into_report`] to drain everything into a
/// [`SweepReport`].
#[derive(Debug)]
pub struct SweepStream<'a> {
    client: &'a mut ServeClient,
    accepted: Accepted,
    cells: Vec<SweepCellReport>,
    done: Option<Done>,
}

impl SweepStream<'_> {
    /// The server's admission reply (total cells, checkpoint-resumed count).
    #[must_use]
    pub const fn accepted(&self) -> &Accepted {
        &self.accepted
    }

    /// The completion marker, once the stream has ended.
    #[must_use]
    pub const fn done(&self) -> Option<&Done> {
        self.done.as_ref()
    }

    /// Receives the next cell; `Ok(None)` after the DONE frame.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] when the server aborts the sweep; otherwise
    /// wire or protocol failures.
    pub fn next_cell(&mut self) -> Result<Option<&SweepCellReport>, ServeError> {
        if self.done.is_some() {
            return Ok(None);
        }
        let frame = self.client.expect_frame()?;
        match frame.kind {
            FrameKind::Cell => {
                let cell = decode_cell(frame.text()?)?;
                self.cells.push(cell);
                Ok(self.cells.last())
            }
            FrameKind::Done => {
                self.done = Some(Done::decode(frame.text()?)?);
                Ok(None)
            }
            FrameKind::Error => Err(ServeError::Remote(
                ErrorReply::decode(frame.text()?)?.reason,
            )),
            other => Err(ServeError::Protocol(format!(
                "expected CELL, DONE or ERROR, got {other:?}"
            ))),
        }
    }

    /// Drains the stream and assembles the full report.  The summaries are
    /// recomputed exactly as [`SweepRunner`](teg_sim::SweepRunner) computes
    /// them, so under a deterministic request the result compares equal to
    /// the in-process report.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] when the server aborts the sweep; otherwise
    /// wire or protocol failures.
    pub fn into_report(mut self) -> Result<SweepReport, ServeError> {
        while self.next_cell()?.is_some() {}
        let done = self
            .done
            .as_ref()
            .expect("loop above only exits at DONE or via an error");
        Ok(SweepReport::from_cells(self.cells, done.thermal_solves))
    }
}
