//! Bit-exact text encoding of sweep cell reports.
//!
//! A CELL frame's payload is line-oriented UTF-8.  Every `f64` travels as the
//! sixteen-digit lowercase hex of its IEEE-754 bit pattern, so decoding
//! reconstructs the *identical* bits — no shortest-representation or
//! rounding concerns.  Aggregates ([`SimulationReport`]'s energy totals and
//! [`SweepReport`](teg_sim::SweepReport)'s summaries) are *not* transported:
//! the constructors recompute them from the records in record order, which is
//! exactly how the in-process runner produced them, so a decoded report
//! compares equal (`PartialEq`) to the original.
//!
//! Layout (one cell):
//!
//! ```text
//! cell <index>
//! modules <module_count>
//! seed <seed>
//! variation <variation>
//! drive <label>
//! fault <label>
//! lineup <label>
//! step <f64 hex>
//! reports <n>
//! scheme <name>            ┐
//! switches <count>         │ repeated n times; each scheme block carries
//! runtime <total> <max> <invocations> <faulted>
//! records <m>              │ its m per-step records
//! r <time> <array> <net> <delivered> <ideal> <groups> <switched> <overhead> <comp> <faults> <events>
//! ```
//!
//! Labels and scheme names occupy the rest of their line, so they may contain
//! spaces; nothing else in the grammar is positional past the first token.

use teg_reconfig::RuntimeStats;
use teg_sim::{CellKey, ComparisonReport, SimulationReport, StepRecord, SweepCellReport};
use teg_units::{Joules, Seconds, Watts};

use crate::wire::WireError;

/// Encodes an `f64` as the sixteen-digit lowercase hex of its bit pattern.
#[must_use]
pub fn f64_hex(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

/// Decodes an `f64` from [`f64_hex`] output.
///
/// # Errors
///
/// Returns [`WireError::Malformed`] when the token is not sixteen hex digits.
pub fn parse_f64_hex(token: &str) -> Result<f64, WireError> {
    if token.len() != 16 {
        return Err(malformed(format!("bad f64 hex token `{token}`")));
    }
    u64::from_str_radix(token, 16)
        .map(f64::from_bits)
        .map_err(|_| malformed(format!("bad f64 hex token `{token}`")))
}

fn malformed(reason: impl Into<String>) -> WireError {
    WireError::Malformed {
        reason: reason.into(),
    }
}

/// Serialises one cell report into a CELL frame payload.
#[must_use]
pub fn encode_cell(cell: &SweepCellReport) -> String {
    let key = cell.key();
    let mut out = String::new();
    out.push_str(&format!("cell {}\n", key.index()));
    out.push_str(&format!("modules {}\n", key.module_count()));
    out.push_str(&format!("seed {}\n", key.seed()));
    out.push_str(&format!("variation {}\n", key.variation()));
    out.push_str(&format!("drive {}\n", key.drive()));
    out.push_str(&format!("fault {}\n", key.fault()));
    out.push_str(&format!("lineup {}\n", key.lineup()));
    let reports = cell.report().reports();
    let step = reports.first().map(|r| r.step()).unwrap_or(Seconds::ZERO);
    out.push_str(&format!("step {}\n", f64_hex(step.value())));
    out.push_str(&format!("reports {}\n", reports.len()));
    for report in reports {
        out.push_str(&format!("scheme {}\n", report.scheme()));
        out.push_str(&format!("switches {}\n", report.switch_count()));
        let rt = report.runtime();
        out.push_str(&format!(
            "runtime {} {} {} {}\n",
            f64_hex(rt.total().value()),
            f64_hex(rt.max().value()),
            rt.invocations(),
            rt.faulted_invocations(),
        ));
        out.push_str(&format!("records {}\n", report.records().len()));
        for r in report.records() {
            out.push_str(&format!(
                "r {} {} {} {} {} {} {} {} {} {} {}\n",
                f64_hex(r.time().value()),
                f64_hex(r.array_power().value()),
                f64_hex(r.net_power().value()),
                f64_hex(r.delivered_power().value()),
                f64_hex(r.ideal_power().value()),
                r.group_count(),
                u8::from(r.switched()),
                f64_hex(r.overhead_energy().value()),
                f64_hex(r.computation().value()),
                r.faults_active(),
                r.fault_events(),
            ));
        }
    }
    out
}

/// Cursor over the payload lines with keyed-line helpers.
struct Lines<'a> {
    iter: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            iter: text.lines(),
            line_no: 0,
        }
    }

    /// The rest of the next line after the expected key.
    fn rest(&mut self, key: &str) -> Result<&'a str, WireError> {
        self.line_no += 1;
        let line = self
            .iter
            .next()
            .ok_or_else(|| malformed(format!("payload ended before `{key}` line")))?;
        line.strip_prefix(key)
            .and_then(|rest| {
                rest.strip_prefix(' ')
                    .or(Some(rest).filter(|r| r.is_empty()))
            })
            .ok_or_else(|| {
                malformed(format!(
                    "line {}: expected `{key} …`, got `{line}`",
                    self.line_no
                ))
            })
    }

    fn usize(&mut self, key: &str) -> Result<usize, WireError> {
        let rest = self.rest(key)?;
        rest.parse()
            .map_err(|_| malformed(format!("`{key}` value `{rest}` is not an integer")))
    }

    fn u64(&mut self, key: &str) -> Result<u64, WireError> {
        let rest = self.rest(key)?;
        rest.parse()
            .map_err(|_| malformed(format!("`{key}` value `{rest}` is not an integer")))
    }
}

fn fields<'a, const N: usize>(line: &'a str, what: &str) -> Result<[&'a str; N], WireError> {
    let mut out = [""; N];
    let mut split = line.split(' ');
    for slot in &mut out {
        *slot = split
            .next()
            .ok_or_else(|| malformed(format!("{what} line has too few fields: `{line}`")))?;
    }
    if split.next().is_some() {
        return Err(malformed(format!(
            "{what} line has too many fields: `{line}`"
        )));
    }
    Ok(out)
}

/// Rebuilds a cell report from a CELL frame payload, bit-identically.
///
/// # Errors
///
/// Returns [`WireError::Malformed`] naming the offending line when the
/// payload deviates from the grammar.
pub fn decode_cell(text: &str) -> Result<SweepCellReport, WireError> {
    let mut lines = Lines::new(text);
    let index = lines.usize("cell")?;
    let modules = lines.usize("modules")?;
    let seed = lines.u64("seed")?;
    let variation = lines.usize("variation")?;
    let drive = lines.rest("drive")?.to_owned();
    let fault = lines.rest("fault")?.to_owned();
    let lineup = lines.rest("lineup")?.to_owned();
    let step = Seconds::new(parse_f64_hex(lines.rest("step")?)?);
    let report_count = lines.usize("reports")?;
    let mut reports = Vec::with_capacity(report_count);
    for _ in 0..report_count {
        let scheme = lines.rest("scheme")?.to_owned();
        let switches = lines.usize("switches")?;
        let [total, max, invocations, faulted] = fields(lines.rest("runtime")?, "runtime")?;
        let runtime = RuntimeStats::from_parts(
            Seconds::new(parse_f64_hex(total)?),
            Seconds::new(parse_f64_hex(max)?),
            invocations
                .parse()
                .map_err(|_| malformed("runtime invocations is not an integer"))?,
            faulted
                .parse()
                .map_err(|_| malformed("runtime faulted count is not an integer"))?,
        );
        let record_count = lines.usize("records")?;
        let mut records = Vec::with_capacity(record_count);
        for _ in 0..record_count {
            let [time, array, net, delivered, ideal, groups, switched, overhead, comp, faults, events] =
                fields(lines.rest("r")?, "record")?;
            let switched = match switched {
                "0" => false,
                "1" => true,
                other => {
                    return Err(malformed(format!("record switched flag `{other}`")));
                }
            };
            let record = StepRecord::new(
                Seconds::new(parse_f64_hex(time)?),
                Watts::new(parse_f64_hex(array)?),
                Watts::new(parse_f64_hex(net)?),
                Watts::new(parse_f64_hex(delivered)?),
                Watts::new(parse_f64_hex(ideal)?),
                groups
                    .parse()
                    .map_err(|_| malformed("record group count is not an integer"))?,
                switched,
                Joules::new(parse_f64_hex(overhead)?),
                Seconds::new(parse_f64_hex(comp)?),
            )
            .with_faults(
                faults
                    .parse()
                    .map_err(|_| malformed("record fault count is not an integer"))?,
                events
                    .parse()
                    .map_err(|_| malformed("record event count is not an integer"))?,
            );
            records.push(record);
        }
        reports.push(SimulationReport::new(
            scheme, records, step, switches, runtime,
        ));
    }
    let key = CellKey::from_parts(index, modules, seed, drive, variation, fault, lineup);
    Ok(SweepCellReport::from_parts(
        key,
        ComparisonReport::from_reports(reports),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_sim::{RuntimePolicy, ScenarioGrid, SchemeLineup, SweepRunner};

    fn sample_cells() -> Vec<SweepCellReport> {
        let grid = ScenarioGrid::builder()
            .module_counts([6])
            .seeds([3])
            .duration_seconds(8)
            .lineups([SchemeLineup::parse("paper-fixed:0.002").unwrap()])
            .build()
            .unwrap();
        let report = SweepRunner::new()
            .workers(1)
            .runtime_policy(RuntimePolicy::Fixed(Seconds::new(0.002)))
            .run(&grid)
            .unwrap();
        report.cells().to_vec()
    }

    #[test]
    fn f64_hex_is_bit_exact_for_awkward_values() {
        for v in [
            0.0,
            -0.0,
            1.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1.0 / 3.0,
            6.02e23,
        ] {
            let decoded = parse_f64_hex(&f64_hex(v)).unwrap();
            assert_eq!(v.to_bits(), decoded.to_bits(), "{v}");
        }
        let nan = parse_f64_hex(&f64_hex(f64::NAN)).unwrap();
        assert_eq!(f64::NAN.to_bits(), nan.to_bits());
        assert!(parse_f64_hex("xyz").is_err());
        assert!(parse_f64_hex("00").is_err());
        assert!(parse_f64_hex("zzzzzzzzzzzzzzzz").is_err());
    }

    #[test]
    fn real_cells_round_trip_bit_identically() {
        for cell in sample_cells() {
            let payload = encode_cell(&cell);
            let decoded = decode_cell(&payload).unwrap();
            assert_eq!(decoded, cell);
            // And re-encoding is byte-identical — the stream is canonical.
            assert_eq!(encode_cell(&decoded), payload);
        }
    }

    #[test]
    fn malformed_payloads_name_the_problem() {
        let cell = &sample_cells()[0];
        let good = encode_cell(cell);
        for (broken, needle) in [
            (String::from("cell zero\n"), "not an integer"),
            (String::from("bogus 0\n"), "expected `cell"),
            (good.replace("reports 4", "reports 9"), "payload ended"),
            (good.replacen("r ", "r 0123456789abcdef ", 1), "too many"),
            (String::new(), "payload ended"),
        ] {
            let err = decode_cell(&broken).unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
