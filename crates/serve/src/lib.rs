//! Sweep service daemon: simulate-as-a-service over a length-prefixed TCP
//! protocol.
//!
//! This crate turns the in-process sweep machinery of
//! [`teg_sim`] into a long-running daemon.  A [`SweepServer`]
//! accepts scenario/sweep requests over a hand-rolled, zero-dependency frame
//! protocol, multiplexes them onto a persistent worker pool that shares one
//! [`TraceCache`](teg_sim::TraceCache) across requests, and streams per-cell
//! results back incrementally — so a monitoring client renders progress while
//! a sweep runs instead of waiting for the final report.
//!
//! # Layers
//!
//! * [`wire`] — `[u32 BE length][u8 kind][payload]` framing, with explicit
//!   outcomes for clean EOF, idle timeouts, truncation and oversized
//!   prefixes;
//! * [`codec`] — the bit-exact text encoding of sweep cells (every `f64`
//!   travels as its IEEE-754 bit pattern in hex);
//! * [`protocol`] — the typed control payloads (SUBMIT, ACCEPTED, REJECTED,
//!   DONE, STATS, CANCEL, …);
//! * [`checkpoint`] — append-only journals that let an interrupted sweep
//!   resume without re-solving a single finished cell;
//! * [`server`] — admission control, budgets, deadlines, the supervised
//!   worker pool and the streaming loop;
//! * [`client`] — a blocking wire-level client plus [`ResilientClient`],
//!   which reconnects and resumes across transport faults;
//! * [`chaos`] — a deterministic fault-injecting TCP proxy for chaos
//!   testing the whole stack.
//!
//! # Example
//!
//! ```
//! use teg_serve::{ServeClient, ServerConfig, SubmitRequest, SweepServer};
//! use teg_sim::{GridSpec, RuntimePolicy};
//! use teg_units::Seconds;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = SweepServer::start(ServerConfig::default())?;
//! let mut client = ServeClient::connect(server.addr())?;
//! let request = SubmitRequest {
//!     id: "doc-example".into(),
//!     grid: GridSpec::parse("modules=6|seeds=1|drive=city:5|lineup=paper-fixed:0.002")?,
//!     policy: RuntimePolicy::Fixed(Seconds::new(0.002)),
//! };
//! let report = client.submit(&request)?.into_report()?;
//! assert_eq!(report.cells().len(), 1);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod checkpoint;
pub mod client;
pub mod codec;
pub mod protocol;
pub mod server;
pub mod wire;

pub use chaos::{ChaosPlan, ChaosProxy, ChaosStats, FaultAction, FaultSchedule};
pub use client::{
    ResilientClient, ResilientReport, RetryPolicy, ServeClient, ServeError, SweepStream,
};
pub use protocol::{Accepted, Cancel, Done, ErrorReply, Rejected, StatsReply, SubmitRequest};
pub use server::{ServerConfig, SweepServer};
pub use wire::{read_frame, write_frame, Frame, FrameKind, ReadOutcome, WireError, MAX_FRAME};
