//! Typed payloads for the control frames of the sweep service.
//!
//! Control payloads are small line-oriented `key value` texts, one key per
//! line, in a fixed order.  Free-text fields (the request id, reject/error
//! reasons) occupy the rest of their line; reasons are sanitised to a single
//! line before they hit the wire.  The heavyweight CELL payload lives in
//! [`codec`](crate::codec).

use teg_sim::{GridSpec, RuntimePolicy};
use teg_units::Seconds;

use crate::wire::WireError;

/// Longest accepted request id.
pub const MAX_ID_LEN: usize = 64;

fn malformed(reason: impl Into<String>) -> WireError {
    WireError::Malformed {
        reason: reason.into(),
    }
}

/// Checks a client-chosen request id: 1–64 characters from
/// `[A-Za-z0-9._-]`.  Ids name checkpoint files, so the charset is
/// deliberately path-safe.
///
/// # Errors
///
/// Returns [`WireError::Malformed`] describing the violation.
pub fn validate_id(id: &str) -> Result<(), WireError> {
    if id.is_empty() || id.len() > MAX_ID_LEN {
        return Err(malformed(format!(
            "request id must be 1–{MAX_ID_LEN} characters"
        )));
    }
    if !id
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    {
        return Err(malformed(
            "request id may only contain ASCII letters, digits, `.`, `_` and `-`",
        ));
    }
    Ok(())
}

/// Collapses a free-text reason onto one line for the wire.
#[must_use]
pub fn sanitise_reason(reason: &str) -> String {
    reason.replace(['\n', '\r'], " ")
}

/// Renders a runtime policy as its wire token: `measured` or
/// `fixed:<seconds>` with the exact-round-trip `f64` display form.
#[must_use]
pub fn policy_token(policy: RuntimePolicy) -> String {
    match policy {
        RuntimePolicy::Measured => "measured".to_owned(),
        RuntimePolicy::Fixed(secs) => format!("fixed:{}", secs.value()),
    }
}

/// Parses a [`policy_token`] back into a policy.
///
/// # Errors
///
/// Returns [`WireError::Malformed`] for unknown tokens or a non-finite /
/// negative fixed charge.
pub fn parse_policy(token: &str) -> Result<RuntimePolicy, WireError> {
    if token == "measured" {
        return Ok(RuntimePolicy::Measured);
    }
    if let Some(secs) = token.strip_prefix("fixed:") {
        let value: f64 = secs
            .parse()
            .map_err(|_| malformed(format!("bad fixed-policy seconds `{secs}`")))?;
        if !value.is_finite() || value < 0.0 {
            return Err(malformed(format!(
                "fixed-policy seconds must be finite and non-negative, got `{secs}`"
            )));
        }
        return Ok(RuntimePolicy::Fixed(Seconds::new(value)));
    }
    Err(malformed(format!("unknown runtime policy `{token}`")))
}

/// One `key value` line cursor shared by the control-payload decoders.
struct Lines<'a>(std::str::Lines<'a>);

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Self(text.lines())
    }

    fn rest(&mut self, key: &str) -> Result<&'a str, WireError> {
        let line = self
            .0
            .next()
            .ok_or_else(|| malformed(format!("payload ended before `{key}` line")))?;
        match line.strip_prefix(key) {
            Some("") => Ok(""),
            Some(rest) => rest
                .strip_prefix(' ')
                .ok_or_else(|| malformed(format!("expected `{key} …`, got `{line}`"))),
            None => Err(malformed(format!("expected `{key} …`, got `{line}`"))),
        }
    }

    fn usize(&mut self, key: &str) -> Result<usize, WireError> {
        let rest = self.rest(key)?;
        rest.parse()
            .map_err(|_| malformed(format!("`{key}` value `{rest}` is not an integer")))
    }

    fn done(mut self) -> Result<(), WireError> {
        match self.0.next() {
            None => Ok(()),
            Some(extra) => Err(malformed(format!("unexpected trailing line `{extra}`"))),
        }
    }
}

/// A client's sweep submission.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Client-chosen id; also names the checkpoint journal.
    pub id: String,
    /// The sweep to run.
    pub grid: GridSpec,
    /// Runtime accounting policy for every cell.
    pub policy: RuntimePolicy,
}

impl SubmitRequest {
    /// Serialises the submission.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Malformed`] for an invalid id or a grid whose
    /// profiles cannot be expressed as a spec string.
    pub fn encode(&self) -> Result<String, WireError> {
        validate_id(&self.id)?;
        let grid = self
            .grid
            .spec()
            .map_err(|err| malformed(format!("grid is not spec-serialisable: {err}")))?;
        Ok(format!(
            "id {}\ngrid {}\npolicy {}\n",
            self.id,
            grid,
            policy_token(self.policy)
        ))
    }

    /// Parses a SUBMIT payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Malformed`] naming the offending line.
    pub fn decode(text: &str) -> Result<Self, WireError> {
        let mut lines = Lines::new(text);
        let id = lines.rest("id")?.to_owned();
        validate_id(&id)?;
        let grid = GridSpec::parse(lines.rest("grid")?)
            .map_err(|err| malformed(format!("bad grid spec: {err}")))?;
        let policy = parse_policy(lines.rest("policy")?)?;
        lines.done()?;
        Ok(Self { id, grid, policy })
    }
}

/// The server's admission reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accepted {
    /// Echo of the request id.
    pub id: String,
    /// Total cells in the sweep.
    pub cells: usize,
    /// Cells restored from a checkpoint (never re-solved).
    pub resumed: usize,
}

impl Accepted {
    /// Serialises the reply.
    #[must_use]
    pub fn encode(&self) -> String {
        format!(
            "id {}\ncells {}\nresumed {}\n",
            self.id, self.cells, self.resumed
        )
    }

    /// Parses an ACCEPTED payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Malformed`] naming the offending line.
    pub fn decode(text: &str) -> Result<Self, WireError> {
        let mut lines = Lines::new(text);
        let id = lines.rest("id")?.to_owned();
        let cells = lines.usize("cells")?;
        let resumed = lines.usize("resumed")?;
        lines.done()?;
        Ok(Self { id, cells, resumed })
    }
}

/// The server's refusal (backpressure, budget, parse failure, checkpoint
/// mismatch).  Rejection happens *before* any cell is solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected {
    /// Echo of the request id (empty when the id itself did not parse).
    pub id: String,
    /// One-line human-readable cause.
    pub reason: String,
}

impl Rejected {
    /// Serialises the reply, collapsing the reason onto one line.
    #[must_use]
    pub fn encode(&self) -> String {
        format!("id {}\nreason {}\n", self.id, sanitise_reason(&self.reason))
    }

    /// Parses a REJECTED payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Malformed`] naming the offending line.
    pub fn decode(text: &str) -> Result<Self, WireError> {
        let mut lines = Lines::new(text);
        let id = lines.rest("id")?.to_owned();
        let reason = lines.rest("reason")?.to_owned();
        lines.done()?;
        Ok(Self { id, reason })
    }
}

/// Completion marker closing a result stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Done {
    /// Echo of the request id.
    pub id: String,
    /// The grid's deterministic cold-cache thermal-solve budget
    /// ([`ScenarioGrid::expected_thermal_solves`](teg_sim::ScenarioGrid::expected_thermal_solves)),
    /// deliberately independent of cache warmth so repeated submissions
    /// stream byte-identical DONE frames.
    pub thermal_solves: usize,
    /// Cells actually solved by this run.
    pub executed: usize,
    /// Cells replayed from the checkpoint.
    pub resumed: usize,
}

impl Done {
    /// Serialises the reply.
    #[must_use]
    pub fn encode(&self) -> String {
        format!(
            "id {}\nthermal_solves {}\nexecuted {}\nresumed {}\n",
            self.id, self.thermal_solves, self.executed, self.resumed
        )
    }

    /// Parses a DONE payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Malformed`] naming the offending line.
    pub fn decode(text: &str) -> Result<Self, WireError> {
        let mut lines = Lines::new(text);
        let id = lines.rest("id")?.to_owned();
        let thermal_solves = lines.usize("thermal_solves")?;
        let executed = lines.usize("executed")?;
        let resumed = lines.usize("resumed")?;
        lines.done()?;
        Ok(Self {
            id,
            thermal_solves,
            executed,
            resumed,
        })
    }
}

/// A post-admission failure terminating a result stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// Echo of the request id.
    pub id: String,
    /// One-line human-readable cause.
    pub reason: String,
}

impl ErrorReply {
    /// Serialises the reply, collapsing the reason onto one line.
    #[must_use]
    pub fn encode(&self) -> String {
        format!("id {}\nreason {}\n", self.id, sanitise_reason(&self.reason))
    }

    /// Parses an ERROR payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Malformed`] naming the offending line.
    pub fn decode(text: &str) -> Result<Self, WireError> {
        let mut lines = Lines::new(text);
        let id = lines.rest("id")?.to_owned();
        let reason = lines.rest("reason")?.to_owned();
        lines.done()?;
        Ok(Self { id, reason })
    }
}

/// Cancellation of a named request from any connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cancel {
    /// The request to cancel.
    pub id: String,
}

impl Cancel {
    /// Serialises the request.
    #[must_use]
    pub fn encode(&self) -> String {
        format!("id {}\n", self.id)
    }

    /// Parses a CANCEL payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Malformed`] naming the offending line.
    pub fn decode(text: &str) -> Result<Self, WireError> {
        let mut lines = Lines::new(text);
        let id = lines.rest("id")?.to_owned();
        validate_id(&id)?;
        lines.done()?;
        Ok(Self { id })
    }
}

/// Service counters, answered to a STATS frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Requests admitted and not yet finished.
    pub active: usize,
    /// Cells sitting in the worker queue right now.
    pub queued_cells: usize,
    /// Requests that ran to DONE since the server started.
    pub completed_requests: usize,
    /// Entries in the shared trace cache.
    pub cache_len: usize,
    /// Trace-cache hits since start.
    pub cache_hits: usize,
    /// Trace-cache misses since start.
    pub cache_misses: usize,
    /// Traces evicted by the cache's capacity bound.
    pub cache_evictions: usize,
    /// Worker threads solving cells.
    pub workers: usize,
    /// Unique thermal keys the pre-solve planner enumerated across all
    /// admitted requests since start.
    pub presolve_planned: usize,
    /// Planned keys the planner actually solved ahead of cell dispatch
    /// (the rest were already warm in the cache, or failed and were left to
    /// the demand path).
    pub presolve_solved: usize,
    /// Dead worker threads the supervisor replaced since start.
    pub workers_respawned: usize,
    /// Connections currently open (handler threads alive).
    pub connections: usize,
    /// Accepts answered with a busy ERROR at the connection cap since
    /// start.
    pub connections_rejected: usize,
}

impl StatsReply {
    /// Serialises the counters.
    #[must_use]
    pub fn encode(&self) -> String {
        format!(
            "active {}\nqueued_cells {}\ncompleted_requests {}\ncache_len {}\ncache_hits {}\ncache_misses {}\ncache_evictions {}\nworkers {}\npresolve_planned {}\npresolve_solved {}\nworkers_respawned {}\nconnections {}\nconnections_rejected {}\n",
            self.active,
            self.queued_cells,
            self.completed_requests,
            self.cache_len,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.workers,
            self.presolve_planned,
            self.presolve_solved,
            self.workers_respawned,
            self.connections,
            self.connections_rejected
        )
    }

    /// Parses a STATS_REPLY payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Malformed`] naming the offending line.
    pub fn decode(text: &str) -> Result<Self, WireError> {
        let mut lines = Lines::new(text);
        let reply = Self {
            active: lines.usize("active")?,
            queued_cells: lines.usize("queued_cells")?,
            completed_requests: lines.usize("completed_requests")?,
            cache_len: lines.usize("cache_len")?,
            cache_hits: lines.usize("cache_hits")?,
            cache_misses: lines.usize("cache_misses")?,
            cache_evictions: lines.usize("cache_evictions")?,
            workers: lines.usize("workers")?,
            presolve_planned: lines.usize("presolve_planned")?,
            presolve_solved: lines.usize("presolve_solved")?,
            workers_respawned: lines.usize("workers_respawned")?,
            connections: lines.usize("connections")?,
            connections_rejected: lines.usize("connections_rejected")?,
        };
        lines.done()?;
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_including_fixed_policy_bits() {
        let request = SubmitRequest {
            id: "night-sweep.v2".into(),
            grid: GridSpec::parse("modules=8,12|seeds=1,2|drive=city:15").unwrap(),
            policy: RuntimePolicy::Fixed(Seconds::new(0.0021)),
        };
        let decoded = SubmitRequest::decode(&request.encode().unwrap()).unwrap();
        assert_eq!(decoded.id, request.id);
        assert_eq!(decoded.policy, request.policy);
        assert_eq!(decoded.grid.spec().unwrap(), request.grid.spec().unwrap());
        let measured = SubmitRequest {
            policy: RuntimePolicy::Measured,
            ..request
        };
        assert_eq!(
            SubmitRequest::decode(&measured.encode().unwrap())
                .unwrap()
                .policy,
            RuntimePolicy::Measured
        );
    }

    #[test]
    fn kernel_mode_rides_the_grid_token_over_the_wire() {
        use teg_units::KernelMode;

        let base = GridSpec::parse("modules=8,12|seeds=1,2|drive=city:15").unwrap();
        // A bit-exact (default) request omits the kernel field entirely, so
        // frames from clients that predate kernel modes are byte-identical
        // to frames from clients that spell the default out.
        let exact = SubmitRequest {
            id: "exact-sweep".into(),
            grid: base.clone(),
            policy: RuntimePolicy::Measured,
        };
        let exact_payload = exact.encode().unwrap();
        assert!(!exact_payload.contains("kernel"), "{exact_payload}");
        assert_eq!(
            exact_payload,
            "id exact-sweep\ngrid modules=8,12|seeds=1,2|drive=city:15|var=none|fault=healthy|lineup=paper\npolicy measured\n"
        );
        // A fast-lane request carries the mode inside the grid token — no
        // protocol change — and decodes back to a fast grid on the daemon.
        let fast = SubmitRequest {
            id: "fast-sweep".into(),
            grid: base.kernel_mode(KernelMode::Fast),
            policy: RuntimePolicy::Measured,
        };
        let fast_payload = fast.encode().unwrap();
        assert!(fast_payload.contains("|kernel=fast\n"), "{fast_payload}");
        let decoded = SubmitRequest::decode(&fast_payload).unwrap();
        assert!(decoded.grid.spec().unwrap().ends_with("|kernel=fast"));
        let grid = decoded.grid.to_builder().build().unwrap();
        assert_eq!(grid.kernel_mode(), KernelMode::Fast);
    }

    #[test]
    fn ids_are_validated_on_both_sides() {
        for bad in ["", "has space", "semi;colon", "a/b", &"x".repeat(65)] {
            assert!(validate_id(bad).is_err(), "{bad:?}");
            let payload = format!("id {bad}\ngrid modules=8\npolicy measured\n");
            assert!(SubmitRequest::decode(&payload).is_err(), "{bad:?}");
        }
        validate_id("ok-id_1.a").unwrap();
    }

    #[test]
    fn control_replies_round_trip() {
        let accepted = Accepted {
            id: "a".into(),
            cells: 12,
            resumed: 3,
        };
        assert_eq!(Accepted::decode(&accepted.encode()).unwrap(), accepted);
        let rejected = Rejected {
            id: "a".into(),
            reason: "queue full:\ntry later".into(),
        };
        let decoded = Rejected::decode(&rejected.encode()).unwrap();
        assert_eq!(decoded.reason, "queue full: try later");
        let done = Done {
            id: "a".into(),
            thermal_solves: 40,
            executed: 9,
            resumed: 3,
        };
        assert_eq!(Done::decode(&done.encode()).unwrap(), done);
        let error = ErrorReply {
            id: "a".into(),
            reason: "cell 4 failed".into(),
        };
        assert_eq!(ErrorReply::decode(&error.encode()).unwrap(), error);
        let cancel = Cancel { id: "a".into() };
        assert_eq!(Cancel::decode(&cancel.encode()).unwrap(), cancel);
        let stats = StatsReply {
            active: 1,
            queued_cells: 7,
            completed_requests: 4,
            cache_len: 9,
            cache_hits: 100,
            cache_misses: 11,
            cache_evictions: 2,
            workers: 8,
            presolve_planned: 12,
            presolve_solved: 10,
            workers_respawned: 1,
            connections: 3,
            connections_rejected: 5,
        };
        assert_eq!(StatsReply::decode(&stats.encode()).unwrap(), stats);
    }

    #[test]
    fn policy_tokens_reject_nonsense() {
        assert!(parse_policy("fixed:-1").is_err());
        assert!(parse_policy("fixed:inf").is_err());
        assert!(parse_policy("fixed:abc").is_err());
        assert!(parse_policy("adaptive").is_err());
        assert_eq!(parse_policy("measured").unwrap(), RuntimePolicy::Measured);
        let fixed = parse_policy("fixed:0.002").unwrap();
        assert_eq!(fixed, RuntimePolicy::Fixed(Seconds::new(0.002)));
        // The token is the exact-round-trip display form.
        assert_eq!(policy_token(fixed), "fixed:0.002");
    }

    #[test]
    fn malformed_control_payloads_are_named() {
        assert!(Accepted::decode("id a\ncells x\nresumed 0\n").is_err());
        assert!(Done::decode("id a\n").is_err());
        assert!(StatsReply::decode("active 1\n").is_err());
        assert!(SubmitRequest::decode("grid modules=8\n").is_err());
        assert!(Accepted::decode("id a\ncells 1\nresumed 0\nextra\n").is_err());
    }
}
