//! The sweep service daemon.
//!
//! A [`SweepServer`] owns one TCP listener, a supervised pool of worker
//! threads, and one shared [`TraceCache`].  Each client connection is served
//! by its own handler thread speaking the frame protocol of
//! [`wire`](crate::wire); a SUBMIT admits a sweep, fans its cells out to the
//! workers, and streams every finished cell back **in grid order** before a
//! closing DONE frame.
//!
//! # Admission and backpressure
//!
//! Admission is explicit, never silent queueing: a SUBMIT is rejected up
//! front when the request itself is over budget
//! ([`ServerConfig::max_cells`] / [`ServerConfig::max_steps`]) or when
//! [`ServerConfig::queue_capacity`] sweeps are already in flight.  A
//! rejected request has performed no work and may simply be retried later.
//! The same explicitness extends to connections: past
//! [`ServerConfig::max_connections`] an accept is answered with a busy ERROR
//! frame instead of spawning an unbounded handler thread, and a client that
//! sends nothing for [`ServerConfig::idle_timeout_secs`] is told so and
//! closed.
//!
//! # Fault tolerance
//!
//! Every per-job step a worker performs — including the grid indexing and
//! lineup/scenario construction — runs inside panic containment, so a
//! malformed cell errors *that cell* and never the worker.  Should a worker
//! die anyway (the containment has a bug, or a chaos test poisons the pool
//! via [`SweepServer::poison_worker`]), a supervisor thread detects the dead
//! thread, joins it and spawns a replacement, counting each respawn in the
//! STATS `workers_respawned` field — the pool is always at full strength.
//! Finished connection handlers are reaped on every accept iteration instead
//! of accumulating until shutdown.
//!
//! # Deadlines
//!
//! With [`ServerConfig::max_request_secs`] set, a sweep that outlives its
//! wall-clock deadline is aborted with a DEADLINE-exceeded ERROR frame.  The
//! abort leaves the checkpoint journal intact, so a resubmission resumes the
//! finished cells instead of starting over.
//!
//! # Checkpoint / resume
//!
//! With [`ServerConfig::checkpoint_dir`] set, every finished cell is
//! journalled (and flushed) before it is streamed.  Resubmitting the same id
//! with the same grid and policy replays the journalled cells byte-for-byte
//! and solves only the remainder; a completed sweep deletes its journal.
//!
//! # Determinism
//!
//! Under [`RuntimePolicy::Fixed`] with a deterministic lineup, the CELL and
//! DONE payloads of a request are a pure function of the request: repeat
//! submissions stream byte-identical results, and a resumed sweep's replayed
//! frames equal the ones the interrupted run streamed.  The DONE frame
//! reports the grid's *expected* cold-cache thermal-solve count rather than
//! live cache counters, precisely so that cache warmth cannot leak into the
//! stream.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use teg_sim::{
    Comparison, ComparisonReport, RuntimePolicy, ScenarioGrid, SimError, SolverPool,
    SweepCellReport, TraceCache,
};

use crate::checkpoint::{delete_checkpoint, load_checkpoint, CheckpointLoad, CheckpointWriter};
use crate::codec::encode_cell;
use crate::protocol::{
    policy_token, Accepted, Cancel, Done, ErrorReply, Rejected, StatsReply, SubmitRequest,
};
use crate::wire::{read_frame, write_frame, Frame, FrameKind, ReadOutcome, WireError, MAX_FRAME};

/// How long blocked threads sleep between checks of the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Tuning knobs of a [`SweepServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads solving cells (at least 1).
    pub workers: usize,
    /// Sweeps admitted concurrently; further SUBMITs are rejected, not
    /// queued.
    pub queue_capacity: usize,
    /// Largest grid (in cells) a single request may submit.
    pub max_cells: usize,
    /// Largest total simulated-step budget (cells × schemes × drive seconds)
    /// a single request may submit.
    pub max_steps: usize,
    /// Capacity of the shared trace cache (0 = unbounded).
    pub cache_capacity: usize,
    /// Directory for checkpoint journals; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Largest frame accepted or emitted on any connection.
    pub max_frame: usize,
    /// Per-request wall-clock deadline in seconds; a sweep still streaming
    /// past it is aborted with a DEADLINE-exceeded ERROR frame that leaves
    /// the checkpoint journal intact for resume.  `None` means no deadline.
    pub max_request_secs: Option<f64>,
    /// Connections that send no frame for this many seconds are told so with
    /// an ERROR frame and closed.  `None` keeps idle clients forever.
    pub idle_timeout_secs: Option<f64>,
    /// Concurrent connections served; further accepts are answered with a
    /// busy ERROR frame and closed instead of spawning unbounded handler
    /// threads.  `0` means unlimited.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            queue_capacity: 4,
            max_cells: 4096,
            max_steps: 2_000_000,
            cache_capacity: 256,
            checkpoint_dir: None,
            max_frame: MAX_FRAME,
            max_request_secs: None,
            idle_timeout_secs: None,
            max_connections: 256,
        }
    }
}

/// One admitted sweep.
struct ActiveRequest {
    grid: ScenarioGrid,
    policy: RuntimePolicy,
    cancelled: AtomicBool,
    /// Computed cells land here keyed by grid index; the handler drains them
    /// in order.
    results: Mutex<BTreeMap<usize, Result<ComparisonReport, SimError>>>,
    results_signal: Condvar,
}

impl ActiveRequest {
    fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
        self.results_signal.notify_all();
    }

    fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    fn push_result(&self, index: usize, outcome: Result<ComparisonReport, SimError>) {
        self.results
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(index, outcome);
        self.results_signal.notify_all();
    }
}

/// One unit of worker work.  Pre-solve jobs are enqueued before a request's
/// cell jobs, so the FIFO queue naturally warms every trace between the
/// ACCEPTED frame and the first CELL frame.
enum Job {
    /// Run one cell of an admitted sweep.
    Cell {
        /// The owning request.
        request: Arc<ActiveRequest>,
        /// Index into the request grid's cells.
        index: usize,
    },
    /// Warm one unique thermal key ahead of the request's cells.
    Presolve {
        /// The owning request.
        request: Arc<ActiveRequest>,
        /// Index into the request grid's samples.
        sample: usize,
        /// Row-parallel chunk threads folded into this one solve (more than
        /// 1 only when the planned keys are fewer than the workers).
        threads: usize,
    },
    /// Chaos-testing poison pill: panics *outside* the per-job panic
    /// containment, killing the worker thread exactly the way an escaped
    /// panic would.  Pushed by [`SweepServer::poison_worker`]; the
    /// supervisor respawns the victim.
    Poison,
}

impl Job {
    fn belongs_to(&self, target: &Arc<ActiveRequest>) -> bool {
        match self {
            Self::Cell { request, .. } | Self::Presolve { request, .. } => {
                Arc::ptr_eq(request, target)
            }
            Self::Poison => false,
        }
    }
}

/// State shared by the accept loop, handlers, workers and the supervisor.
struct Shared {
    config: ServerConfig,
    cache: TraceCache,
    queue: Mutex<VecDeque<Job>>,
    queue_signal: Condvar,
    /// Sweeps admitted and not yet finished (the backpressure gauge).
    active: AtomicUsize,
    /// Sweeps that ran to DONE.
    completed: AtomicUsize,
    /// Unique thermal keys the pre-solve planner enumerated, across all
    /// admitted requests.
    presolve_planned: AtomicUsize,
    /// Planned keys the workers solved ahead of cell dispatch.
    presolve_solved: AtomicUsize,
    /// Dead worker threads the supervisor replaced.
    workers_respawned: AtomicUsize,
    /// Connection handlers currently alive.
    connections: AtomicUsize,
    /// Accepts answered with a busy ERROR at the connection cap.
    connections_rejected: AtomicUsize,
    /// Admitted requests by id, for CANCEL and duplicate detection.
    registry: Mutex<HashMap<String, Arc<ActiveRequest>>>,
    shutdown: AtomicBool,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_registry(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<ActiveRequest>>> {
        self.registry.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.queue_signal.notify_all();
        for request in self.lock_registry().values() {
            request.cancel();
        }
    }

    /// Drops every queued job of `request`, so a cancelled sweep stops
    /// burning worker time as soon as its handler unwinds instead of making
    /// the workers pop and discard each stale job one by one.
    fn purge_jobs(&self, request: &Arc<ActiveRequest>) {
        self.lock_queue().retain(|job| !job.belongs_to(request));
    }
}

fn worker_loop(shared: &Shared) {
    let mut pool = SolverPool::new();
    loop {
        let job = {
            let mut queue = shared.lock_queue();
            loop {
                if shared.shutting_down() {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared
                    .queue_signal
                    .wait_timeout(queue, POLL)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        match job {
            Job::Poison => panic!("chaos poison pill: simulated worker crash"),
            Job::Presolve {
                request,
                sample,
                threads,
            } => {
                if request.is_cancelled() {
                    continue;
                }
                // Warm one unique thermal key before the request's cells
                // run.  Failures (and panics) are deliberately swallowed:
                // the owning cell re-attempts the solve on demand and
                // reports the error with its usual attribution, exactly as
                // if no planner ran.
                let grid = &request.grid;
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    grid.samples().get(sample).map(|s| s.presolve(threads))
                }));
                if matches!(outcome, Ok(Some(Ok(true)))) {
                    shared.presolve_solved.fetch_add(1, Ordering::Relaxed);
                }
            }
            Job::Cell { request, index } => {
                if request.is_cancelled() {
                    continue;
                }
                let policy = request.policy;
                // Same recipe — and same panic containment — as
                // SweepRunner's in-process workers, so service results match
                // runner results.  *Everything* per-job runs inside the
                // containment, including the grid indexing and the
                // lineup/scenario construction: a malformed cell errors the
                // cell, never the worker.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let grid = &request.grid;
                    let cell =
                        grid.cells()
                            .get(index)
                            .ok_or_else(|| SimError::InvalidScenario {
                                reason: format!("cell index {index} is outside the request grid"),
                            })?;
                    let scenario = grid.scenario(cell);
                    let specs = grid.lineup(cell).specs(cell.key().module_count());
                    Comparison::from_specs(scenario, &specs)
                        .runtime_policy(policy)
                        .solver_pool(&mut pool)
                        .run()
                }))
                .unwrap_or_else(|_| {
                    Err(SimError::InvalidScenario {
                        reason: format!("sweep cell {index} panicked in a scheme or solver"),
                    })
                });
                request.push_result(index, outcome);
            }
        }
    }
}

fn spawn_worker(shared: &Arc<Shared>) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    thread::spawn(move || worker_loop(&shared))
}

/// Keeps the worker pool at full strength.  A worker thread that dies — a
/// panic that escaped containment, or a [`Job::Poison`] pill — is joined and
/// replaced with a fresh worker; each replacement increments the
/// `workers_respawned` STATS counter.
fn supervisor_loop(shared: &Arc<Shared>, mut workers: Vec<JoinHandle<()>>) {
    while !shared.shutting_down() {
        for slot in &mut workers {
            if slot.is_finished() && !shared.shutting_down() {
                let dead = std::mem::replace(slot, spawn_worker(shared));
                let _ = dead.join();
                shared.workers_respawned.fetch_add(1, Ordering::Relaxed);
            }
        }
        thread::sleep(POLL);
    }
    for worker in workers {
        let _ = worker.join();
    }
}

/// A running sweep service.
///
/// Dropping the handle does *not* stop the daemon; call
/// [`SweepServer::shutdown`] (or send a SHUTDOWN frame and then
/// [`SweepServer::wait`]).
pub struct SweepServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl SweepServer {
    /// Binds the listener and starts the worker pool, its supervisor and the
    /// accept loop.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the configured address.
    pub fn start(config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let cache = if config.cache_capacity == 0 {
            TraceCache::new()
        } else {
            TraceCache::with_capacity(config.cache_capacity)
        };
        let worker_count = config.workers.max(1);
        let shared = Arc::new(Shared {
            config,
            cache,
            queue: Mutex::new(VecDeque::new()),
            queue_signal: Condvar::new(),
            active: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            presolve_planned: AtomicUsize::new(0),
            presolve_solved: AtomicUsize::new(0),
            workers_respawned: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            connections_rejected: AtomicUsize::new(0),
            registry: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        });
        let workers: Vec<JoinHandle<()>> =
            (0..worker_count).map(|_| spawn_worker(&shared)).collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || supervisor_loop(&shared, workers))
        };
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            thread::spawn(move || accept_loop(&listener, &shared, &handlers))
        };
        Ok(Self {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            supervisor: Some(supervisor),
            handlers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub const fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared trace cache (live counters).
    #[must_use]
    pub fn cache(&self) -> &TraceCache {
        &self.shared.cache
    }

    /// Chaos-testing hook: enqueues a poison pill that kills one worker
    /// thread exactly the way a panic escaping containment would.  The
    /// supervisor detects the death and spawns a replacement (observable as
    /// `workers_respawned` in STATS); in-flight sweeps lose nothing but the
    /// dead worker's momentary throughput.
    pub fn poison_worker(&self) {
        self.shared.lock_queue().push_front(Job::Poison);
        self.shared.queue_signal.notify_all();
    }

    /// Blocks until the daemon shuts down (a client sent SHUTDOWN), then
    /// joins every thread.
    pub fn wait(mut self) {
        self.join_all();
    }

    /// Initiates shutdown and joins every thread.  In-flight sweeps are
    /// cancelled; their checkpoints (if enabled) survive for resumption.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        let handlers =
            std::mem::take(&mut *self.handlers.lock().unwrap_or_else(PoisonError::into_inner));
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

/// Joins every finished connection handler, so the handler list tracks live
/// connections instead of accumulating a handle per connection ever served.
fn reap_finished(handlers: &Mutex<Vec<JoinHandle<()>>>) {
    let mut handlers = handlers.lock().unwrap_or_else(PoisonError::into_inner);
    let mut index = 0;
    while index < handlers.len() {
        if handlers[index].is_finished() {
            let finished = handlers.swap_remove(index);
            let _ = finished.join();
        } else {
            index += 1;
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.shutting_down() {
            return;
        }
        reap_finished(handlers);
        match listener.accept() {
            Ok((mut stream, _)) => {
                let limit = shared.config.max_connections;
                if limit > 0 && shared.connections.load(Ordering::Relaxed) >= limit {
                    // Answer with a busy ERROR instead of spawning an
                    // unbounded handler; the write is best-effort and
                    // bounded so a stalled client cannot stall accepts.
                    shared.connections_rejected.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                    let reply = ErrorReply {
                        id: String::new(),
                        reason: format!(
                            "server busy: {limit} connections already open; retry later"
                        ),
                    };
                    let _ = send(
                        &mut stream,
                        FrameKind::Error,
                        &reply.encode(),
                        shared.config.max_frame,
                    );
                    continue;
                }
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                let handle = thread::spawn(move || {
                    handle_connection(stream, &shared);
                    shared.connections.fetch_sub(1, Ordering::Relaxed);
                });
                handlers
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
}

fn send(
    stream: &mut TcpStream,
    kind: FrameKind,
    payload: &str,
    max_frame: usize,
) -> Result<(), WireError> {
    write_frame(stream, kind, payload.as_bytes(), max_frame)
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let max_frame = shared.config.max_frame;
    let idle_limit = shared.config.idle_timeout_secs.map(Duration::from_secs_f64);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut last_frame = Instant::now();
    loop {
        if shared.shutting_down() {
            return;
        }
        let frame = match read_frame(&mut stream, max_frame) {
            Ok(ReadOutcome::Frame(frame)) => {
                last_frame = Instant::now();
                frame
            }
            Ok(ReadOutcome::Idle) => {
                if let Some(limit) = idle_limit {
                    if last_frame.elapsed() >= limit {
                        // A silent client holds a connection slot for
                        // nothing; tell it why it is going away, then close.
                        let reply = ErrorReply {
                            id: String::new(),
                            reason: format!(
                                "idle timeout: no frame in {:.1}s; closing connection",
                                limit.as_secs_f64()
                            ),
                        };
                        let _ = send(&mut stream, FrameKind::Error, &reply.encode(), max_frame);
                        return;
                    }
                }
                continue;
            }
            Ok(ReadOutcome::Eof) => return,
            Err(
                WireError::UnknownKind(_) | WireError::EmptyFrame | WireError::Malformed { .. },
            ) => {
                // Frame sync is intact (the whole frame was consumed):
                // report and keep serving this client.
                let reply = ErrorReply {
                    id: String::new(),
                    reason: "unrecognised frame".to_owned(),
                };
                if send(&mut stream, FrameKind::Error, &reply.encode(), max_frame).is_err() {
                    return;
                }
                last_frame = Instant::now();
                continue;
            }
            Err(_) => {
                // Truncation / oversize / transport failure: frame sync is
                // lost, so the connection cannot continue.
                let reply = ErrorReply {
                    id: String::new(),
                    reason: "frame desynchronised; closing connection".to_owned(),
                };
                let _ = send(&mut stream, FrameKind::Error, &reply.encode(), max_frame);
                return;
            }
        };
        match frame.kind {
            FrameKind::Submit => {
                if !handle_submit(&mut stream, shared, &frame) {
                    return;
                }
                last_frame = Instant::now();
            }
            FrameKind::Stats => {
                let reply = stats_reply(shared).encode();
                if send(&mut stream, FrameKind::StatsReply, &reply, max_frame).is_err() {
                    return;
                }
            }
            FrameKind::Cancel => {
                if !handle_cancel(&mut stream, shared, &frame) {
                    return;
                }
            }
            FrameKind::Shutdown => {
                shared.begin_shutdown();
                let _ = send(&mut stream, FrameKind::ShutdownAck, "", max_frame);
                return;
            }
            // A client sending server-side kinds is confused; tell it so.
            _ => {
                let reply = ErrorReply {
                    id: String::new(),
                    reason: format!("unexpected client frame kind {:?}", frame.kind),
                };
                if send(&mut stream, FrameKind::Error, &reply.encode(), max_frame).is_err() {
                    return;
                }
            }
        }
    }
}

fn stats_reply(shared: &Shared) -> StatsReply {
    StatsReply {
        active: shared.active.load(Ordering::Relaxed),
        queued_cells: shared.lock_queue().len(),
        completed_requests: shared.completed.load(Ordering::Relaxed),
        cache_len: shared.cache.len(),
        cache_hits: shared.cache.hits(),
        cache_misses: shared.cache.misses(),
        cache_evictions: shared.cache.evictions(),
        workers: shared.config.workers.max(1),
        presolve_planned: shared.presolve_planned.load(Ordering::Relaxed),
        presolve_solved: shared.presolve_solved.load(Ordering::Relaxed),
        workers_respawned: shared.workers_respawned.load(Ordering::Relaxed),
        connections: shared.connections.load(Ordering::Relaxed),
        connections_rejected: shared.connections_rejected.load(Ordering::Relaxed),
    }
}

fn handle_cancel(stream: &mut TcpStream, shared: &Shared, frame: &Frame) -> bool {
    let max_frame = shared.config.max_frame;
    let cancel = frame.text().and_then(Cancel::decode);
    match cancel {
        Ok(cancel) => {
            let found = shared.lock_registry().get(&cancel.id).map(Arc::clone);
            if let Some(request) = found {
                request.cancel();
                let reply = Accepted {
                    id: cancel.id,
                    cells: 0,
                    resumed: 0,
                };
                send(stream, FrameKind::Accepted, &reply.encode(), max_frame).is_ok()
            } else {
                let reply = ErrorReply {
                    id: cancel.id,
                    reason: "no active request with that id".to_owned(),
                };
                send(stream, FrameKind::Error, &reply.encode(), max_frame).is_ok()
            }
        }
        Err(err) => {
            let reply = ErrorReply {
                id: String::new(),
                reason: format!("bad cancel payload: {err}"),
            };
            send(stream, FrameKind::Error, &reply.encode(), max_frame).is_ok()
        }
    }
}

/// Releases one admission slot and the registry entry on every exit path of
/// [`handle_submit`] past admission.
struct Admission<'a> {
    shared: &'a Shared,
    id: String,
    request: Arc<ActiveRequest>,
}

impl Drop for Admission<'_> {
    fn drop(&mut self) {
        // Stale queue entries and late worker results check this flag.
        self.request.cancel();
        // Queued jobs of a dead request are pure waste: purge them now so a
        // cancelled-by-disconnect sweep stops burning worker time the
        // moment its handler unwinds.
        self.shared.purge_jobs(&self.request);
        self.shared.lock_registry().remove(&self.id);
        self.shared.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// What the result-wait loop produced for one cell index.
enum Wait {
    Ready(Result<ComparisonReport, SimError>),
    Interrupted,
    Deadline,
}

/// Serves one SUBMIT end to end.  Returns `false` when the connection is no
/// longer usable.
fn handle_submit(stream: &mut TcpStream, shared: &Arc<Shared>, frame: &Frame) -> bool {
    let max_frame = shared.config.max_frame;
    let reject = |stream: &mut TcpStream, id: &str, reason: String| {
        let reply = Rejected {
            id: id.to_owned(),
            reason,
        };
        send(stream, FrameKind::Rejected, &reply.encode(), max_frame).is_ok()
    };

    let request = match frame.text().and_then(SubmitRequest::decode) {
        Ok(request) => request,
        Err(err) => return reject(stream, "", format!("bad submit payload: {err}")),
    };
    let id = request.id.clone();
    let started = Instant::now();
    let deadline = shared.config.max_request_secs.map(Duration::from_secs_f64);

    // Budget checks: refuse before building anything expensive.
    let cells = request.grid.cell_count();
    if cells == 0 {
        return reject(stream, &id, "grid has no cells".to_owned());
    }
    if cells > shared.config.max_cells {
        return reject(
            stream,
            &id,
            format!(
                "grid has {cells} cells, over the per-request budget of {}",
                shared.config.max_cells
            ),
        );
    }
    let steps = request.grid.total_steps();
    if steps > shared.config.max_steps {
        return reject(
            stream,
            &id,
            format!(
                "grid simulates {steps} scheme-steps, over the per-request budget of {}",
                shared.config.max_steps
            ),
        );
    }

    // Admission: reserve a slot or refuse outright.
    let capacity = shared.config.queue_capacity.max(1);
    if shared
        .active
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |active| {
            (active < capacity).then_some(active + 1)
        })
        .is_err()
    {
        return reject(
            stream,
            &id,
            format!("server busy: {capacity} sweeps already admitted; retry later"),
        );
    }
    // From here on an early return must release the slot.
    let release_slot = || {
        shared.active.fetch_sub(1, Ordering::Relaxed);
    };

    let grid_spec = match request.grid.spec() {
        Ok(spec) => spec,
        Err(err) => {
            release_slot();
            return reject(stream, &id, format!("grid is not spec-serialisable: {err}"));
        }
    };
    let policy = policy_token(request.policy);

    let grid = match request.grid.to_grid_with_cache(shared.cache.clone()) {
        Ok(grid) => grid,
        Err(err) => {
            release_slot();
            return reject(stream, &id, format!("grid rejected: {err}"));
        }
    };

    // Checkpoint recovery.
    let mut restored: BTreeMap<usize, String> = BTreeMap::new();
    if let Some(dir) = &shared.config.checkpoint_dir {
        match load_checkpoint(dir, &id, &grid_spec, &policy) {
            Ok(CheckpointLoad::Missing) => {}
            Ok(CheckpointLoad::Cells(cells)) => {
                restored = cells;
                restored.retain(|&index, _| index < grid.len());
            }
            Ok(CheckpointLoad::Mismatch { reason }) => {
                release_slot();
                return reject(stream, &id, format!("checkpoint mismatch: {reason}"));
            }
            Err(err) => {
                release_slot();
                return reject(stream, &id, format!("checkpoint unreadable: {err}"));
            }
        }
    }

    let active = Arc::new(ActiveRequest {
        grid,
        policy: request.policy,
        cancelled: AtomicBool::new(false),
        results: Mutex::new(BTreeMap::new()),
        results_signal: Condvar::new(),
    });
    {
        let mut registry = shared.lock_registry();
        if registry.contains_key(&id) {
            drop(registry);
            release_slot();
            return reject(
                stream,
                &id,
                "a request with this id is already running".to_owned(),
            );
        }
        registry.insert(id.clone(), Arc::clone(&active));
    }
    let admission = Admission {
        shared,
        id: id.clone(),
        request: Arc::clone(&active),
    };

    let mut journal = match &shared.config.checkpoint_dir {
        Some(dir) => match CheckpointWriter::open(dir, &id, &grid_spec, &policy) {
            Ok(writer) => Some(writer),
            Err(err) => {
                drop(admission);
                return reject(stream, &id, format!("checkpoint unwritable: {err}"));
            }
        },
        None => None,
    };

    // Fan the unfinished cells out to the workers, in grid order — with the
    // pre-solve plan queued *first*, so the pool warms every unique thermal
    // key the unfinished cells need before any cell starts.  Cells restored
    // from the checkpoint are replayed from journalled bytes and never
    // touch the radiator, so their keys are not planned.
    let total = active.grid.len();
    let resumed = restored.len();
    let pending: Vec<&teg_sim::SweepCell> = active
        .grid
        .cells()
        .iter()
        .enumerate()
        .filter(|(index, _)| !restored.contains_key(index))
        .map(|(_, cell)| cell)
        .collect();
    let plan = active
        .grid
        .unique_sample_indices_for(pending.iter().copied());
    let workers = shared.config.workers.max(1);
    let threads = if plan.is_empty() {
        1
    } else {
        (workers / plan.len()).clamp(1, workers)
    };
    shared
        .presolve_planned
        .fetch_add(plan.len(), Ordering::Relaxed);
    {
        let mut queue = shared.lock_queue();
        for sample in plan {
            queue.push_back(Job::Presolve {
                request: Arc::clone(&active),
                sample,
                threads,
            });
        }
        for index in 0..total {
            if !restored.contains_key(&index) {
                queue.push_back(Job::Cell {
                    request: Arc::clone(&active),
                    index,
                });
            }
        }
    }
    shared.queue_signal.notify_all();

    let accepted = Accepted {
        id: id.clone(),
        cells: total,
        resumed,
    };
    if send(stream, FrameKind::Accepted, &accepted.encode(), max_frame).is_err() {
        // The client vanished before even seeing ACCEPTED: no cell has been
        // journalled for this run, so a journal without any cell record is a
        // stale header-only file — delete it rather than leaving it behind.
        if restored.is_empty() {
            if let Some(dir) = &shared.config.checkpoint_dir {
                journal.take();
                let _ = delete_checkpoint(dir, &id);
            }
        }
        return false;
    }

    // Stream the cells strictly in grid index order.
    for index in 0..total {
        if let Some(payload) = restored.get(&index) {
            // Replay the journalled bytes verbatim — no re-solving, and the
            // frame equals the one the interrupted run streamed.
            if send(stream, FrameKind::Cell, payload, max_frame).is_err() {
                return false;
            }
            continue;
        }
        let outcome = {
            let mut results = active
                .results
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(outcome) = results.remove(&index) {
                    break Wait::Ready(outcome);
                }
                if shared.shutting_down() || active.is_cancelled() {
                    break Wait::Interrupted;
                }
                if let Some(limit) = deadline {
                    if started.elapsed() >= limit {
                        break Wait::Deadline;
                    }
                }
                results = active
                    .results_signal
                    .wait_timeout(results, POLL)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        let outcome = match outcome {
            Wait::Ready(outcome) => outcome,
            Wait::Interrupted => {
                let reply = ErrorReply {
                    id: id.clone(),
                    reason: "sweep interrupted by shutdown or cancellation".to_owned(),
                };
                // The journal survives for resumption.
                return send(stream, FrameKind::Error, &reply.encode(), max_frame).is_ok()
                    && !shared.shutting_down();
            }
            Wait::Deadline => {
                // Admission teardown cancels the sweep and purges its queued
                // jobs; the journal survives, so a resubmission resumes the
                // cells that finished inside the deadline.
                let reply = ErrorReply {
                    id: id.clone(),
                    reason: format!(
                        "deadline exceeded: request ran past {:.1}s; checkpoint journal intact for resume",
                        started.elapsed().as_secs_f64()
                    ),
                };
                return send(stream, FrameKind::Error, &reply.encode(), max_frame).is_ok();
            }
        };
        match outcome {
            Ok(report) => {
                let key = active.grid.cells()[index].key().clone();
                let payload = encode_cell(&SweepCellReport::from_parts(key, report));
                if let Some(journal) = &mut journal {
                    // Durable before visible: the client never sees a cell
                    // the journal could lose.
                    if let Err(err) = journal.append(index, &payload) {
                        let reply = ErrorReply {
                            id: id.clone(),
                            reason: format!("checkpoint append failed: {err}"),
                        };
                        return send(stream, FrameKind::Error, &reply.encode(), max_frame).is_ok();
                    }
                }
                if send(stream, FrameKind::Cell, &payload, max_frame).is_err() {
                    // Client went away mid-stream; the journal survives.
                    return false;
                }
            }
            Err(err) => {
                let reply = ErrorReply {
                    id: id.clone(),
                    reason: format!("cell {index} failed: {err}"),
                };
                return send(stream, FrameKind::Error, &reply.encode(), max_frame).is_ok();
            }
        }
    }

    let done = Done {
        id: id.clone(),
        thermal_solves: active.grid.expected_thermal_solves(),
        executed: total - resumed,
        resumed,
    };
    if let Some(dir) = &shared.config.checkpoint_dir {
        drop(journal);
        let _ = delete_checkpoint(dir, &id);
    }
    shared.completed.fetch_add(1, Ordering::Relaxed);
    drop(admission);
    send(stream, FrameKind::Done, &done.encode(), max_frame).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let config = ServerConfig::default();
        assert!(config.workers >= 1);
        assert_eq!(config.queue_capacity, 4);
        assert!(config.max_cells > 0);
        assert!(config.max_steps > config.max_cells);
        assert!(config.checkpoint_dir.is_none());
        assert_eq!(config.max_frame, MAX_FRAME);
        assert!(config.max_request_secs.is_none());
        assert!(config.idle_timeout_secs.is_none());
        assert!(config.max_connections >= 1);
    }

    #[test]
    fn server_starts_and_shuts_down_cleanly() {
        let server = SweepServer::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        assert_ne!(server.addr().port(), 0);
        server.shutdown();
    }
}
