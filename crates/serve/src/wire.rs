//! The length-prefixed frame layer: everything that touches raw bytes.
//!
//! A frame is `[u32 BE length][u8 kind][payload]`, where `length` counts the
//! kind byte plus the payload (so the smallest legal frame is `length == 1`:
//! a kind with an empty payload).  Payloads are UTF-8 text, line-oriented;
//! the framing layer treats them as opaque bytes.
//!
//! Reads distinguish four situations the service must tell apart:
//!
//! * a complete frame — [`ReadOutcome::Frame`];
//! * a clean end-of-stream *at a frame boundary* — [`ReadOutcome::Eof`],
//!   how a client says it is done;
//! * a read timeout before any byte of a frame arrived —
//!   [`ReadOutcome::Idle`], which lets a handler poll its shutdown flag
//!   without losing frame sync;
//! * everything else — a [`WireError`]: EOF or timeout *mid-frame*
//!   ([`WireError::Truncated`]), a length prefix beyond the negotiated cap
//!   ([`WireError::Oversized`]), a zero-length frame
//!   ([`WireError::EmptyFrame`]), an unassigned kind byte
//!   ([`WireError::UnknownKind`]) or transport I/O failure.

use std::fmt;
use std::io::{self, Read, Write};

/// Default cap on one frame's length (kind byte + payload): 32 MiB, far
/// above any report the service streams, low enough that a hostile length
/// prefix cannot balloon allocation.
pub const MAX_FRAME: usize = 32 * 1024 * 1024;

/// The message kinds of the sweep-service protocol.  Client-to-server kinds
/// live below `0x80`, server-to-client kinds at `0x80` and above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: submit a sweep request.
    Submit = 0x01,
    /// Client → server: ask for service counters.
    Stats = 0x02,
    /// Client → server: cancel the named request.
    Cancel = 0x03,
    /// Client → server: stop the daemon.
    Shutdown = 0x04,
    /// Server → client: the sweep was admitted.
    Accepted = 0x81,
    /// Server → client: the sweep was refused (budget, backpressure, parse).
    Rejected = 0x82,
    /// Server → client: one finished cell of the running sweep.
    Cell = 0x83,
    /// Server → client: the sweep finished; stream totals follow.
    Done = 0x84,
    /// Server → client: service counters.
    StatsReply = 0x85,
    /// Server → client: the request failed after admission.
    Error = 0x86,
    /// Server → client: shutdown acknowledged.
    ShutdownAck = 0x87,
}

impl FrameKind {
    /// The kind's wire byte.
    #[must_use]
    pub const fn byte(self) -> u8 {
        self as u8
    }

    /// Decodes a wire byte, `None` for unassigned values.
    #[must_use]
    pub const fn from_byte(byte: u8) -> Option<Self> {
        Some(match byte {
            0x01 => Self::Submit,
            0x02 => Self::Stats,
            0x03 => Self::Cancel,
            0x04 => Self::Shutdown,
            0x81 => Self::Accepted,
            0x82 => Self::Rejected,
            0x83 => Self::Cell,
            0x84 => Self::Done,
            0x85 => Self::StatsReply,
            0x86 => Self::Error,
            0x87 => Self::ShutdownAck,
            _ => return None,
        })
    }
}

/// One decoded frame: a kind plus its opaque payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The message kind.
    pub kind: FrameKind,
    /// The payload bytes (UTF-8 text at the protocol layer).
    pub payload: Vec<u8>,
}

impl Frame {
    /// The payload as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Malformed`] when the payload is not UTF-8.
    pub fn text(&self) -> Result<&str, WireError> {
        std::str::from_utf8(&self.payload).map_err(|_| WireError::Malformed {
            reason: "frame payload is not UTF-8".into(),
        })
    }
}

/// What one read attempt produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame.
    Frame(Frame),
    /// The peer closed the stream cleanly at a frame boundary.
    Eof,
    /// The read timed out before any byte of a new frame arrived (only with
    /// a read timeout set on the stream); frame sync is intact.
    Idle,
}

/// Everything that can go wrong on the wire.
#[derive(Debug)]
pub enum WireError {
    /// Transport failure.
    Io(io::Error),
    /// A length prefix exceeded the negotiated frame cap.
    Oversized {
        /// The advertised length.
        length: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The stream ended (or timed out) in the middle of a frame.
    Truncated {
        /// Bytes the frame still owed.
        expected: usize,
        /// Bytes actually read.
        got: usize,
    },
    /// A frame advertised length zero (not even a kind byte).
    EmptyFrame,
    /// An unassigned kind byte.
    UnknownKind(u8),
    /// The frame arrived intact but its payload does not decode.
    Malformed {
        /// What failed to parse.
        reason: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(err) => write!(f, "wire I/O error: {err}"),
            Self::Oversized { length, max } => {
                write!(f, "frame length {length} exceeds the {max}-byte cap")
            }
            Self::Truncated { expected, got } => {
                write!(f, "stream ended mid-frame ({got} of {expected} bytes)")
            }
            Self::EmptyFrame => write!(f, "zero-length frame (no kind byte)"),
            Self::UnknownKind(byte) => write!(f, "unknown frame kind 0x{byte:02x}"),
            Self::Malformed { reason } => write!(f, "malformed payload: {reason}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

fn is_timeout(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Fills `buf` completely.  `Ok(n)` with `n < buf.len()` means clean EOF
/// after `n` bytes; timeouts surface as `Err` unless nothing was read yet
/// and `idle_ok` — then `Ok(0)` with `was_idle` flagged via the error path
/// is avoided by the caller checking `n == 0`.
fn read_exact_or_eof(stream: &mut impl Read, buf: &mut [u8]) -> Result<usize, io::Error> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err),
        }
    }
    Ok(filled)
}

/// Reads one frame.
///
/// With a read timeout set on the stream, a timeout before the first byte of
/// the length prefix yields [`ReadOutcome::Idle`]; a timeout anywhere later
/// is [`WireError::Truncated`] (the stream has lost frame sync and must be
/// dropped).
///
/// # Errors
///
/// See [`WireError`]; `max_frame` bounds the accepted length prefix.
pub fn read_frame(stream: &mut impl Read, max_frame: usize) -> Result<ReadOutcome, WireError> {
    let mut header = [0_u8; 4];
    let got = match read_exact_or_eof(stream, &mut header) {
        Ok(got) => got,
        Err(err) if is_timeout(&err) => return Ok(ReadOutcome::Idle),
        Err(err) => return Err(err.into()),
    };
    if got == 0 {
        return Ok(ReadOutcome::Eof);
    }
    if got < header.len() {
        return Err(WireError::Truncated {
            expected: header.len(),
            got,
        });
    }
    let length = u32::from_be_bytes(header) as usize;
    if length == 0 {
        return Err(WireError::EmptyFrame);
    }
    if length > max_frame {
        return Err(WireError::Oversized {
            length,
            max: max_frame,
        });
    }
    let mut body = vec![0_u8; length];
    let got = match read_exact_or_eof(stream, &mut body) {
        Ok(got) => got,
        Err(err) if is_timeout(&err) => {
            return Err(WireError::Truncated {
                expected: length,
                got: 0,
            })
        }
        Err(err) => return Err(err.into()),
    };
    if got < length {
        return Err(WireError::Truncated {
            expected: length,
            got,
        });
    }
    let kind = FrameKind::from_byte(body[0]).ok_or(WireError::UnknownKind(body[0]))?;
    body.remove(0);
    Ok(ReadOutcome::Frame(Frame {
        kind,
        payload: body,
    }))
}

/// Writes one frame and flushes.
///
/// # Errors
///
/// Returns [`WireError::Oversized`] when the payload exceeds `max_frame`,
/// or the transport error.
pub fn write_frame(
    stream: &mut impl Write,
    kind: FrameKind,
    payload: &[u8],
    max_frame: usize,
) -> Result<(), WireError> {
    let length = payload.len() + 1;
    if length > max_frame {
        return Err(WireError::Oversized {
            length,
            max: max_frame,
        });
    }
    let header = u32::try_from(length)
        .map_err(|_| WireError::Oversized {
            length,
            max: max_frame,
        })?
        .to_be_bytes();
    stream.write_all(&header)?;
    stream.write_all(&[kind.byte()])?;
    stream.write_all(payload)?;
    stream.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(kind: FrameKind, payload: &[u8]) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind, payload, MAX_FRAME).unwrap();
        match read_frame(&mut Cursor::new(buf), MAX_FRAME).unwrap() {
            ReadOutcome::Frame(frame) => frame,
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn frames_round_trip() {
        let frame = roundtrip(FrameKind::Submit, b"id demo\ngrid modules=8");
        assert_eq!(frame.kind, FrameKind::Submit);
        assert_eq!(frame.text().unwrap(), "id demo\ngrid modules=8");
        let empty = roundtrip(FrameKind::Stats, b"");
        assert_eq!(empty.kind, FrameKind::Stats);
        assert!(empty.payload.is_empty());
    }

    #[test]
    fn every_kind_byte_round_trips() {
        for kind in [
            FrameKind::Submit,
            FrameKind::Stats,
            FrameKind::Cancel,
            FrameKind::Shutdown,
            FrameKind::Accepted,
            FrameKind::Rejected,
            FrameKind::Cell,
            FrameKind::Done,
            FrameKind::StatsReply,
            FrameKind::Error,
            FrameKind::ShutdownAck,
        ] {
            assert_eq!(FrameKind::from_byte(kind.byte()), Some(kind));
        }
        assert_eq!(FrameKind::from_byte(0x00), None);
        assert_eq!(FrameKind::from_byte(0x7f), None);
        assert_eq!(FrameKind::from_byte(0xff), None);
    }

    #[test]
    fn clean_eof_at_a_boundary_is_not_an_error() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut Cursor::new(empty), MAX_FRAME).unwrap(),
            ReadOutcome::Eof
        ));
    }

    #[test]
    fn truncated_header_and_body_are_errors() {
        // Two header bytes, then EOF.
        let err = read_frame(&mut Cursor::new(vec![0, 0]), MAX_FRAME).unwrap_err();
        assert!(matches!(
            err,
            WireError::Truncated {
                expected: 4,
                got: 2
            }
        ));
        // A full header promising 100 bytes, then only 3.
        let mut buf = 100_u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&[FrameKind::Submit.byte(), b'x', b'y']);
        let err = read_frame(&mut Cursor::new(buf), MAX_FRAME).unwrap_err();
        assert!(matches!(
            err,
            WireError::Truncated {
                expected: 100,
                got: 3
            }
        ));
    }

    #[test]
    fn oversized_and_empty_prefixes_are_rejected_without_allocation() {
        let buf = u32::MAX.to_be_bytes().to_vec();
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, WireError::Oversized { max: 1024, .. }));
        let err = read_frame(&mut Cursor::new(0_u32.to_be_bytes().to_vec()), 1024).unwrap_err();
        assert!(matches!(err, WireError::EmptyFrame));
        // Writing oversized payloads is refused before any bytes move.
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, FrameKind::Cell, &[0; 64], 16).unwrap_err();
        assert!(matches!(err, WireError::Oversized { .. }));
        assert!(sink.is_empty());
    }

    #[test]
    fn unknown_kind_bytes_are_rejected() {
        let mut buf = 1_u32.to_be_bytes().to_vec();
        buf.push(0x42);
        let err = read_frame(&mut Cursor::new(buf), MAX_FRAME).unwrap_err();
        assert!(matches!(err, WireError::UnknownKind(0x42)));
    }

    #[test]
    fn errors_display_their_cause() {
        for (err, needle) in [
            (WireError::EmptyFrame, "zero-length"),
            (WireError::UnknownKind(7), "0x07"),
            (WireError::Oversized { length: 10, max: 5 }, "cap"),
            (
                WireError::Truncated {
                    expected: 4,
                    got: 1,
                },
                "mid-frame",
            ),
            (
                WireError::Malformed {
                    reason: "bad".into(),
                },
                "bad",
            ),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
