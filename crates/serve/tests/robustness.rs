//! Fault-tolerance tests of the sweep service: supervised workers,
//! deadlines, connection hardening, the resilient client and the seeded
//! chaos proxy.
//!
//! The contract under test extends the determinism contract of
//! `tests/service.rs`: no injected fault — a killed worker, a flapping
//! connection, a corrupted or truncated frame, a missed deadline — may
//! change a single byte of the sweep's final assembled stream.  Faults cost
//! retries and wall-clock time, never results.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use teg_serve::{
    read_frame, write_frame, ChaosPlan, ChaosProxy, FrameKind, ReadOutcome, ResilientClient,
    RetryPolicy, ServeClient, ServeError, ServerConfig, StatsReply, SubmitRequest, SweepServer,
    MAX_FRAME,
};
use teg_sim::{GridSpec, RuntimePolicy, SweepReport, SweepRunner};
use teg_units::Seconds;

const POLICY: RuntimePolicy = RuntimePolicy::Fixed(Seconds::new(0.002));

/// A small deterministic sweep: 4 cells, 4 schemes each.
const SMALL: &str = "modules=6,8|seeds=1,2|drive=city:12|lineup=paper-fixed:0.002";

/// A sweep slow enough that interrupting it mid-stream reliably leaves
/// later cells unsolved (same sizing rationale as `tests/service.rs`).
const SLOW: &str = "modules=64|seeds=1,2,3,4,5,6,7,8|drive=city:60|lineup=paper-fixed:0.002";

fn expected_report(spec: &str) -> SweepReport {
    let grid = GridSpec::parse(spec).unwrap().to_grid().unwrap();
    SweepRunner::new()
        .runtime_policy(POLICY)
        .run(&grid)
        .unwrap()
}

fn request(id: &str, spec: &str) -> SubmitRequest {
    SubmitRequest {
        id: id.into(),
        grid: GridSpec::parse(spec).unwrap(),
        policy: POLICY,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "teg-serve-robust-{}-{}-{tag}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Polls STATS on a fresh connection until `predicate` holds, panicking
/// after `budget`.
fn await_stats(
    addr: std::net::SocketAddr,
    budget: Duration,
    what: &str,
    predicate: impl Fn(&StatsReply) -> bool,
) -> StatsReply {
    let deadline = Instant::now() + budget;
    loop {
        let stats = ServeClient::connect(addr).unwrap().stats().unwrap();
        if predicate(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last stats: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn deadline_exceeded_aborts_with_journal_intact_for_resume() {
    let dir = temp_dir("deadline");
    let server = SweepServer::start(ServerConfig {
        workers: 1,
        checkpoint_dir: Some(dir.clone()),
        // Far below the sweep's wall clock in either build profile (release
        // solves ~1 cell per 12 ms), so the deadline always fires mid-sweep.
        max_request_secs: Some(0.02),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let mut stream = client.submit(&request("overdue", SLOW)).unwrap();
    let reason = loop {
        match stream.next_cell() {
            Ok(Some(_)) => {}
            Ok(None) => panic!("an 8×64-module sweep finished inside a 20 ms deadline"),
            Err(ServeError::Remote(reason)) => break reason,
            Err(err) => panic!("expected a remote deadline error, got {err}"),
        }
    };
    assert!(reason.contains("deadline exceeded"), "{reason}");
    assert!(reason.contains("journal intact"), "{reason}");
    // The journal survived the abort.
    assert!(dir.join("overdue.ckpt").exists());
    drop(stream);
    drop(client);
    server.shutdown();

    // A deadline-free server over the same journal resumes and finishes
    // bit-identically to a fresh run.
    let server = SweepServer::start(ServerConfig {
        workers: 1,
        checkpoint_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let stream = client.submit(&request("overdue", SLOW)).unwrap();
    let report = stream.into_report().unwrap();
    assert_eq!(report, expected_report(SLOW));
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn idle_connections_are_told_why_and_closed() {
    let server = SweepServer::start(ServerConfig {
        idle_timeout_secs: Some(0.3),
        ..ServerConfig::default()
    })
    .unwrap();
    // Say nothing; the server must answer with a named ERROR, then close.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    match read_frame(&mut stream, MAX_FRAME).unwrap() {
        ReadOutcome::Frame(frame) => {
            assert_eq!(frame.kind, FrameKind::Error);
            assert!(frame.text().unwrap().contains("idle timeout"));
        }
        other => panic!("expected an idle-timeout ERROR frame, got {other:?}"),
    }
    assert!(matches!(
        read_frame(&mut stream, MAX_FRAME).unwrap(),
        ReadOutcome::Eof
    ));
    // An active client on the same server is never idled out mid-exchange.
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let report = client
        .submit(&request("prompt", SMALL))
        .unwrap()
        .into_report()
        .unwrap();
    assert_eq!(report, expected_report(SMALL));
    server.shutdown();
}

#[test]
fn connection_cap_answers_busy_instead_of_spawning_threads() {
    let server = SweepServer::start(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    // Occupy the only slot and prove the handler is live.
    let mut occupant = ServeClient::connect(addr).unwrap();
    let stats = occupant.stats().unwrap();
    assert_eq!(stats.connections, 1);
    // The next accept is answered with a busy ERROR and closed.
    let mut extra = TcpStream::connect(addr).unwrap();
    match read_frame(&mut extra, MAX_FRAME).unwrap() {
        ReadOutcome::Frame(frame) => {
            assert_eq!(frame.kind, FrameKind::Error);
            assert!(frame.text().unwrap().contains("busy"), "{frame:?}");
        }
        other => panic!("expected a busy ERROR frame, got {other:?}"),
    }
    assert!(matches!(
        read_frame(&mut extra, MAX_FRAME).unwrap(),
        ReadOutcome::Eof
    ));
    let stats = occupant.stats().unwrap();
    assert!(stats.connections_rejected >= 1);
    // Freeing the slot re-opens the door.
    drop(occupant);
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        if let Ok(stats) = ServeClient::connect(addr).and_then(|mut c| c.stats()) {
            break stats;
        }
        assert!(Instant::now() < deadline, "slot never freed");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(stats.connections, 1);
    server.shutdown();
}

#[test]
fn poisoned_workers_are_respawned_and_the_pool_stays_functional() {
    let server = SweepServer::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    assert_eq!(
        ServeClient::connect(addr)
            .unwrap()
            .stats()
            .unwrap()
            .workers_respawned,
        0
    );
    // Kill both workers, one after the other.
    server.poison_worker();
    await_stats(addr, Duration::from_secs(10), "first respawn", |s| {
        s.workers_respawned == 1
    });
    server.poison_worker();
    await_stats(addr, Duration::from_secs(10), "second respawn", |s| {
        s.workers_respawned == 2
    });
    // The pool is back at full strength: a sweep still completes
    // bit-identically.
    let report = ServeClient::connect(addr)
        .unwrap()
        .submit(&request("survivor", SMALL))
        .unwrap()
        .into_report()
        .unwrap();
    assert_eq!(report, expected_report(SMALL));
    server.shutdown();
}

#[test]
fn disconnect_purges_queued_work_and_never_leaves_a_stale_journal() {
    let dir = temp_dir("purge");
    let server = SweepServer::start(ServerConfig {
        workers: 1,
        checkpoint_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let mut client = ServeClient::connect(addr).unwrap();
    let mut stream = client.submit(&request("ghost", SLOW)).unwrap();
    let _ = stream.next_cell().unwrap().expect("first cell streams");
    // Vanish mid-stream.  The handler's admission teardown must cancel the
    // request AND purge its queued cells, so the lone worker stops burning
    // time on a sweep nobody is reading.
    drop(stream);
    drop(client);
    let stats = await_stats(addr, Duration::from_secs(20), "orphan reaped", |s| {
        s.active == 0
    });
    assert_eq!(
        stats.queued_cells, 0,
        "cancelled request left jobs in the queue"
    );
    assert_eq!(stats.completed_requests, 0);
    // Whatever journal survives must hold real progress — at least one cell
    // record — never a stale header-only file.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let bytes = std::fs::read(entry.unwrap().path()).unwrap();
        let cells = bytes
            .split(|&b| b == b'\n')
            .filter(|line| line.starts_with(b"cell "))
            .count();
        assert!(cells >= 1, "stale journal with no cell records");
    }
    // The freed worker immediately serves the next sweep.
    let report = ServeClient::connect(addr)
        .unwrap()
        .submit(&request("next-up", SMALL))
        .unwrap()
        .into_report()
        .unwrap();
    assert_eq!(report, expected_report(SMALL));
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stats_counters_stay_consistent_under_concurrent_load() {
    let server = SweepServer::start(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let specs = [
        "modules=6|seeds=1,2|drive=city:10|lineup=paper-fixed:0.002",
        "modules=8|seeds=3,4|drive=city:12|lineup=paper-fixed:0.002",
        "modules=9|seeds=5,6|drive=city:14|lineup=paper-fixed:0.002",
    ];
    std::thread::scope(|scope| {
        let sweeps: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(lane, &spec)| {
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).unwrap();
                    let id = format!("load-{lane}");
                    client
                        .submit(&request(&id, spec))
                        .unwrap()
                        .into_report()
                        .unwrap()
                })
            })
            .collect();
        // Sample the counters while the sweeps run: gauges must stay within
        // their admission bounds at every instant.
        for _ in 0..20 {
            let stats = ServeClient::connect(addr).unwrap().stats().unwrap();
            assert!(
                stats.active <= 4,
                "active {} over queue capacity",
                stats.active
            );
            assert!(stats.completed_requests <= 3);
            assert_eq!(stats.workers_respawned, 0);
            assert_eq!(stats.connections_rejected, 0);
            std::thread::sleep(Duration::from_millis(10));
        }
        for (spec, sweep) in specs.iter().zip(sweeps) {
            assert_eq!(sweep.join().unwrap(), expected_report(spec), "{spec}");
        }
    });
    // At quiescence every gauge returns to zero and every total adds up.
    let stats = await_stats(addr, Duration::from_secs(10), "quiescence", |s| {
        s.active == 0 && s.queued_cells == 0 && s.connections == 1
    });
    assert_eq!(stats.completed_requests, 3);
    assert_eq!(stats.workers_respawned, 0);
    // Each grid planned 2 unique thermal keys; all were solved ahead.
    assert_eq!(stats.presolve_planned, 6);
    assert_eq!(stats.presolve_solved, 6);
    server.shutdown();
}

/// Drives one submission over a raw socket and returns every server frame's
/// `(kind, payload)` through DONE.
fn raw_exchange(addr: std::net::SocketAddr, submit: &SubmitRequest) -> Vec<(FrameKind, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr).unwrap();
    let payload = submit.encode().unwrap();
    write_frame(
        &mut stream,
        FrameKind::Submit,
        payload.as_bytes(),
        MAX_FRAME,
    )
    .unwrap();
    let mut frames = Vec::new();
    loop {
        match read_frame(&mut stream, MAX_FRAME).unwrap() {
            ReadOutcome::Frame(frame) => {
                let done = frame.kind == FrameKind::Done;
                assert!(
                    !matches!(frame.kind, FrameKind::Rejected | FrameKind::Error),
                    "sweep aborted: {:?}",
                    frame.text()
                );
                frames.push((frame.kind, frame.payload));
                if done {
                    return frames;
                }
            }
            ReadOutcome::Idle => {}
            ReadOutcome::Eof => panic!("stream ended before DONE"),
        }
    }
}

#[test]
fn benign_chaos_proxy_is_byte_transparent() {
    let server = SweepServer::start(ServerConfig::default()).unwrap();
    let proxy = ChaosProxy::start(server.addr(), ChaosPlan::benign(7)).unwrap();
    let direct = raw_exchange(server.addr(), &request("clear", SMALL));
    let proxied = raw_exchange(proxy.addr(), &request("clear", SMALL));
    assert_eq!(direct, proxied, "a fault-free proxy must not alter a byte");
    assert!(proxy.stats().frames() > direct.len());
    assert_eq!(proxy.stats().disruptions(), 0);
    proxy.stop();
    server.shutdown();
}

#[test]
fn resilient_client_survives_seeded_chaos_byte_identically() {
    let dir = temp_dir("chaos");
    let server = SweepServer::start(ServerConfig {
        workers: 2,
        checkpoint_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    // Undisturbed baseline first; same id, so the DONE payloads align (the
    // baseline's journal is deleted at DONE, freeing the id's checkpoint).
    let baseline = ResilientClient::new(server.addr().to_string())
        .run(&request("stormy", SMALL))
        .unwrap();
    assert_eq!(baseline.attempts(), 1);

    // The soak's third session seed: known to inject kills, truncations and
    // corruptions (the `FaultSchedule` is a pure function of the seed, so
    // this stays true forever).
    let seed = 0xC4A0_5EEDu64.wrapping_add(2);
    let proxy = ChaosProxy::start(
        server.addr(),
        ChaosPlan {
            seed,
            ..ChaosPlan::default()
        },
    )
    .unwrap();
    let stormy = ResilientClient::new(proxy.addr().to_string())
        .retry_policy(RetryPolicy {
            max_attempts: 64,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(250),
            stall_timeout: Duration::from_secs(5),
            seed,
        })
        .run(&request("stormy", SMALL))
        .unwrap();
    assert!(
        proxy.stats().disruptions() >= 1,
        "the seeded plan injected nothing destructive"
    );
    assert!(
        stormy.attempts() > 1,
        "chaos cost at least one reconnection"
    );
    assert_eq!(
        stormy.canonical_stream(),
        baseline.canonical_stream(),
        "injected faults changed the assembled byte stream"
    );
    let report = stormy.into_report().unwrap();
    assert_eq!(report, expected_report(SMALL));
    proxy.stop();
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resilient_client_rides_out_busy_rejections() {
    let server = SweepServer::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    // Occupy the only admission slot with a slow sweep...
    let occupant = std::thread::spawn(move || {
        ServeClient::connect(addr)
            .unwrap()
            .submit(&request("occupant", SLOW))
            .unwrap()
            .into_report()
            .unwrap()
    });
    // ...then let the resilient client retry through the busy window.
    let latecomer = ResilientClient::new(addr.to_string())
        .retry_policy(RetryPolicy {
            max_attempts: 200,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(1),
            stall_timeout: Duration::from_secs(30),
            seed: 11,
        })
        .run(&request("latecomer", SMALL))
        .unwrap();
    assert_eq!(latecomer.into_report().unwrap(), expected_report(SMALL));
    assert_eq!(occupant.join().unwrap(), expected_report(SLOW));
    server.shutdown();
}
