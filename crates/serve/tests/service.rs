//! End-to-end tests of the sweep service over real loopback sockets.
//!
//! The determinism contract under test: with a `paper-fixed` lineup and a
//! `Fixed` runtime policy, a sweep submitted over TCP must produce a
//! [`SweepReport`] **bit-identical** (`PartialEq` over every `f64`) to the
//! one the in-process [`SweepRunner`] computes, repeat submissions must
//! stream byte-identical payloads, and a killed-and-resumed sweep must
//! re-solve zero finished cells.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use teg_serve::{
    read_frame, write_frame, FrameKind, ReadOutcome, ServeClient, ServeError, ServerConfig,
    SubmitRequest, SweepServer, MAX_FRAME,
};
use teg_sim::{GridSpec, RuntimePolicy, SweepReport, SweepRunner};
use teg_units::Seconds;

const POLICY: RuntimePolicy = RuntimePolicy::Fixed(Seconds::new(0.002));

/// A small deterministic sweep: 4 cells, 4 schemes each.
const SMALL: &str = "modules=6,8|seeds=1,2|drive=city:12|lineup=paper-fixed:0.002";

/// A sweep slow enough (hundreds of ms per cell in a debug build, tens in
/// release) that interrupting it after the first streamed cell reliably
/// leaves later cells unsolved.  Sized against the memoised EHTR decide:
/// the partition DP grows ~quartically in the module count, so 64 modules
/// over a 60 s cycle keeps each cell comfortably slower than a client
/// round-trip even in release builds (re-sized from 48 when the reference
/// DP adopted flat scratch tables and a reachability bound).
const SLOW: &str = "modules=64|seeds=1,2,3,4,5,6,7,8|drive=city:60|lineup=paper-fixed:0.002";

fn expected_report(spec: &str) -> SweepReport {
    let grid = GridSpec::parse(spec).unwrap().to_grid().unwrap();
    SweepRunner::new()
        .runtime_policy(POLICY)
        .run(&grid)
        .unwrap()
}

fn request(id: &str, spec: &str) -> SubmitRequest {
    SubmitRequest {
        id: id.into(),
        grid: GridSpec::parse(spec).unwrap(),
        policy: POLICY,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "teg-serve-test-{}-{}-{tag}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn tcp_sweep_is_bit_identical_to_in_process_runner() {
    let server = SweepServer::start(ServerConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let stream = client.submit(&request("tier1", SMALL)).unwrap();
    assert_eq!(stream.accepted().cells, 4);
    assert_eq!(stream.accepted().resumed, 0);
    let report = stream.into_report().unwrap();
    assert_eq!(report, expected_report(SMALL));
    let stats = client.stats().unwrap();
    assert_eq!(stats.completed_requests, 1);
    assert_eq!(stats.active, 0);
    // The pre-solve planner warmed the grid's 4 unique thermal keys before
    // the first cell ran.
    assert_eq!(stats.presolve_planned, 4);
    assert_eq!(stats.presolve_solved, 4);
    server.shutdown();
}

/// Drives one submission over a raw socket and returns every server frame's
/// `(kind, payload)` through DONE.
fn raw_exchange(addr: std::net::SocketAddr, submit: &SubmitRequest) -> Vec<(FrameKind, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr).unwrap();
    let payload = submit.encode().unwrap();
    write_frame(
        &mut stream,
        FrameKind::Submit,
        payload.as_bytes(),
        MAX_FRAME,
    )
    .unwrap();
    let mut frames = Vec::new();
    loop {
        match read_frame(&mut stream, MAX_FRAME).unwrap() {
            ReadOutcome::Frame(frame) => {
                let done = frame.kind == FrameKind::Done;
                assert!(
                    !matches!(frame.kind, FrameKind::Rejected | FrameKind::Error),
                    "sweep aborted: {:?}",
                    frame.text()
                );
                frames.push((frame.kind, frame.payload));
                if done {
                    return frames;
                }
            }
            ReadOutcome::Idle => {}
            ReadOutcome::Eof => panic!("stream ended before DONE"),
        }
    }
}

#[test]
fn repeat_submissions_stream_byte_identical_frames() {
    let server = SweepServer::start(ServerConfig::default()).unwrap();
    let first = raw_exchange(server.addr(), &request("again", SMALL));
    let second = raw_exchange(server.addr(), &request("again", SMALL));
    assert_eq!(first.len(), second.len());
    for ((kind_a, bytes_a), (kind_b, bytes_b)) in first.iter().zip(&second) {
        assert_eq!(kind_a, kind_b);
        assert_eq!(
            bytes_a, bytes_b,
            "repeat stream diverged in a {kind_a:?} frame"
        );
    }
    // Sanity: 1 ACCEPTED + 4 CELL + 1 DONE.
    assert_eq!(first.len(), 6);
    server.shutdown();
}

#[test]
fn killed_sweep_resumes_without_resolving_finished_cells() {
    let dir = temp_dir("resume");
    let config = || ServerConfig {
        workers: 1,
        checkpoint_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    // First run: read one streamed cell, then kill the server mid-sweep.
    let server = SweepServer::start(config()).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let mut stream = client.submit(&request("long-haul", SLOW)).unwrap();
    assert_eq!(stream.accepted().cells, 8);
    let first = stream.next_cell().unwrap().expect("first cell streams");
    assert_eq!(first.key().index(), 0);
    server.shutdown();
    // The interrupted stream surfaces the abort (or the dead socket).
    loop {
        match stream.next_cell() {
            Ok(Some(_)) => {}
            Ok(None) => panic!("sweep claimed completion after the kill"),
            Err(ServeError::Remote(reason)) => {
                assert!(reason.contains("interrupted"), "{reason}");
                break;
            }
            Err(_) => break,
        }
    }

    // Second run, same checkpoint dir: journalled cells replay, the rest
    // solve, and the stitched report is bit-identical to a fresh one.
    let server = SweepServer::start(config()).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let stream = client.submit(&request("long-haul", SLOW)).unwrap();
    let resumed = stream.accepted().resumed;
    assert!(resumed >= 1, "at least the streamed cell was journalled");
    assert!(resumed < 8, "the kill left work to do");
    let report = stream.into_report().unwrap();
    assert_eq!(report, expected_report(SLOW));

    // The journal is gone after DONE: a third submission starts fresh.
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let stream = client.submit(&request("long-haul", SLOW)).unwrap();
    assert_eq!(stream.accepted().resumed, 0);
    drop(stream);
    drop(client);
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn kill_at_exact_record_boundary_resumes_every_journalled_cell() {
    let dir = temp_dir("boundary");
    let config = || ServerConfig {
        workers: 1,
        checkpoint_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    // Interrupt a sweep so a journal with at least one cell survives.
    let server = SweepServer::start(config()).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let mut stream = client.submit(&request("boundary", SLOW)).unwrap();
    let _ = stream.next_cell().unwrap().expect("first cell streams");
    server.shutdown();
    drop(stream);
    drop(client);

    // Simulate a kill at the exact record boundary: the final append fully
    // landed but its trailing newline did not.  Dropping that last byte must
    // not cost the finished cell on resume.
    let path = dir.join("boundary.ckpt");
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(bytes.last(), Some(&b'\n'), "journal ends on a boundary");
    let journalled = bytes
        .split(|&b| b == b'\n')
        .filter(|line| line.starts_with(b"cell "))
        .count();
    assert!(
        journalled >= 1,
        "the kill left at least one journalled cell"
    );
    std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();

    // Resume: every journalled cell replays, including the unterminated one.
    let server = SweepServer::start(config()).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let stream = client.submit(&request("boundary", SLOW)).unwrap();
    assert_eq!(
        stream.accepted().resumed,
        journalled,
        "the complete-but-unterminated final record must not be re-solved"
    );
    let report = stream.into_report().unwrap();
    assert_eq!(report, expected_report(SLOW));
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_mismatch_is_rejected_not_mixed() {
    let dir = temp_dir("mismatch");
    let config = ServerConfig {
        checkpoint_dir: Some(dir.clone()),
        workers: 1,
        ..ServerConfig::default()
    };
    let server = SweepServer::start(config).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    // Interrupt a sweep so its journal survives.
    let mut stream = client.submit(&request("pinned", SLOW)).unwrap();
    let _ = stream.next_cell().unwrap();
    drop(stream);
    drop(client);
    // Resubmitting the id with a DIFFERENT grid must be refused.
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let outcome = loop {
        match client.submit(&request("pinned", SMALL)) {
            Err(ServeError::Rejected(rejected)) if rejected.reason.contains("already running") => {
                std::thread::sleep(Duration::from_millis(50));
            }
            other => break other,
        }
    };
    match outcome {
        Err(ServeError::Rejected(rejected)) => {
            assert!(
                rejected.reason.contains("checkpoint mismatch"),
                "{}",
                rejected.reason
            );
        }
        other => panic!("expected a checkpoint-mismatch rejection, got {other:?}"),
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn framing_edge_cases_do_not_kill_the_server() {
    let server = SweepServer::start(ServerConfig::default()).unwrap();
    let addr = server.addr();

    // Truncated frame: half a length prefix, then disconnect.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&[0, 0]).unwrap();
    drop(stream);

    // Oversized length prefix: the server answers ERROR and closes.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
    match read_frame(&mut stream, MAX_FRAME).unwrap() {
        ReadOutcome::Frame(frame) => assert_eq!(frame.kind, FrameKind::Error),
        other => panic!("expected an ERROR frame, got {other:?}"),
    }
    drop(stream);

    // Unknown kind and an empty frame: sync is intact, so the connection
    // keeps working — the same socket then completes a real sweep.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&2_u32.to_be_bytes()).unwrap();
    stream.write_all(&[0x42, b'x']).unwrap();
    match read_frame(&mut stream, MAX_FRAME).unwrap() {
        ReadOutcome::Frame(frame) => assert_eq!(frame.kind, FrameKind::Error),
        other => panic!("expected an ERROR frame, got {other:?}"),
    }
    stream.write_all(&0_u32.to_be_bytes()).unwrap();
    match read_frame(&mut stream, MAX_FRAME).unwrap() {
        ReadOutcome::Frame(frame) => assert_eq!(frame.kind, FrameKind::Error),
        other => panic!("expected an ERROR frame, got {other:?}"),
    }
    let payload = request("after-garbage", SMALL).encode().unwrap();
    write_frame(
        &mut stream,
        FrameKind::Submit,
        payload.as_bytes(),
        MAX_FRAME,
    )
    .unwrap();
    let mut saw_done = false;
    loop {
        match read_frame(&mut stream, MAX_FRAME).unwrap() {
            ReadOutcome::Frame(frame) => {
                assert!(!matches!(
                    frame.kind,
                    FrameKind::Rejected | FrameKind::Error
                ));
                if frame.kind == FrameKind::Done {
                    saw_done = true;
                    break;
                }
            }
            ReadOutcome::Idle => {}
            ReadOutcome::Eof => break,
        }
    }
    assert!(saw_done, "the post-garbage sweep completed");
    server.shutdown();
}

#[test]
fn concurrent_clients_get_their_own_disjoint_results() {
    let server = SweepServer::start(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let specs = [
        "modules=6|seeds=1,2,3|drive=city:10|lineup=paper-fixed:0.002",
        "modules=9|seeds=4,5,6|drive=city:14|lineup=paper-fixed:0.002",
    ];
    let handles: Vec<_> = specs
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                let stream = client.submit(&request(&format!("side-{i}"), spec)).unwrap();
                stream.into_report().unwrap()
            })
        })
        .collect();
    let reports: Vec<SweepReport> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (spec, report) in specs.iter().zip(&reports) {
        assert_eq!(report, &expected_report(spec), "{spec}");
    }
    // Disjointness: every cell in each stream belongs to its own grid.
    assert!(reports[0]
        .cells()
        .iter()
        .all(|c| c.key().module_count() == 6));
    assert!(reports[1]
        .cells()
        .iter()
        .all(|c| c.key().module_count() == 9));
    server.shutdown();
}

#[test]
fn over_budget_requests_are_rejected_up_front() {
    let server = SweepServer::start(ServerConfig {
        max_cells: 2,
        max_steps: 500,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    // 4 cells > max_cells.
    match client.submit(&request("wide", SMALL)) {
        Err(ServeError::Rejected(rejected)) => {
            assert!(rejected.reason.contains("budget"), "{}", rejected.reason);
        }
        other => panic!("expected a budget rejection, got {other:?}"),
    }
    // 2 cells but 2 × 4 schemes × 100 s = 800 steps > max_steps.
    let deep = "modules=6|seeds=1,2|drive=city:100|lineup=paper-fixed:0.002";
    match client.submit(&request("deep", deep)) {
        Err(ServeError::Rejected(rejected)) => {
            assert!(rejected.reason.contains("budget"), "{}", rejected.reason);
        }
        other => panic!("expected a budget rejection, got {other:?}"),
    }
    // Within budget still works: rejections cost nothing.
    let ok = "modules=6|seeds=1|drive=city:10|lineup=paper-fixed:0.002";
    let report = client
        .submit(&request("fits", ok))
        .unwrap()
        .into_report()
        .unwrap();
    assert_eq!(report.cells().len(), 1);
    server.shutdown();
}

#[test]
fn busy_server_rejects_rather_than_queueing() {
    let server = SweepServer::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut first = ServeClient::connect(server.addr()).unwrap();
    let stream = first.submit(&request("occupant", SLOW)).unwrap();
    // While the occupant runs, a second sweep is refused, not queued.
    let mut second = ServeClient::connect(server.addr()).unwrap();
    match second.submit(&request("latecomer", SMALL)) {
        Err(ServeError::Rejected(rejected)) => {
            assert!(rejected.reason.contains("busy"), "{}", rejected.reason);
        }
        other => panic!("expected a busy rejection, got {other:?}"),
    }
    // The occupant is unharmed and the slot frees afterwards.
    let report = stream.into_report().unwrap();
    assert_eq!(report.cells().len(), 8);
    let report = second
        .submit(&request("latecomer", SMALL))
        .unwrap()
        .into_report()
        .unwrap();
    assert_eq!(report, expected_report(SMALL));
    server.shutdown();
}

#[test]
fn mid_stream_disconnect_cancels_and_keeps_the_checkpoint() {
    let dir = temp_dir("disconnect");
    let server = SweepServer::start(ServerConfig {
        workers: 1,
        checkpoint_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let mut stream = client.submit(&request("walkaway", SLOW)).unwrap();
    let _ = stream.next_cell().unwrap().expect("first cell streams");
    // Vanish mid-stream: the server notices on its next write, cancels the
    // request and keeps the journal.
    drop(stream);
    drop(client);
    // Resubmit until the orphaned request has been reaped, then resume.
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let stream = loop {
        match client.submit(&request("walkaway", SLOW)) {
            Ok(stream) => break stream,
            Err(ServeError::Rejected(rejected)) if rejected.reason.contains("already running") => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(err) => panic!("unexpected submit failure: {err}"),
        }
    };
    assert!(stream.accepted().resumed >= 1);
    let report = stream.into_report().unwrap();
    assert_eq!(report, expected_report(SLOW));
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cancel_from_a_second_connection_stops_the_sweep() {
    let server = SweepServer::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut submitter = ServeClient::connect(server.addr()).unwrap();
    let mut stream = submitter.submit(&request("doomed", SLOW)).unwrap();
    let mut controller = ServeClient::connect(server.addr()).unwrap();
    // Unknown ids are reported, known ids are cancelled.
    match controller.cancel("no-such-id") {
        Err(ServeError::Remote(reason)) => assert!(reason.contains("no active"), "{reason}"),
        other => panic!("expected a remote error, got {other:?}"),
    }
    controller.cancel("doomed").unwrap();
    let aborted = loop {
        match stream.next_cell() {
            Ok(Some(_)) => {}
            Ok(None) => break false,
            Err(ServeError::Remote(reason)) => {
                assert!(reason.contains("interrupted"), "{reason}");
                break true;
            }
            Err(err) => panic!("unexpected stream failure: {err}"),
        }
    };
    assert!(aborted, "the cancelled sweep must not run to completion");
    server.shutdown();
}
