//! Offline stand-in for the subset of the `criterion` benchmarking API this
//! workspace uses: `criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup` (`sample_size`, `bench_function`, `bench_with_input`,
//! `finish`), `BenchmarkId`, `Bencher` (`iter`, `iter_batched`) and
//! `BatchSize`.
//!
//! The build container has no network access to a cargo registry, so the real
//! crate cannot be fetched.  This shim keeps every bench target compiling and
//! producing honest wall-clock numbers: each benchmark is warmed up, then
//! timed over `sample_size` samples of adaptively sized iteration batches,
//! and the mean/min per-iteration time is printed in a `name ... time` line.
//! There is no statistical analysis, HTML report or regression detection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How a batched benchmark's per-batch setup output is sized (accepted for
/// API compatibility; the shim treats every variant identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup values: iterations may be batched together.
    SmallInput,
    /// Large setup values.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for a parameterised benchmark (`group.bench_with_input`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from the displayed parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
    iters_per_sample: Vec<u64>,
}

/// Target wall-clock budget for one benchmark's measurement phase.
const MEASURE_BUDGET: Duration = Duration::from_millis(250);

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            measured: Vec::new(),
            iters_per_sample: Vec::new(),
        }
    }

    /// Benchmarks a routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate a single iteration.
        let start = Instant::now();
        std::hint::black_box(routine());
        let estimate = start.elapsed().max(Duration::from_nanos(50));
        let per_sample = MEASURE_BUDGET.div_f64(self.samples as f64).as_secs_f64();
        let iters = (per_sample / estimate.as_secs_f64()).clamp(1.0, 1e6) as u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.measured.push(start.elapsed());
            self.iters_per_sample.push(iters);
        }
    }

    /// Benchmarks a routine with a fresh setup value per call.
    pub fn iter_batched<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        // Setup time is excluded by timing each routine call individually.
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.measured.push(start.elapsed());
            self.iters_per_sample.push(1);
        }
    }

    fn report(&self, id: &str) {
        if self.measured.is_empty() {
            println!("{id:<50} (no measurements)");
            return;
        }
        let per_iter: Vec<f64> = self
            .measured
            .iter()
            .zip(&self.iters_per_sample)
            .map(|(d, &n)| d.as_secs_f64() / n as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "{id:<50} mean {:>12}  min {:>12}",
            format_time(mean),
            format_time(min)
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.as_ref()));
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one stand-alone named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(10);
        f(&mut bencher);
        bencher.report(id.as_ref());
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Declares a group-runner function calling each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` invoking every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.bench_with_input(BenchmarkId::new("param", 42), &42, |b, &n| b.iter(|| n * 2));
        group.finish();
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("µs"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with(" s"));
    }
}
