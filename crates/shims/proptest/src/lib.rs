//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build container has no network access to a cargo registry, so the real
//! crate cannot be fetched.  This shim supports exactly the patterns found in
//! the suite's property tests:
//!
//! * `proptest! { #[test] fn name(x in 1usize..10, y in 0.0_f64..1.0) { .. } }`
//! * `proptest::collection::vec(strategy, len)` with a fixed or ranged length
//! * `prop_assume!`, `prop_assert!`, `prop_assert_eq!`
//!
//! Each property runs a fixed number of deterministic cases (64 by default,
//! seeded from the test name), so failures are reproducible.  There is no
//! shrinking: a failing case panics with the usual assert message, and the
//! deterministic seeding means re-running reproduces it exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Number of cases each property runs.
pub const CASES: usize = 64;

/// Maximum attempts (including cases discarded by `prop_assume!`) before a
/// property gives up looking for satisfiable inputs.
pub const MAX_ATTEMPTS: usize = CASES * 20;

/// Deterministic generator used to sample strategy values.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary string (the test name).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: hash | 1 }
    }

    /// Returns the next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator: the tiny core of proptest's `Strategy`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty usize strategy range");
        let span = (self.end - self.start) as u64;
        self.start + (((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as usize)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty u64 strategy range");
        let span = self.end - self.start;
        self.start + ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    /// Anything usable as the length argument of [`vec()`]: a fixed length
    /// or a half-open range of lengths.
    pub trait IntoLenRange {
        /// Returns the inclusive minimum and exclusive maximum length.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoLenRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Builds a strategy for `Vec`s whose elements come from `element` and
    /// whose length is drawn from `len`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S> {
        let (min_len, max_len) = len.bounds();
        assert!(min_len < max_len, "empty length range in collection::vec");
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.min_len..self.max_len).sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

/// Discards the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return false;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return false;
        }
    };
}

/// Asserts a property within a case (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality within a case (panics with context on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests.  Each `fn` inside becomes one `#[test]` running
/// [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                let mut accepted = 0usize;
                let mut attempts = 0usize;
                while accepted < $crate::CASES {
                    attempts += 1;
                    assert!(
                        attempts <= $crate::MAX_ATTEMPTS,
                        "property {} discarded too many cases via prop_assume!",
                        stringify!($name),
                    );
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    // `prop_assume!` expands to `return false`, skipping the
                    // case; reaching the end of the body accepts it.
                    let case = move || -> bool {
                        $body
                        #[allow(unreachable_code)]
                        true
                    };
                    if case() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(n in 3usize..10, x in -2.0_f64..2.0) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn assume_discards(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_strategy_lengths(v in collection::vec(-1.0_f64..1.0, 5..60), w in collection::vec(0.0_f64..1.0, 36)) {
            prop_assert!((5..60).contains(&v.len()));
            prop_assert_eq!(w.len(), 36);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }
}
