//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: [`Rng::gen`], [`Rng::gen_range`] over half-open and inclusive float
//! ranges and half-open integer ranges, [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The build container has no network access to a cargo registry, so the real
//! crate cannot be fetched.  Generators implementing [`RngCore`] (such as the
//! sibling `rand_chacha` shim) plug in unchanged.  The statistical quality of
//! the underlying generator lives in that sibling crate; this crate only maps
//! raw 64-bit outputs onto ranges and floats the same way `rand` does
//! (53-bit mantissa for uniform floats, rejection-free multiply-shift for
//! integer ranges — adequate for simulation seeding, not for cryptography).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core of every generator: a source of raw 64-bit values.
pub trait RngCore {
    /// Returns the next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A sampleable value type (the `Standard`-distribution subset).
pub trait Standard: Sized {
    /// Samples one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Uniform in [0, 1) with 53 bits of precision, as `rand` does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// A range (or inclusive range) values can be drawn from uniformly.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + unit * (end - start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift mapping of a raw 64-bit draw onto the span.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, i64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` (uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from the given range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Samples a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers (the `rand::seq` subset).
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place uniform shuffling of slices.
    pub trait SliceRandom {
        /// Shuffles the slice with a Fisher–Yates walk.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3.0_f64..9.0);
            assert!((3.0..9.0).contains(&x));
            let y = rng.gen_range(-0.25_f64..=0.25);
            assert!((-0.25..=0.25).contains(&y));
            let n = rng.gen_range(2usize..40);
            assert!((2..40).contains(&n));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
