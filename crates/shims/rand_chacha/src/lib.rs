//! Offline stand-in for `rand_chacha`, exposing a [`ChaCha8Rng`] with the
//! `seed_from_u64` constructor the workspace uses.
//!
//! The generator is **not** ChaCha: the build container cannot fetch the real
//! crate, and nothing in the suite needs cryptographic output — only a
//! deterministic, well-mixed stream per seed.  It is `xoshiro256**`
//! (Blackman & Vigna), seeded through SplitMix64 exactly as the xoshiro
//! authors recommend, which passes the same practical statistical batteries
//! the simulation relies on (uniform phases, Irwin–Hall gaussians).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rand::{RngCore, SeedableRng};

/// Deterministic pseudo-random generator (xoshiro256** behind the ChaCha8Rng
/// name the workspace imports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        Self {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        let s2 = s2 ^ t;
        let s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn mean_of_unit_floats_is_centred() {
        let mut rng = ChaCha8Rng::seed_from_u64(2024);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
