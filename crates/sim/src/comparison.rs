//! Lockstep comparison of several schemes over one shared thermal trace.
//!
//! The paper's headline artefacts (Table I, Figs. 6–7) all pit INOR, DNOR,
//! EHTR and the static baseline against each other on the *same* drive
//! cycle.  [`Comparison`] drives one [`SimSession`] per scheme in lockstep —
//! step 0 of every scheme, then step 1, … — over the scenario's cached
//! [`ThermalTrace`], so the radiator model is solved exactly once per
//! drive-cycle sample no matter how many schemes compete.
//!
//! [`ThermalTrace`]: crate::ThermalTrace

use std::collections::HashSet;
use std::fmt;

use teg_reconfig::{Dnor, Ehtr, Inor, Reconfigurer, SchemeSpec, StaticBaseline};

use crate::error::SimError;
use crate::record::StepRecord;
use crate::report::SimulationReport;
use crate::scenario::Scenario;
use crate::session::{RuntimePolicy, SimSession, SolverPool};

/// A builder driving N schemes in lockstep over one scenario.
///
/// # Examples
///
/// ```
/// use teg_reconfig::{Inor, StaticBaseline};
/// use teg_sim::{Comparison, Scenario};
///
/// # fn main() -> Result<(), teg_sim::SimError> {
/// let scenario = Scenario::builder().module_count(16).duration_seconds(30).seed(1).build()?;
/// let comparison = Comparison::new(&scenario)
///     .scheme(Inor::default())
///     .scheme(StaticBaseline::square_grid(16))
///     .run()?;
/// assert_eq!(comparison.reports().len(), 2);
/// // One thermal solve per drive-cycle second, not one per scheme.
/// assert_eq!(scenario.thermal_solve_count(), 30);
/// let inor = comparison.report("INOR").expect("ran");
/// assert!(inor.net_energy() >= comparison.report("Baseline").unwrap().net_energy());
/// # Ok(())
/// # }
/// ```
pub struct Comparison<'s> {
    scenario: &'s Scenario,
    schemes: Vec<Box<dyn Reconfigurer + 's>>,
    runtime_policy: RuntimePolicy,
    solver_pool: Option<&'s mut SolverPool>,
}

impl<'s> Comparison<'s> {
    /// Starts an empty comparison over the given scenario.
    #[must_use]
    pub fn new(scenario: &'s Scenario) -> Self {
        Self {
            scenario,
            schemes: Vec::new(),
            runtime_policy: RuntimePolicy::Measured,
            solver_pool: None,
        }
    }

    /// Adds one scheme to the field.
    #[must_use]
    pub fn scheme(mut self, scheme: impl Reconfigurer + 's) -> Self {
        self.schemes.push(Box::new(scheme));
        self
    }

    /// Adds a boxed scheme (for dynamically assembled fields).
    #[must_use]
    pub fn boxed_scheme(mut self, scheme: Box<dyn Reconfigurer + 's>) -> Self {
        self.schemes.push(scheme);
        self
    }

    /// Adds a fresh instance built from a [`SchemeSpec`] factory.
    #[must_use]
    pub fn spec(self, spec: &SchemeSpec) -> Self {
        self.boxed_scheme(spec.build())
    }

    /// Starts a comparison with one fresh instance per spec, in order — how
    /// a sweep worker assembles its per-cell field.
    #[must_use]
    pub fn from_specs(scenario: &'s Scenario, specs: &[SchemeSpec]) -> Self {
        specs.iter().fold(Self::new(scenario), |comparison, spec| {
            comparison.spec(spec)
        })
    }

    /// Replaces the runtime-accounting policy every session will run under
    /// (defaults to [`RuntimePolicy::Measured`]).
    #[must_use]
    pub fn runtime_policy(mut self, policy: RuntimePolicy) -> Self {
        self.runtime_policy = policy;
        self
    }

    /// Recycles electrical-solver scratch through the given pool: every
    /// session draws a warm solver before the run and returns it after, so
    /// a caller running many comparisons (a sweep worker) reuses the same
    /// allocations throughout.  Results are unchanged — solvers carry
    /// scratch, not state.
    #[must_use]
    pub fn solver_pool(mut self, pool: &'s mut SolverPool) -> Self {
        self.solver_pool = Some(pool);
        self
    }

    /// The paper's Table I field: DNOR, INOR, EHTR and the square-grid
    /// baseline for this scenario's module count.
    #[must_use]
    pub fn paper_schemes(scenario: &'s Scenario) -> Self {
        let modules = scenario.module_count();
        Self::new(scenario)
            .scheme(Dnor::default())
            .scheme(Inor::default())
            .scheme(Ehtr::default())
            .scheme(StaticBaseline::square_grid(modules))
    }

    /// Number of schemes added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// Returns `true` when no scheme has been added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }

    /// Drives every scheme over the whole drive cycle in lockstep and
    /// returns the collected reports.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidScenario`] when no scheme was added or two
    /// schemes share a name (which would make
    /// [`ComparisonReport::report`] ambiguous), and propagates the first
    /// error any session produces.
    pub fn run(mut self) -> Result<ComparisonReport, SimError> {
        if self.schemes.is_empty() {
            return Err(SimError::InvalidScenario {
                reason: "comparison needs at least one scheme".into(),
            });
        }
        let mut names = HashSet::new();
        for scheme in &self.schemes {
            if !names.insert(scheme.name()) {
                return Err(SimError::InvalidScenario {
                    reason: format!(
                        "comparison field contains scheme {:?} twice; per-name report \
                         lookup would be ambiguous",
                        scheme.name()
                    ),
                });
            }
        }
        let policy = self.runtime_policy;
        let mut pool = self.solver_pool.take();
        let steps = self.scenario.thermal_trace()?.len();
        let mut sessions = self
            .schemes
            .iter_mut()
            .map(|scheme| {
                SimSession::new(self.scenario, scheme.as_mut())
                    .map(|session| session.with_runtime_policy(policy))
            })
            .collect::<Result<Vec<_>, _>>()?;
        // Solvers are drawn only once every session exists, and returned
        // even when a step errors below, so a failing cell never drains its
        // worker's pool.
        if let Some(pool) = pool.as_deref_mut() {
            sessions = sessions
                .into_iter()
                .map(|session| session.with_solver(pool.acquire()))
                .collect();
        }
        let mut records: Vec<Vec<StepRecord>> =
            sessions.iter().map(|_| Vec::with_capacity(steps)).collect();

        // Lockstep: advance every scheme through the same drive second
        // before moving to the next, as the paper's shared testbed does.
        let outcome: Result<(), SimError> = (|| {
            for _ in 0..steps {
                for (session, sink) in sessions.iter_mut().zip(records.iter_mut()) {
                    let record = session.step()?.expect("trace length bounds the loop");
                    sink.push(record);
                }
            }
            Ok(())
        })();

        if let Some(pool) = pool {
            for session in &mut sessions {
                pool.release(session.take_solver());
            }
        }
        outcome?;

        let reports = sessions
            .iter_mut()
            .zip(records)
            .map(|(session, records)| {
                let summary = session.summary();
                SimulationReport::new(
                    summary.scheme().to_owned(),
                    records,
                    self.scenario.step(),
                    summary.switch_count(),
                    summary.runtime().clone(),
                )
            })
            .collect();
        Ok(ComparisonReport { reports })
    }
}

/// The outcome of a [`Comparison`]: one [`SimulationReport`] per scheme, in
/// insertion order, plus Table I rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonReport {
    reports: Vec<SimulationReport>,
}

impl ComparisonReport {
    /// Reassembles a comparison report from per-scheme simulation reports —
    /// the wire-codec inverse of [`ComparisonReport::reports`].  The order
    /// of `reports` is preserved verbatim (it is the scheme insertion
    /// order), so a report rebuilt from faithfully transported parts
    /// compares equal (`PartialEq`) to the in-process original.
    #[must_use]
    pub fn from_reports(reports: Vec<SimulationReport>) -> Self {
        Self { reports }
    }

    /// The per-scheme reports in the order the schemes were added.
    #[must_use]
    pub fn reports(&self) -> &[SimulationReport] {
        &self.reports
    }

    /// The report of the scheme with the given name, if it ran.
    #[must_use]
    pub fn report(&self, scheme: &str) -> Option<&SimulationReport> {
        self.reports.iter().find(|r| r.scheme() == scheme)
    }

    /// The scheme that harvested the most net energy.
    #[must_use]
    pub fn best(&self) -> Option<&SimulationReport> {
        self.reports
            .iter()
            .max_by(|a, b| a.net_energy().value().total_cmp(&b.net_energy().value()))
    }

    /// Renders the comparison as the paper's Table I: energy output, switch
    /// overhead, switch count, average runtime and fraction of ideal, one
    /// row per scheme.
    #[must_use]
    pub fn table1(&self) -> String {
        let mut out = String::from(
            "Scheme    | Energy Output (J) | Switch Overhead (J) | Switches | Avg Runtime (ms) | % of Ideal\n",
        );
        out.push_str(
            "----------+-------------------+---------------------+----------+------------------+-----------\n",
        );
        for report in &self.reports {
            let (energy, overhead, runtime) = report.table1_row();
            out.push_str(&format!(
                "{:<10}| {:>17.1} | {:>19.2} | {:>8} | {:>16.3} | {:>9.1}%\n",
                report.scheme(),
                energy,
                overhead,
                report.switch_count(),
                runtime,
                100.0 * report.ideal_fraction(),
            ));
        }
        out
    }
}

impl fmt::Display for ComparisonReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.table1())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(modules: usize, seconds: usize, seed: u64) -> Scenario {
        Scenario::builder()
            .module_count(modules)
            .duration_seconds(seconds)
            .seed(seed)
            .build()
            .expect("valid scenario")
    }

    #[test]
    fn empty_comparison_is_rejected() {
        let s = scenario(10, 10, 1);
        let c = Comparison::new(&s);
        assert!(c.is_empty());
        assert!(matches!(c.run(), Err(SimError::InvalidScenario { .. })));
    }

    #[test]
    fn paper_schemes_runs_all_four_with_one_thermal_solve_per_sample() {
        let s = scenario(20, 30, 2);
        let comparison = Comparison::paper_schemes(&s);
        assert_eq!(comparison.len(), 4);
        let report = comparison.run().unwrap();
        assert_eq!(report.reports().len(), 4);
        // The acceptance hook: four schemes over a 30-sample cycle cost
        // exactly 30 radiator solves, not 120.
        assert_eq!(s.thermal_solve_count(), 30);
        for scheme in ["DNOR", "INOR", "EHTR", "Baseline"] {
            let r = report.report(scheme).expect("scheme ran");
            assert_eq!(r.records().len(), 30);
        }
        assert!(report.report("nonesuch").is_none());
    }

    #[test]
    fn best_scheme_beats_the_baseline() {
        let s = scenario(24, 40, 3);
        let report = Comparison::paper_schemes(&s).run().unwrap();
        let best = report.best().expect("non-empty");
        let baseline = report.report("Baseline").unwrap();
        assert!(best.net_energy() >= baseline.net_energy());
        assert_ne!(best.scheme(), "Baseline");
    }

    #[test]
    fn table1_renders_one_row_per_scheme() {
        let s = scenario(12, 15, 4);
        let report = Comparison::paper_schemes(&s).run().unwrap();
        let table = report.table1();
        assert_eq!(table.lines().count(), 6); // header + separator + 4 rows
        for scheme in ["DNOR", "INOR", "EHTR", "Baseline"] {
            assert!(table.contains(scheme), "table missing {scheme}:\n{table}");
        }
        assert_eq!(report.to_string(), table);
    }

    #[test]
    fn boxed_schemes_are_accepted() {
        let s = scenario(9, 10, 5);
        let report = Comparison::new(&s)
            .boxed_scheme(Box::new(Inor::default()))
            .run()
            .unwrap();
        assert_eq!(report.reports().len(), 1);
    }

    #[test]
    fn duplicate_scheme_names_are_rejected() {
        let s = scenario(8, 10, 6);
        let err = Comparison::new(&s)
            .scheme(Inor::default())
            .scheme(Inor::default())
            .run()
            .unwrap_err();
        match err {
            SimError::InvalidScenario { reason } => {
                assert!(reason.contains("INOR"), "{reason}");
                assert!(reason.contains("twice"), "{reason}");
            }
            other => panic!("expected InvalidScenario, got {other:?}"),
        }
    }

    #[test]
    fn spec_built_fields_match_directly_assembled_ones() {
        use crate::session::RuntimePolicy;
        use teg_reconfig::SchemeSpec;
        use teg_units::Seconds;

        let s = scenario(10, 20, 7);
        let policy = RuntimePolicy::Fixed(Seconds::new(0.002));
        let specs = [SchemeSpec::inor(), SchemeSpec::baseline_square_grid(10)];
        let from_specs = Comparison::from_specs(&s, &specs)
            .runtime_policy(policy)
            .run()
            .unwrap();
        let by_hand = Comparison::new(&s)
            .scheme(Inor::default())
            .scheme(teg_reconfig::StaticBaseline::square_grid(10))
            .runtime_policy(policy)
            .run()
            .unwrap();
        // Under a fixed runtime policy the whole run is deterministic, so
        // the two assemblies agree exactly.
        assert_eq!(from_specs, by_hand);
    }

    #[test]
    fn fixed_runtime_policy_makes_reruns_identical() {
        use crate::session::RuntimePolicy;
        use teg_units::Seconds;

        let s = scenario(12, 25, 8);
        // INOR, EHTR and the baseline decide purely from telemetry; with a
        // fixed runtime charge the entire report is reproducible.  (DNOR is
        // excluded: its switch economics consult its own measured runtime.)
        let run = || {
            Comparison::new(&s)
                .scheme(Inor::default())
                .scheme(Ehtr::default())
                .scheme(StaticBaseline::square_grid(12))
                .runtime_policy(RuntimePolicy::Fixed(Seconds::new(0.001)))
                .run()
                .unwrap()
        };
        assert_eq!(run(), run());
    }
}
