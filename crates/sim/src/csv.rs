//! CSV rendering of simulation records for external plotting — as a whole
//! buffer ([`records_to_csv`]) or as a streaming [`CsvSink`] observer that
//! writes rows as the session produces them.

use std::fmt::Write as _;
use std::io;

use crate::record::StepRecord;
use crate::session::StepObserver;

/// The CSV header row shared by [`records_to_csv`] and [`CsvSink`].  The
/// trailing fault columns record how many faults were active during the step
/// and how many fault-plan events fired at its start (both zero for healthy
/// runs).
pub const CSV_HEADER: &str =
    "time_s,array_power_w,net_power_w,delivered_power_w,ideal_power_w,ideal_ratio,groups,switched,overhead_j,computation_ms,faults_active,fault_events";

fn record_to_row(r: &StepRecord) -> String {
    format!(
        "{:.1},{:.4},{:.4},{:.4},{:.4},{:.5},{},{},{:.5},{:.5},{},{}",
        r.time().value(),
        r.array_power().value(),
        r.net_power().value(),
        r.delivered_power().value(),
        r.ideal_power().value(),
        r.ideal_ratio(),
        r.group_count(),
        u8::from(r.switched()),
        r.overhead_energy().value(),
        r.computation().to_milliseconds().value(),
        r.faults_active(),
        r.fault_events(),
    )
}

/// A [`StepObserver`] streaming one CSV row per step into any writer, so a
/// Fig. 6-style trace can be exported without buffering the run.
///
/// The header is written before the first row.  I/O errors are retained and
/// reported by [`CsvSink::finish`] rather than panicking mid-simulation.
///
/// # Examples
///
/// ```
/// use teg_reconfig::Inor;
/// use teg_sim::{CsvSink, Scenario, SimSession};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scenario = Scenario::builder().module_count(8).duration_seconds(12).seed(1).build()?;
/// let mut sink = CsvSink::new(Vec::new());
/// let mut inor = Inor::default();
/// let mut session = SimSession::new(&scenario, &mut inor)?;
/// session.attach(&mut sink);
/// while session.step()?.is_some() {}
/// drop(session);
/// let csv = String::from_utf8(sink.finish()?)?;
/// assert_eq!(csv.lines().count(), 13); // header + one row per second
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CsvSink<W: io::Write> {
    writer: W,
    header_written: bool,
    rows: usize,
    error: Option<io::Error>,
}

impl<W: io::Write> CsvSink<W> {
    /// Wraps a writer (file, socket, `Vec<u8>`, …) as a streaming CSV sink.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            header_written: false,
            rows: 0,
            error: None,
        }
    }

    /// Number of data rows written so far.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Flushes and returns the writer, surfacing any I/O error encountered
    /// while streaming.
    ///
    /// # Errors
    ///
    /// Returns the first [`io::Error`] hit during streaming or flushing.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }

    fn write_row(&mut self, record: &StepRecord) -> io::Result<()> {
        if !self.header_written {
            self.header_written = true;
            writeln!(self.writer, "{CSV_HEADER}")?;
        }
        writeln!(self.writer, "{}", record_to_row(record))?;
        self.rows += 1;
        Ok(())
    }
}

impl<W: io::Write> StepObserver for CsvSink<W> {
    fn on_step(&mut self, record: &StepRecord) {
        if self.error.is_some() {
            return;
        }
        if let Err(error) = self.write_row(record) {
            self.error = Some(error);
        }
    }
}

/// Renders step records as a CSV string with a header row, suitable for
/// piping into a plotting tool to regenerate Figs. 6–7.
///
/// # Examples
///
/// ```
/// use teg_sim::{records_to_csv, StepRecord};
/// use teg_units::{Joules, Seconds, Watts};
///
/// let record = StepRecord::new(
///     Seconds::new(0.0),
///     Watts::new(50.0),
///     Watts::new(49.0),
///     Watts::new(47.0),
///     Watts::new(60.0),
///     5,
///     false,
///     Joules::new(0.0),
///     Seconds::new(0.001),
/// );
/// let csv = records_to_csv(&[record]);
/// assert!(csv.starts_with("time_s,"));
/// assert_eq!(csv.lines().count(), 2);
/// ```
#[must_use]
pub fn records_to_csv(records: &[StepRecord]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for r in records {
        let _ = writeln!(out, "{}", record_to_row(r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_units::{Joules, Seconds, Watts};

    fn record(t: f64, switched: bool) -> StepRecord {
        StepRecord::new(
            Seconds::new(t),
            Watts::new(55.0),
            Watts::new(54.0),
            Watts::new(52.0),
            Watts::new(62.0),
            6,
            switched,
            Joules::new(1.25),
            Seconds::new(0.0031),
        )
    }

    #[test]
    fn header_plus_one_line_per_record() {
        let csv = records_to_csv(&[record(0.0, false), record(1.0, true)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("ideal_ratio"));
        assert!(lines[1].starts_with("0.0,55.0000"));
        assert!(lines[2].contains(",1,"));
        // Every data row has the same number of fields as the header.
        let header_fields = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), header_fields);
        }
    }

    #[test]
    fn empty_input_yields_header_only() {
        let csv = records_to_csv(&[]);
        assert_eq!(csv.lines().count(), 1);
    }

    #[test]
    fn fault_columns_render_the_annotations() {
        let degraded = record(2.0, false).with_faults(4, 2);
        let csv = records_to_csv(&[record(1.0, false), degraded]);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(
            lines[0].ends_with("faults_active,fault_events"),
            "{}",
            lines[0]
        );
        assert!(lines[1].ends_with(",0,0"), "{}", lines[1]);
        assert!(lines[2].ends_with(",4,2"), "{}", lines[2]);
    }

    #[test]
    fn sink_streams_header_and_rows() {
        let mut sink = CsvSink::new(Vec::new());
        sink.on_step(&record(0.0, false));
        sink.on_step(&record(1.0, true));
        assert_eq!(sink.rows(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(
            text,
            records_to_csv(&[record(0.0, false), record(1.0, true)])
        );
    }

    #[test]
    fn sink_surfaces_io_errors_at_finish() {
        #[derive(Debug)]
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = CsvSink::new(Broken);
        sink.on_step(&record(0.0, false));
        // Further steps are no-ops once poisoned.
        sink.on_step(&record(1.0, false));
        assert_eq!(sink.rows(), 0);
        let err = sink.finish().unwrap_err();
        assert!(err.to_string().contains("disk on fire"));
    }
}
