//! CSV rendering of simulation records for external plotting.

use std::fmt::Write as _;

use crate::record::StepRecord;

/// Renders step records as a CSV string with a header row, suitable for
/// piping into a plotting tool to regenerate Figs. 6–7.
///
/// # Examples
///
/// ```
/// use teg_sim::{records_to_csv, StepRecord};
/// use teg_units::{Joules, Seconds, Watts};
///
/// let record = StepRecord::new(
///     Seconds::new(0.0),
///     Watts::new(50.0),
///     Watts::new(49.0),
///     Watts::new(47.0),
///     Watts::new(60.0),
///     5,
///     false,
///     Joules::new(0.0),
///     Seconds::new(0.001),
/// );
/// let csv = records_to_csv(&[record]);
/// assert!(csv.starts_with("time_s,"));
/// assert_eq!(csv.lines().count(), 2);
/// ```
#[must_use]
pub fn records_to_csv(records: &[StepRecord]) -> String {
    let mut out = String::from(
        "time_s,array_power_w,net_power_w,delivered_power_w,ideal_power_w,ideal_ratio,groups,switched,overhead_j,computation_ms\n",
    );
    for r in records {
        let _ = writeln!(
            out,
            "{:.1},{:.4},{:.4},{:.4},{:.4},{:.5},{},{},{:.5},{:.5}",
            r.time().value(),
            r.array_power().value(),
            r.net_power().value(),
            r.delivered_power().value(),
            r.ideal_power().value(),
            r.ideal_ratio(),
            r.group_count(),
            u8::from(r.switched()),
            r.overhead_energy().value(),
            r.computation().to_milliseconds().value(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_units::{Joules, Seconds, Watts};

    fn record(t: f64, switched: bool) -> StepRecord {
        StepRecord::new(
            Seconds::new(t),
            Watts::new(55.0),
            Watts::new(54.0),
            Watts::new(52.0),
            Watts::new(62.0),
            6,
            switched,
            Joules::new(1.25),
            Seconds::new(0.0031),
        )
    }

    #[test]
    fn header_plus_one_line_per_record() {
        let csv = records_to_csv(&[record(0.0, false), record(1.0, true)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("ideal_ratio"));
        assert!(lines[1].starts_with("0.0,55.0000"));
        assert!(lines[2].contains(",1,"));
        // Every data row has the same number of fields as the header.
        let header_fields = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), header_fields);
        }
    }

    #[test]
    fn empty_input_yields_header_only() {
        let csv = records_to_csv(&[]);
        assert_eq!(csv.lines().count(), 1);
    }
}
