//! The classic run-to-completion entry point, now a thin wrapper over the
//! streaming [`SimSession`].

use teg_reconfig::Reconfigurer;

use crate::error::SimError;
use crate::report::SimulationReport;
use crate::scenario::Scenario;
use crate::session::SimSession;

/// Runs reconfiguration schemes against a fixed [`Scenario`].
///
/// All schemes start from the same square-grid wiring and see exactly the
/// same drive cycle, radiator and overhead model, so their reports are
/// directly comparable (Table I, Figs. 6–7).  Each run is one
/// [`SimSession`] driven to completion; the scenario's thermal trace is
/// solved once and shared by every run (and by any [`Comparison`]), so
/// back-to-back runs of several schemes no longer repeat the radiator
/// solve.
///
/// [`Comparison`]: crate::Comparison
///
/// # Examples
///
/// ```
/// use teg_reconfig::{Dnor, Inor};
/// use teg_sim::{Scenario, SimulationEngine};
///
/// # fn main() -> Result<(), teg_sim::SimError> {
/// let scenario = Scenario::builder().module_count(16).duration_seconds(40).seed(3).build()?;
/// let engine = SimulationEngine::new(scenario);
/// let inor = engine.run(&mut Inor::default())?;
/// let dnor = engine.run(&mut Dnor::default())?;
/// // DNOR switches far less often than fixed-period INOR.
/// assert!(dnor.switch_count() <= inor.switch_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimulationEngine {
    scenario: Scenario,
}

impl SimulationEngine {
    /// Creates an engine over the given scenario.
    #[must_use]
    pub fn new(scenario: Scenario) -> Self {
        Self { scenario }
    }

    /// The scenario the engine replays.
    #[must_use]
    pub const fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Runs one scheme over the whole drive cycle and returns its report.
    ///
    /// The scheme is `reset` before the run so the same instance can be
    /// reused across scenarios.  This is a compatibility wrapper: it opens a
    /// [`SimSession`] and drives it to completion, so stepping manually,
    /// attaching observers or comparing schemes in lockstep all produce the
    /// same physics.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from any substrate (thermal solve, array
    /// solve, reconfiguration decision).
    pub fn run(&self, scheme: &mut dyn Reconfigurer) -> Result<SimulationReport, SimError> {
        SimSession::new(&self.scenario, scheme)?.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_reconfig::{Dnor, Ehtr, Inor, StaticBaseline};
    use teg_units::Joules;

    fn engine(modules: usize, seconds: usize, seed: u64) -> SimulationEngine {
        let scenario = Scenario::builder()
            .module_count(modules)
            .duration_seconds(seconds)
            .seed(seed)
            .build()
            .expect("valid scenario");
        SimulationEngine::new(scenario)
    }

    #[test]
    fn report_has_one_record_per_second() {
        let engine = engine(12, 25, 1);
        let report = engine.run(&mut StaticBaseline::square_grid(12)).unwrap();
        assert_eq!(report.records().len(), 25);
        assert_eq!(report.scheme(), "Baseline");
        assert!(report.net_energy().value() > 0.0);
        assert_eq!(engine.scenario().module_count(), 12);
    }

    #[test]
    fn baseline_never_switches_after_initial_wiring() {
        let engine = engine(16, 30, 2);
        let report = engine.run(&mut StaticBaseline::square_grid(16)).unwrap();
        // The engine already starts from the square grid, so the baseline has
        // nothing to change.
        assert_eq!(report.switch_count(), 0);
        assert_eq!(report.overhead_energy(), Joules::ZERO);
        assert_eq!(report.average_runtime().value(), 0.0);
    }

    #[test]
    fn inor_beats_the_baseline_on_energy() {
        let engine = engine(30, 40, 3);
        let inor = engine.run(&mut Inor::default()).unwrap();
        let baseline = engine.run(&mut StaticBaseline::square_grid(30)).unwrap();
        assert!(
            inor.net_energy().value() > baseline.net_energy().value(),
            "INOR {} should beat baseline {}",
            inor.net_energy(),
            baseline.net_energy()
        );
    }

    #[test]
    fn dnor_switches_far_less_and_accumulates_less_overhead_than_inor() {
        let engine = engine(24, 60, 4);
        let inor = engine.run(&mut Inor::default()).unwrap();
        let dnor = engine.run(&mut Dnor::default()).unwrap();
        assert!(dnor.switch_count() < inor.switch_count());
        assert!(dnor.overhead_energy().value() < inor.overhead_energy().value());
        // And its net energy is at least as good (it loses less to overhead).
        assert!(dnor.net_energy().value() >= 0.98 * inor.net_energy().value());
    }

    #[test]
    fn net_energy_never_exceeds_gross_or_ideal() {
        let engine = engine(20, 30, 5);
        for report in [
            engine.run(&mut Inor::default()).unwrap(),
            engine.run(&mut Dnor::default()).unwrap(),
            engine.run(&mut StaticBaseline::square_grid(20)).unwrap(),
        ] {
            assert!(report.net_energy() <= report.gross_energy());
            assert!(report.net_energy().value() <= report.ideal_energy().value() + 1e-6);
            assert!(report.ideal_fraction() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn fixed_period_schemes_are_invoked_twice_per_second() {
        let engine = engine(10, 10, 6);
        let report = engine.run(&mut Inor::default()).unwrap();
        // 0.5 s period over 10 one-second steps → 20 invocations.
        assert_eq!(report.runtime().invocations(), 20);
    }

    #[test]
    fn ehtr_matches_inor_energy_but_runs_slower() {
        let engine = engine(20, 20, 7);
        let inor = engine.run(&mut Inor::default()).unwrap();
        let ehtr = engine.run(&mut Ehtr::default()).unwrap();
        let ratio = ehtr.net_energy().value() / inor.net_energy().value();
        assert!((0.95..=1.05).contains(&ratio), "energy ratio {ratio}");
        assert!(ehtr.runtime().total().value() >= inor.runtime().total().value());
    }

    #[test]
    fn runs_are_reproducible_up_to_timing_jitter() {
        // The physics and the decisions are deterministic; only the measured
        // wall-clock computation time (and hence a few millijoules of
        // overhead) varies between runs.
        let engine = engine(14, 20, 8);
        let a = engine.run(&mut Dnor::default()).unwrap();
        let b = engine.run(&mut Dnor::default()).unwrap();
        assert_eq!(a.switch_count(), b.switch_count());
        assert_eq!(a.gross_energy(), b.gross_energy());
        let diff = (a.net_energy().value() - b.net_energy().value()).abs();
        assert!(
            diff < 1.0,
            "net energy differs by {diff} J between identical runs"
        );
        // The array power trace (pre-overhead) is bit-identical.
        let trace_a = a.power_trace();
        let trace_b = b.power_trace();
        assert_eq!(trace_a, trace_b);
    }
}
