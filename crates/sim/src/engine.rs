//! The time-stepped co-simulation loop.

use teg_array::{ideal_power, Configuration};
use teg_reconfig::{ReconfigInputs, Reconfigurer, RuntimeStats};
use teg_units::{Joules, Seconds};

use crate::error::SimError;
use crate::record::StepRecord;
use crate::report::SimulationReport;
use crate::scenario::Scenario;

/// Runs reconfiguration schemes against a fixed [`Scenario`].
///
/// All schemes start from the same square-grid wiring and see exactly the
/// same drive cycle, radiator and overhead model, so their reports are
/// directly comparable (Table I, Figs. 6–7).
///
/// # Examples
///
/// ```
/// use teg_reconfig::{Dnor, Inor};
/// use teg_sim::{Scenario, SimulationEngine};
///
/// # fn main() -> Result<(), teg_sim::SimError> {
/// let scenario = Scenario::builder().module_count(16).duration_seconds(40).seed(3).build()?;
/// let engine = SimulationEngine::new(scenario);
/// let inor = engine.run(&mut Inor::default())?;
/// let dnor = engine.run(&mut Dnor::default())?;
/// // DNOR switches far less often than fixed-period INOR.
/// assert!(dnor.switch_count() <= inor.switch_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimulationEngine {
    scenario: Scenario,
}

impl SimulationEngine {
    /// Creates an engine over the given scenario.
    #[must_use]
    pub fn new(scenario: Scenario) -> Self {
        Self { scenario }
    }

    /// The scenario the engine replays.
    #[must_use]
    pub const fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Runs one scheme over the whole drive cycle and returns its report.
    ///
    /// The scheme is `reset` before the run so the same instance can be
    /// reused across scenarios.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from any substrate (thermal solve, array
    /// solve, reconfiguration decision).
    pub fn run(&self, scheme: &mut dyn Reconfigurer) -> Result<SimulationReport, SimError> {
        let scenario = &self.scenario;
        let array = scenario.array();
        let module_count = array.len();
        let step = scenario.step();

        // Every scheme starts from the same square-grid wiring the baseline
        // uses, so differences come from the decisions, not the start state.
        let initial_groups = (module_count as f64).sqrt().ceil().max(1.0) as usize;
        let mut config = Configuration::uniform(module_count, initial_groups.min(module_count))?;

        let invocations_per_step = (step.value() / scheme.period().value())
            .round()
            .max(1.0) as usize;

        let mut history: Vec<Vec<f64>> = Vec::with_capacity(scenario.drive_cycle().len());
        let mut records = Vec::with_capacity(scenario.drive_cycle().len());
        let mut runtime = RuntimeStats::new();
        let mut switch_count = 0usize;
        scheme.reset();

        for sample in scenario.drive_cycle().iter() {
            let profile = scenario
                .radiator()
                .surface_profile(&sample.coolant(), &sample.ambient())?;
            let temps: Vec<f64> = profile
                .sample(scenario.placement())
                .iter()
                .map(|t| t.value())
                .collect();
            history.push(temps);
            let ambient = sample.ambient().temperature();
            let deltas = ReconfigInputs::deltas_from_row(
                history.last().expect("just pushed"),
                ambient,
            );
            let ideal = ideal_power(array.modules(), &deltas)?;

            let mut overhead_energy = Joules::ZERO;
            let mut computation_total = Seconds::ZERO;
            let mut switched_this_step = false;

            for _ in 0..invocations_per_step {
                let inputs = ReconfigInputs::new(array, &history, ambient)?;
                let decision = scheme.decide(&inputs, &config)?;
                runtime.record(decision.computation());
                computation_total += decision.computation();
                let applied = decision.applied();
                let computation = decision.computation();
                let next = decision.into_configuration();
                let toggles = config.switch_toggles_to(&next)?;
                let current_power = array.mpp_power(&config, &deltas)?;
                if applied {
                    // Applying a configuration (even an unchanged one, as the
                    // fixed-period schemes do) interrupts harvesting for the
                    // reconfiguration dead time and costs actuation energy
                    // for every toggled switch.
                    let event = scenario.overhead().event(current_power, computation, toggles);
                    overhead_energy += event.total_energy();
                    if toggles > 0 {
                        switched_this_step = true;
                        switch_count += 1;
                        config = next;
                    }
                }
            }

            let op = array.maximum_power_point(&config, &deltas)?;
            let array_power = op.power();
            let gross = array_power * step;
            let net = (gross - overhead_energy).max(Joules::ZERO);
            let net_power = net.average_power(step);
            let delivered_power = scenario.charger().output_power(op.voltage(), net_power);

            records.push(StepRecord::new(
                sample.time(),
                array_power,
                net_power,
                delivered_power,
                ideal,
                config.group_count(),
                switched_this_step,
                overhead_energy,
                computation_total,
            ));
        }

        Ok(SimulationReport::new(scheme.name(), records, step, switch_count, runtime))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_reconfig::{Dnor, Ehtr, Inor, StaticBaseline};

    fn engine(modules: usize, seconds: usize, seed: u64) -> SimulationEngine {
        let scenario = Scenario::builder()
            .module_count(modules)
            .duration_seconds(seconds)
            .seed(seed)
            .build()
            .expect("valid scenario");
        SimulationEngine::new(scenario)
    }

    #[test]
    fn report_has_one_record_per_second() {
        let engine = engine(12, 25, 1);
        let report = engine.run(&mut StaticBaseline::square_grid(12)).unwrap();
        assert_eq!(report.records().len(), 25);
        assert_eq!(report.scheme(), "Baseline");
        assert!(report.net_energy().value() > 0.0);
        assert_eq!(engine.scenario().module_count(), 12);
    }

    #[test]
    fn baseline_never_switches_after_initial_wiring() {
        let engine = engine(16, 30, 2);
        let report = engine.run(&mut StaticBaseline::square_grid(16)).unwrap();
        // The engine already starts from the square grid, so the baseline has
        // nothing to change.
        assert_eq!(report.switch_count(), 0);
        assert_eq!(report.overhead_energy(), Joules::ZERO);
        assert_eq!(report.average_runtime().value(), 0.0);
    }

    #[test]
    fn inor_beats_the_baseline_on_energy() {
        let engine = engine(30, 40, 3);
        let inor = engine.run(&mut Inor::default()).unwrap();
        let baseline = engine.run(&mut StaticBaseline::square_grid(30)).unwrap();
        assert!(
            inor.net_energy().value() > baseline.net_energy().value(),
            "INOR {} should beat baseline {}",
            inor.net_energy(),
            baseline.net_energy()
        );
    }

    #[test]
    fn dnor_switches_far_less_and_accumulates_less_overhead_than_inor() {
        let engine = engine(24, 60, 4);
        let inor = engine.run(&mut Inor::default()).unwrap();
        let dnor = engine.run(&mut Dnor::default()).unwrap();
        assert!(dnor.switch_count() < inor.switch_count());
        assert!(dnor.overhead_energy().value() < inor.overhead_energy().value());
        // And its net energy is at least as good (it loses less to overhead).
        assert!(dnor.net_energy().value() >= 0.98 * inor.net_energy().value());
    }

    #[test]
    fn net_energy_never_exceeds_gross_or_ideal() {
        let engine = engine(20, 30, 5);
        for report in [
            engine.run(&mut Inor::default()).unwrap(),
            engine.run(&mut Dnor::default()).unwrap(),
            engine.run(&mut StaticBaseline::square_grid(20)).unwrap(),
        ] {
            assert!(report.net_energy() <= report.gross_energy());
            assert!(report.net_energy().value() <= report.ideal_energy().value() + 1e-6);
            assert!(report.ideal_fraction() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn fixed_period_schemes_are_invoked_twice_per_second() {
        let engine = engine(10, 10, 6);
        let report = engine.run(&mut Inor::default()).unwrap();
        // 0.5 s period over 10 one-second steps → 20 invocations.
        assert_eq!(report.runtime().invocations(), 20);
    }

    #[test]
    fn ehtr_matches_inor_energy_but_runs_slower() {
        let engine = engine(20, 20, 7);
        let inor = engine.run(&mut Inor::default()).unwrap();
        let ehtr = engine.run(&mut Ehtr::default()).unwrap();
        let ratio = ehtr.net_energy().value() / inor.net_energy().value();
        assert!((0.95..=1.05).contains(&ratio), "energy ratio {ratio}");
        assert!(ehtr.runtime().total().value() >= inor.runtime().total().value());
    }

    #[test]
    fn runs_are_reproducible_up_to_timing_jitter() {
        // The physics and the decisions are deterministic; only the measured
        // wall-clock computation time (and hence a few millijoules of
        // overhead) varies between runs.
        let engine = engine(14, 20, 8);
        let a = engine.run(&mut Dnor::default()).unwrap();
        let b = engine.run(&mut Dnor::default()).unwrap();
        assert_eq!(a.switch_count(), b.switch_count());
        assert_eq!(a.gross_energy(), b.gross_energy());
        let diff = (a.net_energy().value() - b.net_energy().value()).abs();
        assert!(diff < 1.0, "net energy differs by {diff} J between identical runs");
        // The array power trace (pre-overhead) is bit-identical.
        let trace_a = a.power_trace();
        let trace_b = b.power_trace();
        assert_eq!(trace_a, trace_b);
    }
}
