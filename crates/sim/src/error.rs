//! Error type for the simulation engine.

use std::error::Error;
use std::fmt;

use teg_array::ArrayError;
use teg_power::PowerError;
use teg_reconfig::ReconfigError;
use teg_thermal::ThermalError;

/// Errors produced while building scenarios or running simulations.
///
/// # Examples
///
/// ```
/// use teg_sim::SimError;
///
/// let err = SimError::InvalidScenario { reason: "zero modules".into() };
/// assert!(err.to_string().contains("zero modules"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A scenario parameter was invalid.
    InvalidScenario {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An error bubbled up from the thermal substrate.
    Thermal(ThermalError),
    /// An error bubbled up from the array substrate.
    Array(ArrayError),
    /// An error bubbled up from the power-electronics substrate.
    Power(PowerError),
    /// An error bubbled up from a reconfiguration algorithm.
    Reconfig(ReconfigError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidScenario { reason } => write!(f, "invalid scenario: {reason}"),
            Self::Thermal(err) => write!(f, "thermal model error: {err}"),
            Self::Array(err) => write!(f, "array model error: {err}"),
            Self::Power(err) => write!(f, "power model error: {err}"),
            Self::Reconfig(err) => write!(f, "reconfiguration error: {err}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::InvalidScenario { .. } => None,
            Self::Thermal(err) => Some(err),
            Self::Array(err) => Some(err),
            Self::Power(err) => Some(err),
            Self::Reconfig(err) => Some(err),
        }
    }
}

impl From<ThermalError> for SimError {
    fn from(err: ThermalError) -> Self {
        Self::Thermal(err)
    }
}

impl From<ArrayError> for SimError {
    fn from(err: ArrayError) -> Self {
        Self::Array(err)
    }
}

impl From<PowerError> for SimError {
    fn from(err: PowerError) -> Self {
        Self::Power(err)
    }
}

impl From<ReconfigError> for SimError {
    fn from(err: ReconfigError) -> Self {
        Self::Reconfig(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let err = SimError::from(ThermalError::NonPositiveFlowRate { kg_per_s: 0.0 });
        assert!(err.to_string().contains("thermal"));
        assert!(std::error::Error::source(&err).is_some());
        let err = SimError::from(ArrayError::EmptyArray);
        assert!(err.to_string().contains("array"));
        let err = SimError::from(PowerError::InvalidParameter {
            name: "x",
            value: 1.0,
        });
        assert!(err.to_string().contains("power"));
        let err = SimError::from(ReconfigError::EmptyHistory);
        assert!(err.to_string().contains("reconfiguration"));
        let err = SimError::InvalidScenario {
            reason: "broken".into(),
        };
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<SimError>();
    }
}
