//! Timed fault plans: deterministic schedules of degradation events a
//! scenario replays alongside its drive cycle.
//!
//! A [`FaultPlan`] is a sorted list of [`FaultEvent`]s — "at drive second
//! 120, module 7 open-circuits; at 300, the sensor of module 3 goes noisy;
//! at 450, link 12's switches weld shut" — plus the seed of the sensor-noise
//! stream.  The plan lives on the [`Scenario`](crate::Scenario), so every
//! scheme compared over that scenario faces exactly the same degradation at
//! exactly the same instants, and the whole run stays bit-reproducible for
//! any sweep worker count.
//!
//! Plans are built explicitly ([`FaultPlan::new`]) or generated from a
//! seeded [`FaultSeverity`] recipe ([`FaultPlan::random`]), and serialise to
//! a compact one-line spec ([`FaultPlan::spec`]) suitable for session
//! records, CSV headers and report captions.

use std::fmt;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use teg_array::{FaultState, ModuleFault, SwitchStuck};
use teg_reconfig::{SensorFault, SensorFaultInjector};

use crate::error::SimError;

/// What a single fault event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// The module's electrical fault becomes the given one.
    Module {
        /// Index of the affected module.
        module: usize,
        /// The fault to activate.
        fault: ModuleFault,
    },
    /// The module's electrical fault is cleared.
    ModuleRepair {
        /// Index of the repaired module.
        module: usize,
    },
    /// The parallel switch pair of a link sticks.
    Switch {
        /// Index of the affected link (between modules `link` and `link+1`).
        link: usize,
        /// How the switches stick.
        stuck: SwitchStuck,
    },
    /// The link's switches are freed.
    SwitchRepair {
        /// Index of the repaired link.
        link: usize,
    },
    /// The module's temperature sensor fails the given way.
    Sensor {
        /// Index of the affected sensor.
        module: usize,
        /// The sensor failure mode.
        fault: SensorFault,
    },
    /// The module's temperature sensor is restored.
    SensorRepair {
        /// Index of the repaired sensor.
        module: usize,
    },
}

impl FaultAction {
    /// Applies the action to the electrical fault state and the sensor
    /// injector of a running session.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] when the target index is out of range —
    /// unreachable for plans validated against the scenario's module count.
    pub(crate) fn apply(
        &self,
        electrical: &mut FaultState,
        sensors: &mut SensorFaultInjector,
    ) -> Result<(), SimError> {
        match *self {
            Self::Module { module, fault } => electrical.set_module_fault(module, fault)?,
            Self::ModuleRepair { module } => electrical.clear_module_fault(module)?,
            Self::Switch { link, stuck } => electrical.set_switch_fault(link, stuck)?,
            Self::SwitchRepair { link } => electrical.clear_switch_fault(link)?,
            Self::Sensor { module, fault } => sensors.set_fault(module, fault)?,
            Self::SensorRepair { module } => sensors.clear_fault(module)?,
        }
        Ok(())
    }

    /// Checks the action's target indices against an array size.
    fn validate(&self, module_count: usize) -> Result<(), SimError> {
        let (kind, index, limit) = match *self {
            Self::Module { module, fault } => {
                if let ModuleFault::Derated(factor) = fault {
                    if !(factor > 0.0 && factor < 1.0) {
                        return Err(SimError::InvalidScenario {
                            reason: format!(
                                "fault plan derates module {module} by {factor}, outside (0, 1)"
                            ),
                        });
                    }
                }
                ("module", module, module_count)
            }
            Self::ModuleRepair { module } => ("module", module, module_count),
            Self::Switch { link, .. } | Self::SwitchRepair { link } => {
                ("link", link, module_count.saturating_sub(1))
            }
            Self::Sensor { module, fault } => {
                if let SensorFault::Noisy { sigma } = fault {
                    if !(sigma.is_finite() && sigma >= 0.0) {
                        return Err(SimError::InvalidScenario {
                            reason: format!(
                                "fault plan sets sensor {module} noise sigma to {sigma}"
                            ),
                        });
                    }
                }
                ("sensor", module, module_count)
            }
            Self::SensorRepair { module } => ("sensor", module, module_count),
        };
        if index >= limit {
            return Err(SimError::InvalidScenario {
                reason: format!(
                    "fault plan targets {kind} {index} but a {module_count}-module array has \
                     only {limit} of them"
                ),
            });
        }
        Ok(())
    }
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::Module { module, fault } => match fault {
                ModuleFault::Derated(factor) => write!(f, "m{module}.derate{factor:.2}"),
                other => write!(f, "m{module}.{}", other.tag()),
            },
            Self::ModuleRepair { module } => write!(f, "m{module}.repair"),
            Self::Switch { link, stuck } => match stuck {
                SwitchStuck::Open => write!(f, "s{link}.stuck_open"),
                SwitchStuck::Closed => write!(f, "s{link}.stuck_closed"),
            },
            Self::SwitchRepair { link } => write!(f, "s{link}.repair"),
            Self::Sensor { module, fault } => match fault {
                SensorFault::Noisy { sigma } => write!(f, "n{module}.noise{sigma:.2}"),
                other => write!(f, "n{module}.{}", other.tag()),
            },
            Self::SensorRepair { module } => write!(f, "n{module}.repair"),
        }
    }
}

/// One timed entry of a [`FaultPlan`]: fire `action` at the start of drive
/// step `step`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    step: usize,
    action: FaultAction,
}

impl FaultEvent {
    /// Creates an event firing at the start of the given drive step
    /// (0-based, one step per drive-cycle second).
    #[must_use]
    pub const fn new(step: usize, action: FaultAction) -> Self {
        Self { step, action }
    }

    /// The drive step the event fires at.
    #[must_use]
    pub const fn step(&self) -> usize {
        self.step
    }

    /// What the event does.
    #[must_use]
    pub const fn action(&self) -> &FaultAction {
        &self.action
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.step, self.action)
    }
}

/// A deterministic schedule of fault events plus the sensor-noise seed.
///
/// # Examples
///
/// ```
/// use teg_array::ModuleFault;
/// use teg_sim::{FaultAction, FaultEvent, FaultPlan};
///
/// let plan = FaultPlan::new(vec![
///     FaultEvent::new(30, FaultAction::Module { module: 2, fault: ModuleFault::OpenCircuit }),
///     FaultEvent::new(10, FaultAction::ModuleRepair { module: 2 }),
/// ]);
/// // Events are kept sorted by firing step.
/// assert_eq!(plan.events()[0].step(), 10);
/// assert_eq!(plan.spec(), "10:m2.repair;30:m2.open");
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    sensor_seed: u64,
}

impl FaultPlan {
    /// A plan with no events: the scenario stays healthy.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Creates a plan from explicit events (stably sorted by firing step, so
    /// same-step events keep their relative order).
    #[must_use]
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(FaultEvent::step);
        Self {
            events,
            sensor_seed: 0,
        }
    }

    /// Replaces the seed of the sensor-noise stream.
    #[must_use]
    pub fn with_sensor_seed(mut self, seed: u64) -> Self {
        self.sensor_seed = seed;
        self
    }

    /// The seed the session's sensor-noise stream starts from.
    #[must_use]
    pub const fn sensor_seed(&self) -> u64 {
        self.sensor_seed
    }

    /// The events in firing order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the plan schedules nothing (a healthy run).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks every event's target against an array size.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidScenario`] naming the offending event.
    pub fn validate(&self, module_count: usize) -> Result<(), SimError> {
        for event in &self.events {
            event.action.validate(module_count)?;
        }
        Ok(())
    }

    /// The compact one-line serialisation recorded in session artefacts:
    /// `;`-separated `step:action` entries (empty string for a healthy
    /// plan).
    #[must_use]
    pub fn spec(&self) -> String {
        self.events
            .iter()
            .map(FaultEvent::to_string)
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Parses the compact serialisation [`FaultPlan::spec`] emits back into
    /// a plan: `;`-separated `step:action` entries, the empty string for a
    /// healthy plan.  The sensor seed is not part of the spec (callers that
    /// need it carry it alongside, as the sweep fault-profile specs do) and
    /// comes back as 0.
    ///
    /// Fractional parameters (`derate`, `noise`) are printed to two decimals
    /// by [`FaultPlan::spec`], so `parse_spec(plan.spec())` reproduces the
    /// plan exactly when its factors were given to two decimals, and the
    /// canonical form is stable after one round trip in every case.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidScenario`] naming the first entry that
    /// does not parse.
    pub fn parse_spec(spec: &str) -> Result<Self, SimError> {
        let bad = |entry: &str, why: &str| SimError::InvalidScenario {
            reason: format!("fault spec entry {entry:?}: {why}"),
        };
        let mut events = Vec::new();
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (step, action) = entry
                .split_once(':')
                .ok_or_else(|| bad(entry, "expected `step:action`"))?;
            let step: usize = step
                .parse()
                .map_err(|_| bad(entry, "step is not an integer"))?;
            let (target, verb) = action
                .split_once('.')
                .ok_or_else(|| bad(entry, "expected `m<i>.…`, `s<i>.…` or `n<i>.…`"))?;
            let mut chars = target.chars();
            let kind = chars
                .next()
                .ok_or_else(|| bad(entry, "target must start with m, s or n"))?;
            let index: usize = chars
                .as_str()
                .parse()
                .map_err(|_| bad(entry, "target index is not an integer"))?;
            let action = match kind {
                'm' => match verb {
                    "open" => FaultAction::Module {
                        module: index,
                        fault: ModuleFault::OpenCircuit,
                    },
                    "short" => FaultAction::Module {
                        module: index,
                        fault: ModuleFault::ShortCircuit,
                    },
                    "repair" => FaultAction::ModuleRepair { module: index },
                    _ => {
                        let factor: f64 = verb
                            .strip_prefix("derate")
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| bad(entry, "unknown module verb"))?;
                        FaultAction::Module {
                            module: index,
                            fault: ModuleFault::Derated(factor),
                        }
                    }
                },
                's' => match verb {
                    "stuck_open" => FaultAction::Switch {
                        link: index,
                        stuck: SwitchStuck::Open,
                    },
                    "stuck_closed" => FaultAction::Switch {
                        link: index,
                        stuck: SwitchStuck::Closed,
                    },
                    "repair" => FaultAction::SwitchRepair { link: index },
                    _ => return Err(bad(entry, "unknown switch verb")),
                },
                'n' => match verb {
                    "dropout" => FaultAction::Sensor {
                        module: index,
                        fault: SensorFault::Dropout,
                    },
                    "stuck" => FaultAction::Sensor {
                        module: index,
                        fault: SensorFault::Stuck,
                    },
                    "repair" => FaultAction::SensorRepair { module: index },
                    _ => {
                        let sigma: f64 = verb
                            .strip_prefix("noise")
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| bad(entry, "unknown sensor verb"))?;
                        FaultAction::Sensor {
                            module: index,
                            fault: SensorFault::Noisy { sigma },
                        }
                    }
                },
                _ => return Err(bad(entry, "target must start with m, s or n")),
            };
            events.push(FaultEvent::new(step, action));
        }
        Ok(Self::new(events))
    }

    /// Generates a seeded random plan for an array of `module_count` modules
    /// over a drive of `duration_steps` steps.
    ///
    /// Each module, link and sensor independently fails with its
    /// [`FaultSeverity`] rate; failures strike uniformly inside the middle
    /// of the drive (steps `[duration/8, 3·duration/4)`, clamped inside the
    /// drive) and 40 % of them are repaired later, so schemes face both
    /// transient and permanent degradation.  Every generated event fires
    /// strictly before `duration_steps`; drives shorter than 2 steps have
    /// no room for a mid-drive fault and yield an empty plan.  The same
    /// `(module_count, duration_steps, severity, seed)` always yields the
    /// same plan.
    #[must_use]
    pub fn random(
        module_count: usize,
        duration_steps: usize,
        severity: FaultSeverity,
        seed: u64,
    ) -> Self {
        if duration_steps < 2 {
            return Self::none().with_sensor_seed(seed ^ 0x5EED_FA17_5EED_FA17);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut events = Vec::new();
        let onset_from = (duration_steps / 8).max(1);
        let onset_to = (duration_steps * 3 / 4).clamp(onset_from + 1, duration_steps);
        let onset = |rng: &mut ChaCha8Rng| rng.gen_range(onset_from..onset_to);
        let maybe_repair =
            |rng: &mut ChaCha8Rng, events: &mut Vec<FaultEvent>, at: usize, action: FaultAction| {
                // A repair needs at least one later step inside the drive.
                if at + 1 < duration_steps && rng.gen_bool(0.4) {
                    let repair_at = rng.gen_range(at + 1..duration_steps);
                    events.push(FaultEvent::new(repair_at, action));
                }
            };

        for module in 0..module_count {
            if rng.gen_bool(severity.module_rate()) {
                let fault = match rng.gen_range(0usize..3) {
                    0 => ModuleFault::OpenCircuit,
                    1 => ModuleFault::ShortCircuit,
                    _ => ModuleFault::Derated(rng.gen_range(0.3_f64..0.9)),
                };
                let at = onset(&mut rng);
                events.push(FaultEvent::new(at, FaultAction::Module { module, fault }));
                maybe_repair(
                    &mut rng,
                    &mut events,
                    at,
                    FaultAction::ModuleRepair { module },
                );
            }
        }
        for link in 0..module_count.saturating_sub(1) {
            if rng.gen_bool(severity.switch_rate()) {
                let stuck = if rng.gen_bool(0.5) {
                    SwitchStuck::Open
                } else {
                    SwitchStuck::Closed
                };
                let at = onset(&mut rng);
                events.push(FaultEvent::new(at, FaultAction::Switch { link, stuck }));
                maybe_repair(
                    &mut rng,
                    &mut events,
                    at,
                    FaultAction::SwitchRepair { link },
                );
            }
        }
        for module in 0..module_count {
            if rng.gen_bool(severity.sensor_rate()) {
                let fault = match rng.gen_range(0usize..3) {
                    0 => SensorFault::Dropout,
                    1 => SensorFault::Stuck,
                    _ => SensorFault::Noisy {
                        sigma: rng.gen_range(0.5_f64..3.0),
                    },
                };
                let at = onset(&mut rng);
                events.push(FaultEvent::new(at, FaultAction::Sensor { module, fault }));
                maybe_repair(
                    &mut rng,
                    &mut events,
                    at,
                    FaultAction::SensorRepair { module },
                );
            }
        }

        Self::new(events).with_sensor_seed(seed ^ 0x5EED_FA17_5EED_FA17)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            write!(f, "healthy")
        } else {
            f.write_str(&self.spec())
        }
    }
}

/// Per-component fault rates of a randomly generated plan: the probability
/// that each module / switch link / sensor suffers one fault over the drive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSeverity {
    module_rate: f64,
    switch_rate: f64,
    sensor_rate: f64,
}

impl FaultSeverity {
    /// Creates a severity with explicit per-component rates.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidScenario`] when any rate lies outside
    /// `[0, 1]` or is non-finite.
    pub fn new(module_rate: f64, switch_rate: f64, sensor_rate: f64) -> Result<Self, SimError> {
        for (name, rate) in [
            ("module", module_rate),
            ("switch", switch_rate),
            ("sensor", sensor_rate),
        ] {
            if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
                return Err(SimError::InvalidScenario {
                    reason: format!("{name} fault rate {rate} must lie in [0, 1]"),
                });
            }
        }
        Ok(Self {
            module_rate,
            switch_rate,
            sensor_rate,
        })
    }

    /// No faults at all (the healthy reference).
    #[must_use]
    pub const fn none() -> Self {
        Self {
            module_rate: 0.0,
            switch_rate: 0.0,
            sensor_rate: 0.0,
        }
    }

    /// A lightly degraded array: a few percent of components fault.
    #[must_use]
    pub const fn light() -> Self {
        Self {
            module_rate: 0.05,
            switch_rate: 0.02,
            sensor_rate: 0.05,
        }
    }

    /// A moderately degraded array.
    #[must_use]
    pub const fn moderate() -> Self {
        Self {
            module_rate: 0.15,
            switch_rate: 0.08,
            sensor_rate: 0.15,
        }
    }

    /// A severely degraded array: roughly a third of the plant faults.
    #[must_use]
    pub const fn severe() -> Self {
        Self {
            module_rate: 0.30,
            switch_rate: 0.15,
            sensor_rate: 0.30,
        }
    }

    /// Probability that one module suffers an electrical fault.
    #[must_use]
    pub const fn module_rate(&self) -> f64 {
        self.module_rate
    }

    /// Probability that one link's switches stick.
    #[must_use]
    pub const fn switch_rate(&self) -> f64 {
        self.switch_rate
    }

    /// Probability that one sensor fails.
    #[must_use]
    pub const fn sensor_rate(&self) -> f64 {
        self.sensor_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_sorted_stably_by_step() {
        let plan = FaultPlan::new(vec![
            FaultEvent::new(
                50,
                FaultAction::Module {
                    module: 1,
                    fault: ModuleFault::OpenCircuit,
                },
            ),
            FaultEvent::new(10, FaultAction::ModuleRepair { module: 0 }),
            FaultEvent::new(
                10,
                FaultAction::Switch {
                    link: 0,
                    stuck: SwitchStuck::Open,
                },
            ),
        ]);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.events()[0].step(), 10);
        assert_eq!(plan.events()[1].step(), 10);
        // Stable sort: the repair listed first stays first within step 10.
        assert!(matches!(
            plan.events()[0].action(),
            FaultAction::ModuleRepair { module: 0 }
        ));
        assert_eq!(plan.events()[2].step(), 50);
    }

    #[test]
    fn spec_round_trips_event_kinds() {
        let plan = FaultPlan::new(vec![
            FaultEvent::new(
                5,
                FaultAction::Module {
                    module: 3,
                    fault: ModuleFault::Derated(0.5),
                },
            ),
            FaultEvent::new(
                7,
                FaultAction::Sensor {
                    module: 2,
                    fault: SensorFault::Noisy { sigma: 1.25 },
                },
            ),
            FaultEvent::new(
                9,
                FaultAction::Switch {
                    link: 4,
                    stuck: SwitchStuck::Closed,
                },
            ),
            FaultEvent::new(11, FaultAction::SensorRepair { module: 2 }),
            FaultEvent::new(12, FaultAction::SwitchRepair { link: 4 }),
        ]);
        assert_eq!(
            plan.spec(),
            "5:m3.derate0.50;7:n2.noise1.25;9:s4.stuck_closed;11:n2.repair;12:s4.repair"
        );
        assert_eq!(plan.to_string(), plan.spec());
        assert_eq!(FaultPlan::none().to_string(), "healthy");
        assert_eq!(FaultPlan::none().spec(), "");
    }

    #[test]
    fn parse_spec_round_trips_every_action_kind() {
        let spec = "1:m0.open;2:m1.short;3:m2.derate0.50;4:m2.repair;\
                    5:s3.stuck_open;6:s4.stuck_closed;7:s3.repair;\
                    8:n5.dropout;9:n6.stuck;10:n7.noise1.25;11:n5.repair";
        let plan = FaultPlan::parse_spec(spec).unwrap();
        assert_eq!(plan.spec(), spec);
        assert_eq!(FaultPlan::parse_spec(&plan.spec()).unwrap(), plan);
        // Random plans round-trip too, modulo the sensor seed (which the
        // spec does not carry).
        let random = FaultPlan::random(30, 200, FaultSeverity::severe(), 7);
        let reparsed = FaultPlan::parse_spec(&random.spec()).unwrap();
        assert_eq!(reparsed.spec(), random.spec());
        // Empty string and stray separators parse to the healthy plan.
        assert_eq!(FaultPlan::parse_spec("").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse_spec(";; ;").unwrap(), FaultPlan::none());
    }

    #[test]
    fn parse_spec_rejects_malformed_entries() {
        for bad in [
            "nocolon",
            "x:m0.open",
            "1:m0",
            "1:.open",
            "1:q0.open",
            "1:mx.open",
            "1:m0.explode",
            "1:m0.derate",
            "1:m0.deratex",
            "1:s0.stuck",
            "1:n0.noise",
        ] {
            assert!(
                FaultPlan::parse_spec(bad).is_err(),
                "{bad:?} should not parse"
            );
        }
    }

    #[test]
    fn validation_rejects_out_of_range_targets() {
        let module_oob = FaultPlan::new(vec![FaultEvent::new(
            0,
            FaultAction::Module {
                module: 10,
                fault: ModuleFault::OpenCircuit,
            },
        )]);
        assert!(module_oob.validate(10).is_err());
        assert!(module_oob.validate(11).is_ok());

        let link_oob = FaultPlan::new(vec![FaultEvent::new(
            0,
            FaultAction::Switch {
                link: 9,
                stuck: SwitchStuck::Open,
            },
        )]);
        assert!(link_oob.validate(10).is_err()); // 10 modules → 9 links max index 8
        assert!(link_oob.validate(11).is_ok());

        let bad_derate = FaultPlan::new(vec![FaultEvent::new(
            0,
            FaultAction::Module {
                module: 0,
                fault: ModuleFault::Derated(1.5),
            },
        )]);
        assert!(bad_derate.validate(4).is_err());

        let bad_sigma = FaultPlan::new(vec![FaultEvent::new(
            0,
            FaultAction::Sensor {
                module: 0,
                fault: SensorFault::Noisy { sigma: -2.0 },
            },
        )]);
        assert!(bad_sigma.validate(4).is_err());
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let severity = FaultSeverity::severe();
        let a = FaultPlan::random(40, 200, severity, 9);
        let b = FaultPlan::random(40, 200, severity, 9);
        assert_eq!(a, b);
        let c = FaultPlan::random(40, 200, severity, 10);
        assert_ne!(a, c);
        // A severe 40-module plan is essentially never empty.
        assert!(!a.is_empty());
        a.validate(40).expect("generated plans are always valid");
        // Every onset lands inside the drive.
        assert!(a.events().iter().all(|e| e.step() < 200));
    }

    #[test]
    fn zero_severity_generates_an_empty_plan() {
        let plan = FaultPlan::random(50, 100, FaultSeverity::none(), 3);
        assert!(plan.is_empty());
    }

    #[test]
    fn severity_validation_and_presets() {
        assert!(FaultSeverity::new(-0.1, 0.0, 0.0).is_err());
        assert!(FaultSeverity::new(0.0, 1.1, 0.0).is_err());
        assert!(FaultSeverity::new(0.0, 0.0, f64::NAN).is_err());
        let custom = FaultSeverity::new(0.5, 0.25, 1.0).unwrap();
        assert_eq!(custom.module_rate(), 0.5);
        assert_eq!(custom.switch_rate(), 0.25);
        assert_eq!(custom.sensor_rate(), 1.0);
        assert!(FaultSeverity::light().module_rate() < FaultSeverity::moderate().module_rate());
        assert!(FaultSeverity::moderate().sensor_rate() < FaultSeverity::severe().sensor_rate());
    }

    #[test]
    fn tiny_drives_still_generate_valid_plans() {
        // duration 2: the onset range collapses to [1, 2) and no repair fits,
        // so every event fires at step 1 — strictly inside the drive.
        let plan = FaultPlan::random(6, 2, FaultSeverity::severe(), 4);
        plan.validate(6).unwrap();
        for event in plan.events() {
            assert_eq!(event.step(), 1);
        }
        // Drives with no mid-drive step to fault stay healthy rather than
        // scheduling events that could never fire.
        assert!(FaultPlan::random(6, 1, FaultSeverity::severe(), 4).is_empty());
        assert!(FaultPlan::random(6, 0, FaultSeverity::severe(), 4).is_empty());
    }

    #[test]
    fn every_generated_event_fires_inside_the_drive() {
        for duration in [2usize, 3, 5, 8, 20, 100] {
            for seed in 0..8 {
                let plan = FaultPlan::random(15, duration, FaultSeverity::severe(), seed);
                for event in plan.events() {
                    assert!(
                        event.step() < duration,
                        "event {event} of a {duration}-step plan could never fire"
                    );
                }
            }
        }
    }

    #[test]
    fn sensor_seed_travels_with_the_plan() {
        let plan = FaultPlan::none().with_sensor_seed(77);
        assert_eq!(plan.sensor_seed(), 77);
        let random = FaultPlan::random(10, 50, FaultSeverity::light(), 77);
        assert_ne!(random.sensor_seed(), 77); // mixed, not raw
    }
}
