//! Streaming co-simulation of the complete vehicle-radiator harvesting
//! system.
//!
//! One simulation step (1 s, matching the paper's measurement rate) chains:
//!
//! 1. the synthetic drive cycle (coolant inlet temperature + flow, ambient),
//! 2. the ε-NTU radiator model — solved **once per scenario** into a cached
//!    [`ThermalTrace`] shared by every scheme,
//! 3. the reconfiguration scheme under test
//!    ([`Reconfigurer`](teg_reconfig::Reconfigurer)), invoked at its own
//!    period over a bounded telemetry window and charged switching
//!    overhead per Section III-C,
//! 4. the array electrical solver at its MPP under the chosen configuration,
//! 5. the charger efficiency model metering energy into the battery.
//!
//! # Entry points
//!
//! [`SimSession`] is the primary API: a step-wise driver yielding one
//! [`StepRecord`] per drive-cycle second, with [`StepObserver`] sinks
//! ([`CsvSink`], [`StepFn`], your own) for streaming export and an
//! [`Iterator`] adapter.  [`Comparison`] drives several schemes in lockstep
//! over the shared thermal trace and renders Table I in one pass.
//! [`SimulationEngine::run`] remains as a thin run-to-completion wrapper
//! returning the classic [`SimulationReport`].
//!
//! # Examples
//!
//! Streaming a session:
//!
//! ```
//! use teg_reconfig::Inor;
//! use teg_sim::{Scenario, SimSession};
//!
//! # fn main() -> Result<(), teg_sim::SimError> {
//! let scenario = Scenario::builder().module_count(20).duration_seconds(60).seed(7).build()?;
//! let mut inor = Inor::default();
//! let mut session = SimSession::new(&scenario, &mut inor)?;
//! while let Some(record) = session.step()? {
//!     // consume the record as it is produced: no buffering required
//!     let _ = record.array_power();
//! }
//! assert_eq!(session.summary().steps(), 60);
//! # Ok(())
//! # }
//! ```
//!
//! Comparing the paper's four schemes in lockstep (Table I):
//!
//! ```
//! use teg_sim::{Comparison, Scenario};
//!
//! # fn main() -> Result<(), teg_sim::SimError> {
//! let scenario = Scenario::builder().module_count(20).duration_seconds(40).seed(7).build()?;
//! let table = Comparison::paper_schemes(&scenario).run()?;
//! // One radiator solve per drive second, however many schemes compete.
//! assert_eq!(scenario.thermal_solve_count(), 40);
//! let dnor = table.report("DNOR").expect("ran");
//! assert!(dnor.net_energy() >= table.report("Baseline").unwrap().net_energy());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comparison;
mod csv;
mod engine;
mod error;
mod fault;
mod record;
mod report;
mod scenario;
mod session;
mod sweep;
mod thermal_trace;
mod trace_cache;

pub use comparison::{Comparison, ComparisonReport};
pub use csv::{records_to_csv, CsvSink, CSV_HEADER};
pub use engine::SimulationEngine;
pub use error::SimError;
pub use fault::{FaultAction, FaultEvent, FaultPlan, FaultSeverity};
pub use record::StepRecord;
pub use report::SimulationReport;
pub use scenario::{Scenario, ScenarioBuilder};
pub use session::{RuntimePolicy, SessionSummary, SimSession, SolverPool, StepFn, StepObserver};
pub use sweep::{
    CellKey, DriveProfile, FaultProfile, GridSpec, PresolveStats, ScenarioGrid,
    ScenarioGridBuilder, SchemeLineup, SchemeSummary, SweepCell, SweepCellReport, SweepReport,
    SweepRunner,
};
pub use thermal_trace::ThermalTrace;
pub use trace_cache::TraceCache;
