//! Time-stepped co-simulation of the complete vehicle-radiator harvesting
//! system.
//!
//! One simulation step (1 s, matching the paper's measurement rate) chains:
//!
//! 1. the synthetic drive cycle (coolant inlet temperature + flow, ambient),
//! 2. the ε-NTU radiator model, producing the per-module hot-side
//!    temperatures via the Eq. 1 surface profile,
//! 3. the reconfiguration scheme under test ([`Reconfigurer`]), invoked at
//!    its own period and charged switching overhead per Section III-C,
//! 4. the array electrical solver at its MPP under the chosen configuration,
//! 5. the charger efficiency model metering energy into the battery.
//!
//! The per-step [`StepRecord`]s and the end-of-run [`SimulationReport`] are
//! the raw material for Table I (total energy, switch overhead, average
//! runtime), Fig. 6 (power traces) and Fig. 7 (power ratio against
//! `P_ideal`).
//!
//! # Examples
//!
//! ```
//! use teg_reconfig::{Inor, StaticBaseline};
//! use teg_sim::{Scenario, SimulationEngine};
//!
//! # fn main() -> Result<(), teg_sim::SimError> {
//! // A small, fast scenario: 20 modules over 60 seconds.
//! let scenario = Scenario::builder().module_count(20).duration_seconds(60).seed(7).build()?;
//! let engine = SimulationEngine::new(scenario);
//! let inor = engine.run(&mut Inor::default())?;
//! let baseline = engine.run(&mut StaticBaseline::square_grid(20))?;
//! assert!(inor.net_energy().value() >= baseline.net_energy().value());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csv;
mod engine;
mod error;
mod record;
mod report;
mod scenario;

pub use csv::records_to_csv;
pub use engine::SimulationEngine;
pub use error::SimError;
pub use record::StepRecord;
pub use report::SimulationReport;
pub use scenario::{Scenario, ScenarioBuilder};
