//! Per-step simulation records.

use teg_units::{Joules, Seconds, Watts};

/// Everything the engine observed during one simulation step.
///
/// # Examples
///
/// ```
/// use teg_sim::StepRecord;
/// use teg_units::{Joules, Seconds, Watts};
///
/// let record = StepRecord::new(
///     Seconds::new(10.0),
///     Watts::new(60.0),
///     Watts::new(58.0),
///     Watts::new(56.0),
///     Watts::new(70.0),
///     6,
///     true,
///     Joules::new(1.2),
///     Seconds::new(0.003),
/// );
/// assert!((record.ideal_ratio() - 60.0 / 70.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    time: Seconds,
    array_power: Watts,
    net_power: Watts,
    delivered_power: Watts,
    ideal_power: Watts,
    group_count: usize,
    switched: bool,
    overhead_energy: Joules,
    computation: Seconds,
    faults_active: usize,
    fault_events: usize,
}

impl StepRecord {
    /// Creates a record for a healthy step; normally only the engine does
    /// this.  Steps taken under degradation chain
    /// [`StepRecord::with_faults`].
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        time: Seconds,
        array_power: Watts,
        net_power: Watts,
        delivered_power: Watts,
        ideal_power: Watts,
        group_count: usize,
        switched: bool,
        overhead_energy: Joules,
        computation: Seconds,
    ) -> Self {
        Self {
            time,
            array_power,
            net_power,
            delivered_power,
            ideal_power,
            group_count,
            switched,
            overhead_energy,
            computation,
            faults_active: 0,
            fault_events: 0,
        }
    }

    /// Annotates the record with this step's fault situation: how many
    /// module/switch/sensor faults were active during the step and how many
    /// fault-plan events fired at its start.
    #[must_use]
    pub fn with_faults(mut self, faults_active: usize, fault_events: usize) -> Self {
        self.faults_active = faults_active;
        self.fault_events = fault_events;
        self
    }

    /// Simulation time at the start of the step.
    #[must_use]
    pub const fn time(&self) -> Seconds {
        self.time
    }

    /// Array output power at its MPP under the active configuration (the
    /// quantity plotted in Fig. 6).
    #[must_use]
    pub const fn array_power(&self) -> Watts {
        self.array_power
    }

    /// Array power net of the switching overhead charged to this step.
    #[must_use]
    pub const fn net_power(&self) -> Watts {
        self.net_power
    }

    /// Power delivered into the battery after the charger.
    #[must_use]
    pub const fn delivered_power(&self) -> Watts {
        self.delivered_power
    }

    /// The unconstrained upper bound `P_ideal` at this step.
    #[must_use]
    pub const fn ideal_power(&self) -> Watts {
        self.ideal_power
    }

    /// Number of series groups in the active configuration.
    #[must_use]
    pub const fn group_count(&self) -> usize {
        self.group_count
    }

    /// `true` if the configuration changed during this step (the black dots
    /// of Fig. 7).
    #[must_use]
    pub const fn switched(&self) -> bool {
        self.switched
    }

    /// Switching-overhead energy charged to this step.
    #[must_use]
    pub const fn overhead_energy(&self) -> Joules {
        self.overhead_energy
    }

    /// Algorithm computation time spent during this step.
    #[must_use]
    pub const fn computation(&self) -> Seconds {
        self.computation
    }

    /// Number of module, switch and sensor faults active during this step.
    #[must_use]
    pub const fn faults_active(&self) -> usize {
        self.faults_active
    }

    /// Number of fault-plan events that fired at the start of this step.
    #[must_use]
    pub const fn fault_events(&self) -> usize {
        self.fault_events
    }

    /// Ratio of the array power to the ideal power (the y-axis of Fig. 7),
    /// clamped to zero when no ideal power is available.
    #[must_use]
    pub fn ideal_ratio(&self) -> f64 {
        if self.ideal_power.value() <= 0.0 {
            0.0
        } else {
            self.array_power.value() / self.ideal_power.value()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(array: f64, ideal: f64, switched: bool) -> StepRecord {
        StepRecord::new(
            Seconds::new(1.0),
            Watts::new(array),
            Watts::new(array - 1.0),
            Watts::new(array * 0.95),
            Watts::new(ideal),
            5,
            switched,
            Joules::new(0.5),
            Seconds::new(0.002),
        )
    }

    #[test]
    fn accessors_round_trip() {
        let r = record(50.0, 60.0, true);
        assert_eq!(r.time(), Seconds::new(1.0));
        assert_eq!(r.array_power(), Watts::new(50.0));
        assert_eq!(r.net_power(), Watts::new(49.0));
        assert_eq!(r.delivered_power(), Watts::new(47.5));
        assert_eq!(r.ideal_power(), Watts::new(60.0));
        assert_eq!(r.group_count(), 5);
        assert!(r.switched());
        assert_eq!(r.overhead_energy(), Joules::new(0.5));
        assert_eq!(r.computation(), Seconds::new(0.002));
    }

    #[test]
    fn ideal_ratio_handles_zero_ideal_power() {
        assert_eq!(record(10.0, 0.0, false).ideal_ratio(), 0.0);
        assert!((record(45.0, 60.0, false).ideal_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn fault_annotations_default_to_zero_and_chain() {
        let healthy = record(50.0, 60.0, false);
        assert_eq!(healthy.faults_active(), 0);
        assert_eq!(healthy.fault_events(), 0);
        let degraded = healthy.with_faults(3, 1);
        assert_eq!(degraded.faults_active(), 3);
        assert_eq!(degraded.fault_events(), 1);
        assert_ne!(healthy, degraded);
        // The physical quantities are untouched by the annotation.
        assert_eq!(healthy.array_power(), degraded.array_power());
    }
}
