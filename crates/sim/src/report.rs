//! End-of-run simulation reports (the rows of Table I).

use std::fmt;

use teg_reconfig::RuntimeStats;
use teg_units::{Joules, Milliseconds, Seconds, Watts};

use crate::record::StepRecord;

/// The summary of one scheme's run over one scenario.
///
/// # Examples
///
/// ```
/// use teg_reconfig::Inor;
/// use teg_sim::{Scenario, SimulationEngine};
///
/// # fn main() -> Result<(), teg_sim::SimError> {
/// let scenario = Scenario::builder().module_count(10).duration_seconds(30).seed(1).build()?;
/// let report = SimulationEngine::new(scenario).run(&mut Inor::default())?;
/// assert_eq!(report.scheme(), "INOR");
/// assert!(report.net_energy().value() > 0.0);
/// assert!(report.net_energy() <= report.gross_energy());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    scheme: String,
    records: Vec<StepRecord>,
    step: Seconds,
    gross_energy: Joules,
    net_energy: Joules,
    delivered_energy: Joules,
    overhead_energy: Joules,
    ideal_energy: Joules,
    switch_count: usize,
    runtime: RuntimeStats,
}

impl SimulationReport {
    /// Assembles a report from the per-step records; normally only the
    /// engine does this.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        scheme: impl Into<String>,
        records: Vec<StepRecord>,
        step: Seconds,
        switch_count: usize,
        runtime: RuntimeStats,
    ) -> Self {
        let mut gross = Joules::ZERO;
        let mut net = Joules::ZERO;
        let mut delivered = Joules::ZERO;
        let mut overhead = Joules::ZERO;
        let mut ideal = Joules::ZERO;
        for r in &records {
            gross += r.array_power() * step;
            net += r.net_power() * step;
            delivered += r.delivered_power() * step;
            overhead += r.overhead_energy();
            ideal += r.ideal_power() * step;
        }
        Self {
            scheme: scheme.into(),
            records,
            step,
            gross_energy: gross,
            net_energy: net,
            delivered_energy: delivered,
            overhead_energy: overhead,
            ideal_energy: ideal,
            switch_count,
            runtime,
        }
    }

    /// Name of the scheme that produced this report.
    #[must_use]
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// The per-step records in time order.
    #[must_use]
    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }

    /// Simulated duration.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        self.step * self.records.len() as f64
    }

    /// The step length the records were sampled at (the scenario's step).
    #[must_use]
    pub const fn step(&self) -> Seconds {
        self.step
    }

    /// Array energy before subtracting switching overhead.
    #[must_use]
    pub const fn gross_energy(&self) -> Joules {
        self.gross_energy
    }

    /// Array energy net of switching overhead — the "Energy Output" column
    /// of Table I.
    #[must_use]
    pub const fn net_energy(&self) -> Joules {
        self.net_energy
    }

    /// Energy delivered into the battery after the charger.
    #[must_use]
    pub const fn delivered_energy(&self) -> Joules {
        self.delivered_energy
    }

    /// Total switching-overhead energy — the "Switch Overhead" column of
    /// Table I.
    #[must_use]
    pub const fn overhead_energy(&self) -> Joules {
        self.overhead_energy
    }

    /// The integral of `P_ideal` over the run.
    #[must_use]
    pub const fn ideal_energy(&self) -> Joules {
        self.ideal_energy
    }

    /// Number of reconfiguration (switch) events.
    #[must_use]
    pub const fn switch_count(&self) -> usize {
        self.switch_count
    }

    /// Per-invocation runtime statistics.
    #[must_use]
    pub const fn runtime(&self) -> &RuntimeStats {
        &self.runtime
    }

    /// Average algorithm runtime per invocation — the "Average Runtime"
    /// column of Table I.
    #[must_use]
    pub fn average_runtime(&self) -> Milliseconds {
        self.runtime.mean_ms()
    }

    /// Average net output power over the run.
    #[must_use]
    pub fn average_power(&self) -> Watts {
        if self.records.is_empty() {
            Watts::ZERO
        } else {
            self.net_energy.average_power(self.duration())
        }
    }

    /// Fraction of the ideal energy the scheme captured (Fig. 7 aggregated
    /// over the run).
    #[must_use]
    pub fn ideal_fraction(&self) -> f64 {
        if self.ideal_energy.value() <= 0.0 {
            0.0
        } else {
            self.net_energy.value() / self.ideal_energy.value()
        }
    }

    /// The net power trace as `(time, watts)` pairs — the series plotted in
    /// Fig. 6.
    #[must_use]
    pub fn power_trace(&self) -> Vec<(f64, f64)> {
        self.records
            .iter()
            .map(|r| (r.time().value(), r.array_power().value()))
            .collect()
    }

    /// The power-ratio trace `P / P_ideal` as `(time, ratio)` pairs — the
    /// series plotted in Fig. 7.
    #[must_use]
    pub fn ratio_trace(&self) -> Vec<(f64, f64)> {
        self.records
            .iter()
            .map(|r| (r.time().value(), r.ideal_ratio()))
            .collect()
    }

    /// The times at which the scheme switched configuration (the black dots
    /// of Fig. 7).
    #[must_use]
    pub fn switch_times(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.switched())
            .map(|r| r.time().value())
            .collect()
    }

    /// One row of Table I: energy output (J), switch overhead (J) and
    /// average runtime (ms).
    #[must_use]
    pub fn table1_row(&self) -> (f64, f64, f64) {
        (
            self.net_energy.value(),
            self.overhead_energy.value(),
            self.average_runtime().value(),
        )
    }
}

impl fmt::Display for SimulationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: energy {:.1} J, overhead {:.1} J, {} switches, avg runtime {:.3} ms over {}",
            self.scheme,
            self.net_energy.value(),
            self.overhead_energy.value(),
            self.switch_count,
            self.average_runtime().value(),
            self.duration(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_units::Watts;

    fn record(t: f64, power: f64, overhead: f64, switched: bool) -> StepRecord {
        StepRecord::new(
            Seconds::new(t),
            Watts::new(power),
            Watts::new(power - overhead),
            Watts::new(power * 0.95),
            Watts::new(power * 1.2),
            4,
            switched,
            Joules::new(overhead),
            Seconds::new(0.001),
        )
    }

    fn report() -> SimulationReport {
        let mut runtime = RuntimeStats::new();
        runtime.record(Seconds::new(0.002));
        runtime.record(Seconds::new(0.004));
        SimulationReport::new(
            "TEST",
            vec![record(0.0, 50.0, 1.0, true), record(1.0, 52.0, 0.0, false)],
            Seconds::new(1.0),
            1,
            runtime,
        )
    }

    #[test]
    fn totals_are_consistent_with_records() {
        let r = report();
        assert_eq!(r.scheme(), "TEST");
        assert_eq!(r.records().len(), 2);
        assert!((r.gross_energy().value() - 102.0).abs() < 1e-9);
        assert!((r.net_energy().value() - 101.0).abs() < 1e-9);
        assert!((r.overhead_energy().value() - 1.0).abs() < 1e-9);
        assert!((r.delivered_energy().value() - 102.0 * 0.95).abs() < 1e-9);
        assert!((r.ideal_energy().value() - 102.0 * 1.2).abs() < 1e-9);
        assert_eq!(r.switch_count(), 1);
        assert_eq!(r.duration(), Seconds::new(2.0));
        assert!((r.average_power().value() - 50.5).abs() < 1e-9);
        assert!((r.average_runtime().value() - 3.0).abs() < 1e-9);
        assert!((r.ideal_fraction() - 101.0 / 122.4).abs() < 1e-9);
    }

    #[test]
    fn traces_and_switch_times() {
        let r = report();
        assert_eq!(r.power_trace(), vec![(0.0, 50.0), (1.0, 52.0)]);
        let ratios = r.ratio_trace();
        assert!((ratios[0].1 - 1.0 / 1.2).abs() < 1e-9);
        assert_eq!(r.switch_times(), vec![0.0]);
        let (energy, overhead, runtime) = r.table1_row();
        assert!((energy - 101.0).abs() < 1e-9);
        assert!((overhead - 1.0).abs() < 1e-9);
        assert!((runtime - 3.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_the_scheme_and_energy() {
        let text = report().to_string();
        assert!(text.contains("TEST"));
        assert!(text.contains("101.0 J"));
    }

    #[test]
    fn empty_report_is_harmless() {
        let r = SimulationReport::new("EMPTY", vec![], Seconds::new(1.0), 0, RuntimeStats::new());
        assert_eq!(r.average_power(), Watts::ZERO);
        assert_eq!(r.ideal_fraction(), 0.0);
        assert_eq!(r.duration(), Seconds::ZERO);
    }
}
