//! Simulation scenarios: everything that stays fixed while schemes are
//! compared.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use teg_array::{SwitchingOverheadModel, TegArray};
use teg_device::{TegDatasheet, TegModule, VariationModel};
use teg_power::Charger;
use teg_thermal::{DriveCycle, DriveCycleBuilder, Radiator, RadiatorGeometry, SShapedPlacement};
use teg_units::{KernelMode, Seconds};

use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::thermal_trace::ThermalTrace;
use crate::trace_cache::TraceCache;

/// A fully specified experiment: drive cycle, radiator, module placement,
/// TEG array, charger and overhead model.
///
/// All four reconfiguration schemes are run against the *same* scenario so
/// that Table I and Figs. 6–7 compare algorithms rather than workloads.
///
/// `Scenario` is `Send + Sync`: the sweep workers of
/// [`SweepRunner`](crate::SweepRunner) share one scenario sample by
/// reference across threads.  The lazily solved trace cache stays safe
/// because the first solve is serialised behind a mutex and published
/// through a `OnceLock` — concurrent first readers race only for who runs
/// the solve, never on the result.
///
/// # Examples
///
/// ```
/// use teg_sim::Scenario;
///
/// # fn main() -> Result<(), teg_sim::SimError> {
/// let scenario = Scenario::paper_table1(42)?;
/// assert_eq!(scenario.module_count(), 100);
/// assert_eq!(scenario.drive_cycle().len(), 800);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    drive_cycle: DriveCycle,
    radiator: Radiator,
    placement: SShapedPlacement,
    array: TegArray,
    charger: Charger,
    overhead: SwitchingOverheadModel,
    fault_plan: FaultPlan,
    step: Seconds,
    kernel_mode: KernelMode,
    // Lazily solved thermal history.  The cache cell itself sits behind an
    // Arc so every clone — made before *or* after the first solve — shares
    // one solve per drive cycle.
    trace: Arc<OnceLock<Arc<ThermalTrace>>>,
    // Serialises the initial solve so concurrent first accesses cannot run
    // it twice (which would also double-count `thermal_solves`).
    solve_lock: Arc<Mutex<()>>,
    // Total radiator solves performed through this scenario (shared across
    // clones) — the hook the comparison tests use to prove the trace is
    // solved exactly once.  With a `trace_cache` attached, a scenario whose
    // key was already solved elsewhere counts zero, so summing the counters
    // of a scenario family yields the number of *unique* solves.
    thermal_solves: Arc<AtomicUsize>,
    // Optional cross-scenario cache: scenarios attached to the same cache
    // with equal thermal inputs share one solved trace.
    trace_cache: Option<TraceCache>,
}

impl Scenario {
    /// The paper's main evaluation scenario: a 100-module array on the
    /// Porter II radiator over the 800-second drive.
    ///
    /// # Errors
    ///
    /// Propagates builder validation errors (never expected for the preset).
    pub fn paper_table1(seed: u64) -> Result<Self, SimError> {
        Self::builder()
            .module_count(100)
            .duration_seconds(800)
            .seed(seed)
            .build()
    }

    /// Returns a builder with the Porter II defaults.
    #[must_use]
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// The drive cycle the scenario replays.
    #[must_use]
    pub const fn drive_cycle(&self) -> &DriveCycle {
        &self.drive_cycle
    }

    /// The radiator model.
    #[must_use]
    pub const fn radiator(&self) -> &Radiator {
        &self.radiator
    }

    /// The module placement along the radiator.
    #[must_use]
    pub const fn placement(&self) -> &SShapedPlacement {
        &self.placement
    }

    /// The TEG array under control.
    #[must_use]
    pub const fn array(&self) -> &TegArray {
        &self.array
    }

    /// The charger model.
    #[must_use]
    pub const fn charger(&self) -> &Charger {
        &self.charger
    }

    /// The switching-overhead model.
    #[must_use]
    pub const fn overhead(&self) -> &SwitchingOverheadModel {
        &self.overhead
    }

    /// The timed fault plan every session over this scenario replays
    /// (empty — [`FaultPlan::none`] — for a healthy run).
    #[must_use]
    pub const fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// The simulation step (1 s for the presets).
    #[must_use]
    pub const fn step(&self) -> Seconds {
        self.step
    }

    /// The [`KernelMode`] every session over this scenario runs its compute
    /// kernels in ([`KernelMode::BitExact`] unless the builder opted into the
    /// fast lane).
    #[must_use]
    pub const fn kernel_mode(&self) -> KernelMode {
        self.kernel_mode
    }

    /// Number of modules in the array.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.array.len()
    }

    /// Restricts the scenario to a window of the drive cycle (sample indices
    /// `[start, end)`), e.g. the 120-second slice plotted in Figs. 6–7.
    ///
    /// When the parent's trace is already solved, the window *slices* it —
    /// [`DriveCycle::window`](teg_thermal::DriveCycle::window) keeps the
    /// original sample timestamps, so the sliced trace is bit-identical to
    /// freshly solving the windowed cycle, and no further radiator solves are
    /// counted.  An unsolved parent leaves the window to solve its own
    /// (shorter) cycle on first access; the solve counter stays shared with
    /// the parent either way.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Thermal`] if the window is empty or out of
    /// range.
    pub fn window(&self, start: usize, end: usize) -> Result<Self, SimError> {
        let mut out = self.clone();
        out.drive_cycle = self.drive_cycle.window(start, end)?;
        out.trace = Arc::new(OnceLock::new());
        if let Some(parent) = self.trace.get() {
            let _ = out.trace.set(Arc::new(parent.slice(start, end)));
        }
        Ok(out)
    }

    /// The solved thermal history of this scenario's drive cycle.
    ///
    /// The first call runs the radiator solve for every sample; subsequent
    /// calls — including through clones, whenever they were made — return
    /// the cached trace, so any number of schemes, sessions and comparisons
    /// share one thermal solve per drive-cycle second.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Thermal`] from the radiator solve.
    pub fn thermal_trace(&self) -> Result<&ThermalTrace, SimError> {
        self.thermal_trace_shared().map(Arc::as_ref)
    }

    /// Like [`Scenario::thermal_trace`] but returning the shared handle, for
    /// callers that need to outlive `&self` borrows (the session keeps one).
    pub(crate) fn thermal_trace_shared(&self) -> Result<&Arc<ThermalTrace>, SimError> {
        if let Some(trace) = self.trace.get() {
            return Ok(trace);
        }
        // Serialise the initial solve: without the lock two concurrent first
        // callers would both run the full radiator solve (discarding one
        // result) and double-count `thermal_solves`.
        let guard = self
            .solve_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(trace) = self.trace.get() {
            return Ok(trace);
        }
        // With a cache attached, an equal-keyed scenario's trace is shared
        // instead of re-solved (and this scenario then counts no solves).
        let solved = match &self.trace_cache {
            Some(cache) => cache.trace_for(self)?,
            None => Arc::new(ThermalTrace::solve(self)?),
        };
        let stored = self.trace.get_or_init(|| solved);
        drop(guard);
        Ok(stored)
    }

    /// Solves this scenario's thermal trace ahead of demand, splitting the
    /// solve across `threads` chunk workers (bit-identical to the serial
    /// solve for any thread count — see
    /// [`ThermalTrace::solve_with_threads`]).  With a [`TraceCache`]
    /// attached the solve lands in the cache, so every equal-keyed scenario
    /// shares it; otherwise it lands in this scenario's own slot.  Returns
    /// `true` when this call performed the solve, `false` when the trace was
    /// already available.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Thermal`] from the radiator solve.
    pub fn presolve(&self, threads: usize) -> Result<bool, SimError> {
        if self.trace.get().is_some() {
            return Ok(false);
        }
        match &self.trace_cache {
            Some(cache) => cache.presolve_for(self, threads),
            None => {
                let guard = self
                    .solve_lock
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if self.trace.get().is_some() {
                    return Ok(false);
                }
                let solved = Arc::new(ThermalTrace::solve_with_threads(self, threads)?);
                self.trace.get_or_init(|| solved);
                drop(guard);
                Ok(true)
            }
        }
    }

    /// The cross-scenario trace cache this scenario resolves its thermal
    /// trace through, if one was attached.
    #[must_use]
    pub const fn trace_cache(&self) -> Option<&TraceCache> {
        self.trace_cache.as_ref()
    }

    /// Total number of radiator solves performed through this scenario (and
    /// its clones) so far — one per drive-cycle sample when the trace cache
    /// is working.
    #[must_use]
    pub fn thermal_solve_count(&self) -> usize {
        self.thermal_solves.load(Ordering::Relaxed)
    }

    /// Records one radiator solve (called by [`ThermalTrace::solve`]).
    pub(crate) fn count_thermal_solve(&self) {
        self.thermal_solves.fetch_add(1, Ordering::Relaxed);
    }
}

/// Builder for [`Scenario`] values.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    module_count: usize,
    duration_seconds: usize,
    seed: u64,
    geometry: RadiatorGeometry,
    charger: Charger,
    overhead: SwitchingOverheadModel,
    module_variation: VariationModel,
    datasheet: TegDatasheet,
    fault_plan: FaultPlan,
    trace_cache: Option<TraceCache>,
    kernel_mode: KernelMode,
}

impl ScenarioBuilder {
    /// Creates a builder with the paper's defaults (100 modules, 800 s,
    /// Porter II radiator, TGM-199-1.4-0.8 modules, LTM4607 charger).
    #[must_use]
    pub fn new() -> Self {
        Self {
            module_count: 100,
            duration_seconds: 800,
            seed: 0,
            geometry: RadiatorGeometry::porter_ii(),
            charger: Charger::ltm4607_lead_acid(),
            overhead: SwitchingOverheadModel::default(),
            module_variation: VariationModel::none(),
            datasheet: TegDatasheet::tgm_199_1_4_0_8(),
            fault_plan: FaultPlan::none(),
            trace_cache: None,
            kernel_mode: KernelMode::BitExact,
        }
    }

    /// Sets the number of TEG modules along the radiator.
    #[must_use]
    pub fn module_count(mut self, count: usize) -> Self {
        self.module_count = count;
        self
    }

    /// Sets the drive duration in seconds (1 Hz sampling).
    #[must_use]
    pub fn duration_seconds(mut self, seconds: usize) -> Self {
        self.duration_seconds = seconds;
        self
    }

    /// Sets the drive-cycle RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the radiator geometry (e.g. the industrial-boiler preset for
    /// scalability studies).
    #[must_use]
    pub fn geometry(mut self, geometry: RadiatorGeometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Replaces the charger model.
    #[must_use]
    pub fn charger(mut self, charger: Charger) -> Self {
        self.charger = charger;
        self
    }

    /// Replaces the switching-overhead model.
    #[must_use]
    pub fn overhead(mut self, overhead: SwitchingOverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Enables module-to-module manufacturing variation.
    #[must_use]
    pub fn module_variation(mut self, variation: VariationModel) -> Self {
        self.module_variation = variation;
        self
    }

    /// Replaces the TEG module datasheet.
    #[must_use]
    pub fn datasheet(mut self, datasheet: TegDatasheet) -> Self {
        self.datasheet = datasheet;
        self
    }

    /// Installs a timed fault plan: module/switch/sensor fault events fired
    /// at fixed drive steps by every session over the built scenario.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Attaches a cross-scenario [`TraceCache`]: every scenario built
    /// against the same cache with equal thermal inputs (drive cycle,
    /// radiator, placement, step, module parameters) shares one solved
    /// [`ThermalTrace`] instead of re-running the radiator model.  Fault
    /// plans and scheme choices never enter the key, so degraded variants of
    /// one physical setup share its trace.
    #[must_use]
    pub fn trace_cache(mut self, cache: TraceCache) -> Self {
        self.trace_cache = Some(cache);
        self
    }

    /// Selects the [`KernelMode`] for every compute kernel run against the
    /// built scenario: thermal solve, electrical solver and sensor model.
    ///
    /// The default is [`KernelMode::BitExact`] — the reference lane whose
    /// outputs are pinned bit-for-bit by the golden suite.
    /// [`KernelMode::Fast`] opts into the vectorised/chunked kernels, which
    /// agree with the reference within a documented `1e-9` relative bound
    /// (and bit-exactly for the EHTR partition and sensor noise).  The mode
    /// is part of the thermal-trace cache key, so fast and bit-exact
    /// scenarios attached to one [`TraceCache`] never share a trace.
    #[must_use]
    pub const fn kernel_mode(mut self, mode: KernelMode) -> Self {
        self.kernel_mode = mode;
        self
    }

    /// Validates the parameters and assembles the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidScenario`] for a zero module count or a
    /// zero duration, and propagates substrate errors (drive-cycle or
    /// placement construction).
    pub fn build(self) -> Result<Scenario, SimError> {
        if self.module_count == 0 {
            return Err(SimError::InvalidScenario {
                reason: "module count must be positive".into(),
            });
        }
        if self.duration_seconds == 0 {
            return Err(SimError::InvalidScenario {
                reason: "duration must be positive".into(),
            });
        }
        let drive_cycle = DriveCycleBuilder::new()
            .duration(Seconds::new(self.duration_seconds as f64))
            .seed(self.seed)
            .build()?;
        let radiator = Radiator::new(self.geometry);
        let placement = SShapedPlacement::new(self.module_count)?;
        let nominal = TegModule::from_datasheet(&self.datasheet);
        let modules = self
            .module_variation
            .apply(&nominal, self.module_count, self.seed.wrapping_add(1))
            .map_err(|e| SimError::InvalidScenario {
                reason: format!("module variation: {e}"),
            })?;
        let array = TegArray::new(modules)?;
        self.fault_plan.validate(self.module_count)?;
        Ok(Scenario {
            drive_cycle,
            radiator,
            placement,
            array,
            charger: self.charger,
            overhead: self.overhead,
            fault_plan: self.fault_plan,
            step: Seconds::new(1.0),
            kernel_mode: self.kernel_mode,
            trace: Arc::new(OnceLock::new()),
            solve_lock: Arc::new(Mutex::new(())),
            thermal_solves: Arc::new(AtomicUsize::new(0)),
            trace_cache: self.trace_cache,
        })
    }
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_scenario_matches_the_paper_setup() {
        let s = Scenario::paper_table1(3).unwrap();
        assert_eq!(s.module_count(), 100);
        assert_eq!(s.drive_cycle().len(), 800);
        assert_eq!(s.step(), Seconds::new(1.0));
        assert_eq!(s.placement().module_count(), 100);
        assert!(s.charger().output_voltage().value() > 13.0);
        assert!(s.overhead().per_toggle_energy().value() > 0.0);
        assert!(s.radiator().geometry().flow_path_length().value() > 1.0);
    }

    #[test]
    fn kernel_mode_defaults_to_bit_exact() {
        let s = Scenario::paper_table1(1).unwrap();
        assert_eq!(s.kernel_mode(), KernelMode::BitExact);
        let fast = Scenario::builder()
            .module_count(4)
            .duration_seconds(5)
            .kernel_mode(KernelMode::Fast)
            .build()
            .unwrap();
        assert_eq!(fast.kernel_mode(), KernelMode::Fast);
        // Windowing preserves the mode along with the rest of the scenario.
        assert_eq!(fast.window(1, 3).unwrap().kernel_mode(), KernelMode::Fast);
    }

    #[test]
    fn builder_validation() {
        assert!(Scenario::builder().module_count(0).build().is_err());
        assert!(Scenario::builder().duration_seconds(0).build().is_err());
    }

    #[test]
    fn windowing_preserves_everything_but_the_cycle() {
        let s = Scenario::builder()
            .module_count(10)
            .duration_seconds(200)
            .seed(5)
            .build()
            .unwrap();
        let w = s.window(50, 170).unwrap();
        assert_eq!(w.drive_cycle().len(), 120);
        assert_eq!(w.module_count(), 10);
        assert!(s.window(10, 10).is_err());
        assert!(s.window(150, 300).is_err());
    }

    #[test]
    fn variation_changes_the_array() {
        let plain = Scenario::builder()
            .module_count(5)
            .duration_seconds(10)
            .build()
            .unwrap();
        let varied = Scenario::builder()
            .module_count(5)
            .duration_seconds(10)
            .module_variation(VariationModel::new(0.05, 0.05).unwrap())
            .build()
            .unwrap();
        assert_ne!(plain.array().modules(), varied.array().modules());
    }

    #[test]
    fn scenarios_and_traces_are_send_and_sync() {
        // The sweep shares scenarios (and their cached traces) across
        // worker threads by reference; this is the compile-time audit.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Scenario>();
        assert_send_sync::<crate::ThermalTrace>();
    }

    #[test]
    fn concurrent_first_access_solves_the_trace_once() {
        let s = Scenario::builder()
            .module_count(6)
            .duration_seconds(20)
            .seed(11)
            .build()
            .unwrap();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let trace = s.thermal_trace().unwrap();
                    assert_eq!(trace.len(), 20);
                });
            }
        });
        // Eight concurrent first readers, one solve: 20 samples, not 160.
        assert_eq!(s.thermal_solve_count(), 20);
    }

    #[test]
    fn fault_plans_are_validated_at_build_time() {
        use crate::fault::{FaultAction, FaultEvent, FaultPlan};
        use teg_array::ModuleFault;

        let oob = FaultPlan::new(vec![FaultEvent::new(
            3,
            FaultAction::Module {
                module: 10,
                fault: ModuleFault::OpenCircuit,
            },
        )]);
        let err = Scenario::builder()
            .module_count(10)
            .duration_seconds(5)
            .fault_plan(oob.clone())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("module 10"), "{err}");

        let ok = Scenario::builder()
            .module_count(11)
            .duration_seconds(5)
            .fault_plan(oob.clone())
            .build()
            .unwrap();
        assert_eq!(ok.fault_plan(), &oob);
        // The default scenario carries an empty plan.
        let healthy = Scenario::builder()
            .module_count(4)
            .duration_seconds(5)
            .build()
            .unwrap();
        assert!(healthy.fault_plan().is_empty());
    }

    #[test]
    fn same_seed_same_scenario() {
        let a = Scenario::builder()
            .module_count(8)
            .duration_seconds(30)
            .seed(9)
            .build()
            .unwrap();
        let b = Scenario::builder()
            .module_count(8)
            .duration_seconds(30)
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(a.drive_cycle(), b.drive_cycle());
    }
}
