//! Streaming step-wise simulation sessions.
//!
//! [`SimSession`] replaces the monolithic simulation loop: it advances one
//! drive-cycle second per [`SimSession::step`] call, feeding the scheme a
//! bounded [`TelemetryWindow`] and emitting a [`StepRecord`] the caller can
//! consume immediately — through the return value, the [`Iterator`] adapter
//! or attached [`StepObserver`] sinks.  Per-session state stays `O(window)`
//! on top of the scenario's shared, precomputed thermal trace (`O(T ×
//! modules)`, solved once and shared by every session); only
//! [`SimSession::run`], which must assemble a full [`SimulationReport`],
//! buffers records.
//!
//! [`SimulationReport`]: crate::SimulationReport

use std::sync::Arc;

use teg_array::{ArrayPlan, ArraySolver, Configuration, FaultState, SolvedPoint, TegArray};
use teg_reconfig::{Reconfigurer, RuntimeStats, SensorFaultInjector, TelemetryBuffer};
use teg_units::{Joules, Seconds, TemperatureDelta};

use crate::error::SimError;
use crate::fault::FaultEvent;
use crate::record::StepRecord;
use crate::report::SimulationReport;
use crate::scenario::Scenario;
use crate::thermal_trace::ThermalTrace;

/// How a session accounts the computation time of each scheme decision.
///
/// The schemes measure their own wall-clock runtime, and that measurement
/// feeds the switching-overhead model (computation extends the dead time) as
/// well as the report's runtime statistics — which makes two otherwise
/// identical runs differ by timing jitter.  A parallel scenario sweep that
/// must produce byte-identical results for any worker count replaces the
/// measurement with a fixed per-decision charge.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RuntimePolicy {
    /// Charge the wall-clock time each decision actually took (the default,
    /// matching the paper's measured "Average Runtime" column).
    #[default]
    Measured,
    /// Charge every decision the same fixed computation time, making the
    /// whole simulation deterministic.
    Fixed(Seconds),
}

impl RuntimePolicy {
    /// Resolves the computation time to charge for one decision.
    #[must_use]
    pub fn charge(self, measured: Seconds) -> Seconds {
        match self {
            Self::Measured => measured,
            Self::Fixed(fixed) => fixed,
        }
    }
}

/// A recycling pool of [`ArraySolver`] scratch.
///
/// Sessions draw a warm solver on creation ([`SimSession::with_solver`])
/// and hand it back when done ([`SimSession::take_solver`]), so a caller
/// that runs many sessions — a sweep worker executing cell after cell —
/// reuses the same scratch allocations throughout.  Solvers carry no
/// observable state, so pooling never changes results.
#[derive(Debug, Default)]
pub struct SolverPool {
    solvers: Vec<ArraySolver>,
}

impl SolverPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of idle solvers currently in the pool.
    #[must_use]
    pub fn len(&self) -> usize {
        self.solvers.len()
    }

    /// Returns `true` while the pool holds no idle solver.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.solvers.is_empty()
    }

    /// Draws a solver from the pool, creating a fresh one when empty.
    pub fn acquire(&mut self) -> ArraySolver {
        self.solvers.pop().unwrap_or_default()
    }

    /// Returns a solver to the pool for reuse.
    pub fn release(&mut self, solver: ArraySolver) {
        self.solvers.push(solver);
    }
}

/// A streaming sink notified as a session advances.
///
/// All methods have empty defaults, so a sink implements only what it needs
/// (a CSV exporter overrides `on_step`, a switch logger `on_switch`, a
/// progress bar perhaps both).
pub trait StepObserver {
    /// Called after every simulated step with the fresh record.
    fn on_step(&mut self, record: &StepRecord) {
        let _ = record;
    }

    /// Called additionally whenever the step actually rewired the array
    /// (the black dots of Fig. 7).
    fn on_switch(&mut self, record: &StepRecord) {
        let _ = record;
    }

    /// Called once, when the session has consumed its whole drive cycle.
    fn on_finish(&mut self, summary: &SessionSummary) {
        let _ = summary;
    }
}

/// A [`StepObserver`] built from a closure, for one-off streaming sinks.
///
/// # Examples
///
/// ```
/// use teg_reconfig::Inor;
/// use teg_sim::{Scenario, SimSession, StepFn};
///
/// # fn main() -> Result<(), teg_sim::SimError> {
/// use std::cell::Cell;
/// let scenario = Scenario::builder().module_count(8).duration_seconds(10).seed(1).build()?;
/// let peak = Cell::new(0.0_f64);
/// let mut observer = StepFn::new(|record| {
///     peak.set(peak.get().max(record.array_power().value()));
/// });
/// let mut inor = Inor::default();
/// let mut session = SimSession::new(&scenario, &mut inor)?;
/// session.attach(&mut observer);
/// while session.step()?.is_some() {}
/// drop(session);
/// assert!(peak.get() > 0.0);
/// # Ok(())
/// # }
/// ```
pub struct StepFn<F: FnMut(&StepRecord)> {
    callback: F,
}

impl<F: FnMut(&StepRecord)> StepFn<F> {
    /// Wraps a closure as an observer invoked on every step.
    pub fn new(callback: F) -> Self {
        Self { callback }
    }
}

impl<F: FnMut(&StepRecord)> StepObserver for StepFn<F> {
    fn on_step(&mut self, record: &StepRecord) {
        (self.callback)(record);
    }
}

/// Running totals of a session — everything Table I needs, in `O(1)` memory.
///
/// Produced by [`SimSession::summary`] at any point of the run and handed to
/// [`StepObserver::on_finish`] when the drive cycle is exhausted.
///
/// Totals are accumulated per step from exact per-step energies, while a
/// [`SimulationReport`](crate::SimulationReport) re-derives them from its
/// buffered records' *power* values; the two agree exactly for the 1-second
/// step every preset uses (the round trip is `E / step * step`), which the
/// session tests pin down.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSummary {
    scheme: String,
    steps: usize,
    step: Seconds,
    gross_energy: Joules,
    net_energy: Joules,
    delivered_energy: Joules,
    overhead_energy: Joules,
    ideal_energy: Joules,
    switch_count: usize,
    runtime: RuntimeStats,
    fault_events: usize,
    faulted_steps: usize,
}

impl SessionSummary {
    /// Name of the scheme driving the session.
    #[must_use]
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Steps simulated so far.
    #[must_use]
    pub const fn steps(&self) -> usize {
        self.steps
    }

    /// Simulated duration so far.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        self.step * self.steps as f64
    }

    /// Array energy before switching overhead.
    #[must_use]
    pub const fn gross_energy(&self) -> Joules {
        self.gross_energy
    }

    /// Array energy net of switching overhead (Table I "Energy Output").
    #[must_use]
    pub const fn net_energy(&self) -> Joules {
        self.net_energy
    }

    /// Energy delivered into the battery after the charger.
    #[must_use]
    pub const fn delivered_energy(&self) -> Joules {
        self.delivered_energy
    }

    /// Total switching-overhead energy (Table I "Switch Overhead").
    #[must_use]
    pub const fn overhead_energy(&self) -> Joules {
        self.overhead_energy
    }

    /// The integral of `P_ideal` so far.
    #[must_use]
    pub const fn ideal_energy(&self) -> Joules {
        self.ideal_energy
    }

    /// Number of reconfiguration (switch) events so far.
    #[must_use]
    pub const fn switch_count(&self) -> usize {
        self.switch_count
    }

    /// Per-invocation runtime statistics so far.
    #[must_use]
    pub const fn runtime(&self) -> &RuntimeStats {
        &self.runtime
    }

    /// Fault-plan events fired so far.
    #[must_use]
    pub const fn fault_events(&self) -> usize {
        self.fault_events
    }

    /// Steps simulated while at least one module, switch or sensor fault
    /// was active.
    #[must_use]
    pub const fn faulted_steps(&self) -> usize {
        self.faulted_steps
    }

    /// Fraction of the ideal energy captured so far.
    #[must_use]
    pub fn ideal_fraction(&self) -> f64 {
        if self.ideal_energy.value() <= 0.0 {
            0.0
        } else {
            self.net_energy.value() / self.ideal_energy.value()
        }
    }
}

/// A step-wise driver running one reconfiguration scheme over one scenario.
///
/// The session borrows the scenario's cached [`ThermalTrace`] (solved once,
/// shared with every other session over the same scenario), keeps the
/// scheme's telemetry in a ring buffer bounded by
/// [`Reconfigurer::lookback`], and honours the scheme's invocation period
/// through a phase accumulator — a 4-second-period scheme really is invoked
/// every fourth 1-second step.
///
/// # Examples
///
/// Streaming a run step by step:
///
/// ```
/// use teg_reconfig::Inor;
/// use teg_sim::{Scenario, SimSession};
///
/// # fn main() -> Result<(), teg_sim::SimError> {
/// let scenario = Scenario::builder().module_count(10).duration_seconds(20).seed(1).build()?;
/// let mut inor = Inor::default();
/// let mut session = SimSession::new(&scenario, &mut inor)?;
/// while let Some(record) = session.step()? {
///     assert!(record.array_power().value() >= 0.0);
/// }
/// assert_eq!(session.summary().steps(), 20);
/// # Ok(())
/// # }
/// ```
///
/// Or through the iterator adapter:
///
/// ```
/// use teg_reconfig::Dnor;
/// use teg_sim::{Scenario, SimSession};
///
/// # fn main() -> Result<(), teg_sim::SimError> {
/// let scenario = Scenario::builder().module_count(10).duration_seconds(15).seed(2).build()?;
/// let mut dnor = Dnor::default();
/// let session = SimSession::new(&scenario, &mut dnor)?;
/// let records: Result<Vec<_>, _> = session.collect();
/// assert_eq!(records?.len(), 15);
/// # Ok(())
/// # }
/// ```
pub struct SimSession<'s> {
    scenario: &'s Scenario,
    trace: Arc<ThermalTrace>,
    scheme: &'s mut dyn Reconfigurer,
    observers: Vec<&'s mut dyn StepObserver>,
    buffer: TelemetryBuffer,
    config: Configuration,
    runtime_policy: RuntimePolicy,
    cursor: usize,
    invocation_phase: f64,
    runtime: RuntimeStats,
    switch_count: usize,
    gross_energy: Joules,
    net_energy: Joules,
    delivered_energy: Joules,
    overhead_energy: Joules,
    ideal_energy: Joules,
    // Degradation machinery: the scenario's fault plan replayed against the
    // electrical fault state and the sensor injector as the cursor advances.
    fault_events: &'s [FaultEvent],
    next_fault_event: usize,
    electrical_faults: FaultState,
    // The configuration the stuck switch fabric actually realises for the
    // commanded `config`, cached between steps and invalidated whenever a
    // fault event fires or the commanded configuration changes.
    realised_config: Option<Configuration>,
    // The compiled solve plan for the realised wiring (same cache lifetime
    // as `realised_config`) and the solver scratch every step reuses.
    plan: Option<ArrayPlan>,
    solver: ArraySolver,
    sensors: SensorFaultInjector,
    corrupted_row: Vec<f64>,
    fault_events_fired: usize,
    faulted_steps: usize,
    finished: bool,
}

impl<'s> SimSession<'s> {
    /// Opens a session for one scheme over one scenario, resetting the
    /// scheme and solving (or reusing) the scenario's thermal trace.
    ///
    /// Every session starts from the same square-grid wiring the baseline
    /// uses, so differences between schemes come from their decisions, not
    /// their start state.
    ///
    /// The scenario's [`KernelMode`](teg_units::KernelMode) is pushed into
    /// every kernel the session drives: the scheme (via
    /// [`Reconfigurer::set_kernel_mode`]), the session's own electrical
    /// solver and the sensor injector.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the thermal solve or the initial
    /// configuration.
    pub fn new(scenario: &'s Scenario, scheme: &'s mut dyn Reconfigurer) -> Result<Self, SimError> {
        let trace = Arc::clone(scenario.thermal_trace_shared()?);
        let module_count = scenario.module_count();
        let initial_groups = (module_count as f64).sqrt().ceil().max(1.0) as usize;
        let config = Configuration::uniform(module_count, initial_groups.min(module_count))?;
        let buffer = TelemetryBuffer::new(module_count, scheme.lookback().max(1))?;
        let step = scenario.step().value();
        let period = scheme.period().value();
        // A zero/negative/NaN period would turn the per-step invocation
        // count infinite; the built-in schemes validate their periods, but
        // `Reconfigurer` is a public trait.
        if !(period > 0.0 && period.is_finite()) {
            return Err(SimError::InvalidScenario {
                reason: format!(
                    "scheme {} has a non-positive or non-finite period ({period} s)",
                    scheme.name()
                ),
            });
        }
        scheme.reset();
        let mode = scenario.kernel_mode();
        scheme.set_kernel_mode(mode);
        let plan = scenario.fault_plan();
        let mut sensors = SensorFaultInjector::new(module_count, plan.sensor_seed())?;
        sensors.set_kernel_mode(mode);
        Ok(Self {
            scenario,
            trace,
            scheme,
            observers: Vec::new(),
            buffer,
            config,
            runtime_policy: RuntimePolicy::Measured,
            cursor: 0,
            // Phase accumulator priming: the first invocation lands on the
            // first step even for periods longer than the step (the
            // controller configures the array at t = 0, then every period).
            invocation_phase: (1.0 - step / period).max(0.0),
            runtime: RuntimeStats::new(),
            switch_count: 0,
            gross_energy: Joules::ZERO,
            net_energy: Joules::ZERO,
            delivered_energy: Joules::ZERO,
            overhead_energy: Joules::ZERO,
            ideal_energy: Joules::ZERO,
            fault_events: plan.events(),
            next_fault_event: 0,
            electrical_faults: FaultState::healthy(module_count),
            realised_config: None,
            plan: None,
            solver: ArraySolver::with_mode(mode),
            sensors,
            corrupted_row: Vec::new(),
            fault_events_fired: 0,
            faulted_steps: 0,
            finished: false,
        })
    }

    /// Attaches a streaming sink notified on every subsequent step.
    pub fn attach(&mut self, observer: &'s mut dyn StepObserver) -> &mut Self {
        self.observers.push(observer);
        self
    }

    /// Replaces the runtime-accounting policy (defaults to
    /// [`RuntimePolicy::Measured`]).  With [`RuntimePolicy::Fixed`] every
    /// decision is charged the same computation time, which makes the whole
    /// run — overhead energy, runtime statistics, records — deterministic.
    #[must_use]
    pub fn with_runtime_policy(mut self, policy: RuntimePolicy) -> Self {
        self.runtime_policy = policy;
        self
    }

    /// The runtime-accounting policy in force.
    #[must_use]
    pub const fn runtime_policy(&self) -> RuntimePolicy {
        self.runtime_policy
    }

    /// Seeds the session with a pre-warmed solver so its scratch buffers are
    /// reused instead of reallocated — sweep workers recycle solvers across
    /// the cells they execute.  The incoming solver is switched to the
    /// scenario's kernel mode, and scratch carries no observable state, so
    /// seeding never changes results.
    #[must_use]
    pub fn with_solver(mut self, mut solver: ArraySolver) -> Self {
        solver.set_mode(self.scenario.kernel_mode());
        self.solver = solver;
        self
    }

    /// Takes the (now warm) solver back out of the session, leaving a fresh
    /// one behind — the other half of the recycling handshake.
    pub fn take_solver(&mut self) -> ArraySolver {
        std::mem::take(&mut self.solver)
    }

    /// The scenario the session replays.
    #[must_use]
    pub fn scenario(&self) -> &'s Scenario {
        self.scenario
    }

    /// Name of the scheme driving the session.
    #[must_use]
    pub fn scheme_name(&self) -> &'static str {
        self.scheme.name()
    }

    /// Steps simulated so far.
    #[must_use]
    pub const fn position(&self) -> usize {
        self.cursor
    }

    /// Steps remaining in the drive cycle.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.cursor
    }

    /// Advances the simulation by one drive-cycle second.
    ///
    /// Returns `Ok(None)` once the cycle is exhausted; the first such call
    /// notifies every observer's [`StepObserver::on_finish`].
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the array solve or the scheme's
    /// decision.
    pub fn step(&mut self) -> Result<Option<StepRecord>, SimError> {
        if self.cursor >= self.trace.len() {
            if !self.finished {
                self.finished = true;
                // The summary owns its scheme name and runtime statistics,
                // so it is only materialised when someone is listening.
                if !self.observers.is_empty() {
                    let summary = self.summary();
                    for observer in &mut self.observers {
                        observer.on_finish(&summary);
                    }
                }
            }
            return Ok(None);
        }
        let index = self.cursor;
        self.cursor += 1;

        // Fire every fault-plan event due at (or before) this step, evolving
        // the electrical fault state and the sensor injector in plan order.
        let mut fault_events_this_step = 0;
        while self.next_fault_event < self.fault_events.len()
            && self.fault_events[self.next_fault_event].step() <= index
        {
            self.fault_events[self.next_fault_event]
                .action()
                .apply(&mut self.electrical_faults, &mut self.sensors)?;
            self.next_fault_event += 1;
            fault_events_this_step += 1;
        }
        self.fault_events_fired += fault_events_this_step;
        if fault_events_this_step > 0 {
            self.realised_config = None;
            self.plan = None;
        }
        let electrical_active = !self.electrical_faults.is_healthy();
        let any_fault_active = electrical_active || !self.sensors.is_healthy();
        if any_fault_active {
            self.faulted_steps += 1;
        }

        let scenario = self.scenario;
        let array = scenario.array();
        let step = scenario.step();
        // A clone of the shared trace handle keeps the borrowed rows
        // independent of `self`, so the solver helper below can take
        // `&mut self` while they are alive.
        let trace = Arc::clone(&self.trace);
        let row = trace.row(index);
        let ambient = trace.ambient(index);

        // The scheme observes the telemetry *through* the sensors: faulted
        // sensors corrupt a scratch copy of the true row before it enters
        // the buffer.  Physics below always uses the true thermal state.
        if self.sensors.is_healthy() {
            self.buffer.push_row(row)?;
        } else {
            self.corrupted_row.clear();
            self.corrupted_row.extend_from_slice(row);
            self.sensors.corrupt(&mut self.corrupted_row, ambient)?;
            self.buffer.push_row(&self.corrupted_row)?;
        }
        // Scheme-independent per-row quantities come precomputed from the
        // shared trace, so N lockstep sessions do not redo them N times.
        let deltas = trace.deltas(index);
        let ideal = trace.ideal(index);

        // Invocation phase accumulator: schemes run every `period`, whether
        // that is shorter or longer than the simulation step.  The epsilon
        // absorbs float error from non-dyadic step/period ratios (e.g. a
        // 3-second period accumulating thirds) so invocations never slip a
        // step late.
        self.invocation_phase += step.value() / self.scheme.period().value();
        let invocations = (self.invocation_phase + 1e-9).floor() as usize;
        self.invocation_phase -= invocations as f64;

        let mut overhead_energy = Joules::ZERO;
        let mut computation_total = Seconds::ZERO;
        let mut switched_this_step = false;
        // The solved MPP of the active wiring at this step's ΔT row, shared
        // between the overhead gate and the plant output and invalidated
        // when a switch changes the wiring.  The kernel is deterministic,
        // so the reuse is exact — it just halves the per-step solves.
        let mut solved: Option<SolvedPoint> = None;

        for _ in 0..invocations {
            let window = self.buffer.window(array, ambient)?;
            let decision = self.scheme.decide(&window, &self.config)?;
            // The policy decides whether the measured wall clock or a fixed
            // deterministic charge flows into stats and overhead accounting.
            let computation = self.runtime_policy.charge(decision.computation());
            if any_fault_active {
                self.runtime.record_faulted(computation);
            } else {
                self.runtime.record(computation);
            }
            computation_total += computation;
            let applied = decision.applied();
            let next = decision.into_configuration();
            if applied {
                // Applying a configuration (even an unchanged one, as the
                // fixed-period schemes do) interrupts harvesting for the
                // reconfiguration dead time and costs actuation energy for
                // every toggled switch.  The toggle diff and the MPP solve
                // feed only the overhead model, so un-applied decisions
                // (DNOR's skipped periods) pay for neither.  Toggles are
                // counted against the *commanded* wiring — the controller
                // actuates what it believes — while the interrupted power is
                // what the degraded plant actually delivered.
                let toggles = match &next {
                    Some(next) => self.config.switch_toggles_to(next)?,
                    None => 0,
                };
                let op = match solved {
                    Some(op) => op,
                    None => {
                        let op = self.active_mpp(array, deltas, electrical_active)?;
                        solved = Some(op);
                        op
                    }
                };
                let event = scenario.overhead().event(op.power(), computation, toggles);
                overhead_energy += event.total_energy();
                if toggles > 0 {
                    switched_this_step = true;
                    self.switch_count += 1;
                    self.config = next.expect("a rewiring decision carries its configuration");
                    self.realised_config = None;
                    self.plan = None;
                    solved = None;
                }
            }
        }

        // The plant realises the commanded configuration through its (possibly
        // stuck) switch fabric and delivers power with its (possibly open,
        // shorted or derated) modules.
        let op = match solved {
            Some(op) => op,
            None => self.active_mpp(array, deltas, electrical_active)?,
        };
        let array_power = op.power();
        let gross = array_power * step;
        let net = (gross - overhead_energy).max(Joules::ZERO);
        let net_power = net.average_power(step);
        let delivered_power = scenario.charger().output_power(op.voltage(), net_power);

        self.gross_energy += gross;
        self.net_energy += net;
        self.delivered_energy += delivered_power * step;
        self.overhead_energy += overhead_energy;
        self.ideal_energy += ideal * step;

        let record = StepRecord::new(
            trace.time(index),
            array_power,
            net_power,
            delivered_power,
            ideal,
            self.config.group_count(),
            switched_this_step,
            overhead_energy,
            computation_total,
        )
        .with_faults(
            self.electrical_faults.active_fault_count() + self.sensors.active_fault_count(),
            fault_events_this_step,
        );
        for observer in &mut self.observers {
            observer.on_step(&record);
            if switched_this_step {
                observer.on_switch(&record);
            }
        }
        Ok(Some(record))
    }

    /// Solves the MPP of the wiring the plant currently realises, through
    /// the compiled-plan cache: the plan is compiled at most once per
    /// (configuration, fault state) change and the session's solver scratch
    /// is reused on every step, so the steady-state solve allocates nothing.
    fn active_mpp(
        &mut self,
        array: &TegArray,
        deltas: &[TemperatureDelta],
        electrical_active: bool,
    ) -> Result<SolvedPoint, SimError> {
        if self.plan.is_none() {
            let target = if electrical_active {
                if self.realised_config.is_none() {
                    self.realised_config = Some(
                        self.electrical_faults
                            .effective_configuration(&self.config)?,
                    );
                }
                self.realised_config.as_ref().expect("filled above")
            } else {
                &self.config
            };
            let faults = electrical_active.then_some(&self.electrical_faults);
            self.plan = Some(ArrayPlan::compile(array, target, faults)?);
        }
        let plan = self.plan.as_ref().expect("filled above");
        Ok(self.solver.solve_mpp(array, plan, deltas)?)
    }

    /// The running totals at this point of the session.
    #[must_use]
    pub fn summary(&self) -> SessionSummary {
        SessionSummary {
            scheme: self.scheme.name().to_owned(),
            steps: self.cursor,
            step: self.scenario.step(),
            gross_energy: self.gross_energy,
            net_energy: self.net_energy,
            delivered_energy: self.delivered_energy,
            overhead_energy: self.overhead_energy,
            ideal_energy: self.ideal_energy,
            switch_count: self.switch_count,
            runtime: self.runtime.clone(),
            fault_events: self.fault_events_fired,
            faulted_steps: self.faulted_steps,
        }
    }

    /// Drives the session to the end of the drive cycle, buffering every
    /// record, and returns the full [`SimulationReport`].
    ///
    /// Only a fresh (never-stepped) session can be run: a report built from
    /// a tail of the records but whole-session switch counts and runtimes
    /// would be internally inconsistent.  Streaming callers that must not
    /// buffer — or that already stepped manually — use [`SimSession::step`]
    /// (or the [`Iterator`] adapter) plus [`SimSession::summary`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidScenario`] when the session has already
    /// been stepped, and propagates the first [`SimError`] any step
    /// produces.
    pub fn run(mut self) -> Result<SimulationReport, SimError> {
        if self.cursor != 0 {
            return Err(SimError::InvalidScenario {
                reason: format!(
                    "SimSession::run needs a fresh session, but {} steps were already \
                     consumed; keep stepping and read summary() instead",
                    self.cursor
                ),
            });
        }
        let mut records = Vec::with_capacity(self.remaining());
        while let Some(record) = self.step()? {
            records.push(record);
        }
        // The session is consumed, so the accumulated statistics move into
        // the report instead of being cloned.
        Ok(SimulationReport::new(
            self.scheme.name(),
            records,
            self.scenario.step(),
            self.switch_count,
            std::mem::take(&mut self.runtime),
        ))
    }
}

impl Iterator for SimSession<'_> {
    type Item = Result<StepRecord, SimError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.step().transpose()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.remaining();
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_reconfig::{Dnor, Inor, InorConfig, StaticBaseline};

    fn scenario(modules: usize, seconds: usize, seed: u64) -> Scenario {
        Scenario::builder()
            .module_count(modules)
            .duration_seconds(seconds)
            .seed(seed)
            .build()
            .expect("valid scenario")
    }

    #[test]
    fn stepping_matches_the_cycle_length() {
        let s = scenario(10, 25, 1);
        let mut inor = Inor::default();
        let mut session = SimSession::new(&s, &mut inor).unwrap();
        assert_eq!(session.remaining(), 25);
        assert_eq!(session.scheme_name(), "INOR");
        let mut steps = 0;
        while session.step().unwrap().is_some() {
            steps += 1;
        }
        assert_eq!(steps, 25);
        assert_eq!(session.position(), 25);
        assert_eq!(session.remaining(), 0);
        // Stepping past the end keeps returning None.
        assert!(session.step().unwrap().is_none());
    }

    #[test]
    fn summary_totals_match_the_report() {
        let s = scenario(12, 30, 2);
        let mut a = Dnor::default();
        let mut session = SimSession::new(&s, &mut a).unwrap();
        while session.step().unwrap().is_some() {}
        let summary = session.summary();
        drop(session);

        let mut b = Dnor::default();
        let report = SimSession::new(&s, &mut b).unwrap().run().unwrap();
        assert_eq!(summary.scheme(), report.scheme());
        assert_eq!(summary.steps(), report.records().len());
        assert_eq!(summary.gross_energy(), report.gross_energy());
        assert_eq!(summary.switch_count(), report.switch_count());
        assert_eq!(summary.ideal_energy(), report.ideal_energy());
        assert!(summary.ideal_fraction() > 0.0);
        assert_eq!(summary.duration(), report.duration());
        assert!(summary.delivered_energy().value() > 0.0);
        assert!(summary.net_energy() <= summary.gross_energy());
        assert!(summary.overhead_energy().value() >= 0.0);
        assert!(summary.runtime().invocations() > 0);
    }

    #[test]
    fn iterator_adapter_yields_every_record() {
        let s = scenario(8, 12, 3);
        let mut inor = Inor::default();
        let session = SimSession::new(&s, &mut inor).unwrap();
        assert_eq!(session.size_hint(), (12, Some(12)));
        let records: Result<Vec<_>, _> = session.collect();
        assert_eq!(records.unwrap().len(), 12);
    }

    #[test]
    fn observers_see_steps_switches_and_finish() {
        struct Spy {
            steps: usize,
            switches: usize,
            finished: Option<SessionSummary>,
        }
        impl StepObserver for Spy {
            fn on_step(&mut self, _record: &StepRecord) {
                self.steps += 1;
            }
            fn on_switch(&mut self, record: &StepRecord) {
                assert!(record.switched());
                self.switches += 1;
            }
            fn on_finish(&mut self, summary: &SessionSummary) {
                self.finished = Some(summary.clone());
            }
        }

        let s = scenario(16, 20, 4);
        let mut spy = Spy {
            steps: 0,
            switches: 0,
            finished: None,
        };
        let mut inor = Inor::default();
        let mut session = SimSession::new(&s, &mut inor).unwrap();
        session.attach(&mut spy);
        while session.step().unwrap().is_some() {}
        let switch_count = session.summary().switch_count();
        drop(session);
        assert_eq!(spy.steps, 20);
        assert_eq!(spy.switches, switch_count);
        let finish = spy.finished.expect("on_finish fired");
        assert_eq!(finish.steps(), 20);
    }

    #[test]
    fn long_period_schemes_are_invoked_at_their_period() {
        // A 4-second period over 1-second steps must be honoured: one
        // invocation at t = 0 and one every 4 s after, not one per step
        // (the `.max(1.0)` regression in the pre-session engine).
        let s = scenario(10, 40, 5);
        let config = InorConfig::new(*s.charger(), 0.9, Seconds::new(4.0)).unwrap();
        let mut inor = Inor::new(config);
        let mut session = SimSession::new(&s, &mut inor).unwrap();
        while session.step().unwrap().is_some() {}
        assert_eq!(session.summary().runtime().invocations(), 10);
    }

    #[test]
    fn sub_second_periods_invoke_multiple_times_per_step() {
        let s = scenario(10, 10, 6);
        let mut inor = Inor::default(); // 0.5 s period
        let mut session = SimSession::new(&s, &mut inor).unwrap();
        while session.step().unwrap().is_some() {}
        assert_eq!(session.summary().runtime().invocations(), 20);
    }

    #[test]
    fn run_after_manual_stepping_is_rejected() {
        let s = scenario(8, 10, 12);
        let mut inor = Inor::default();
        let mut session = SimSession::new(&s, &mut inor).unwrap();
        session.step().unwrap();
        match session.run() {
            Err(SimError::InvalidScenario { reason }) => {
                assert!(reason.contains("1 steps"), "{reason}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn zero_period_schemes_are_rejected_instead_of_hanging() {
        struct BrokenPeriod;
        impl Reconfigurer for BrokenPeriod {
            fn name(&self) -> &'static str {
                "Broken"
            }
            fn period(&self) -> Seconds {
                Seconds::ZERO
            }
            fn decide(
                &mut self,
                _window: &teg_reconfig::TelemetryWindow<'_>,
                current: &Configuration,
            ) -> Result<teg_reconfig::ReconfigDecision, teg_reconfig::ReconfigError> {
                Ok(teg_reconfig::ReconfigDecision::new(
                    current.clone(),
                    Seconds::ZERO,
                    false,
                    false,
                ))
            }
        }
        let s = scenario(6, 10, 9);
        let mut broken = BrokenPeriod;
        let err = match SimSession::new(&s, &mut broken) {
            Err(err) => err,
            Ok(_) => panic!("zero-period scheme must be rejected"),
        };
        assert!(matches!(err, SimError::InvalidScenario { .. }));
        assert!(err.to_string().contains("Broken"));
    }

    #[test]
    fn fault_plan_events_fire_at_their_steps_and_degrade_output() {
        use crate::fault::{FaultAction, FaultEvent, FaultPlan};
        use teg_array::ModuleFault;

        let healthy = scenario(10, 30, 8);
        let faulted = Scenario::builder()
            .module_count(10)
            .duration_seconds(30)
            .seed(8)
            .fault_plan(FaultPlan::new(vec![
                FaultEvent::new(
                    10,
                    FaultAction::Module {
                        module: 2,
                        fault: ModuleFault::OpenCircuit,
                    },
                ),
                FaultEvent::new(
                    10,
                    FaultAction::Module {
                        module: 5,
                        fault: ModuleFault::Derated(0.5),
                    },
                ),
                FaultEvent::new(20, FaultAction::ModuleRepair { module: 2 }),
            ]))
            .build()
            .unwrap();

        let run = |s: &Scenario| {
            let mut baseline = StaticBaseline::square_grid(10);
            let mut session = SimSession::new(s, &mut baseline).unwrap();
            let mut records = Vec::new();
            while let Some(record) = session.step().unwrap() {
                records.push(record);
            }
            (records, session.summary())
        };
        let (healthy_records, healthy_summary) = run(&healthy);
        let (faulted_records, faulted_summary) = run(&faulted);

        // Before the first event the two runs are identical; afterwards the
        // degraded plant delivers strictly less.
        for t in 0..10 {
            assert_eq!(healthy_records[t], faulted_records[t], "step {t}");
        }
        for t in 10..20 {
            assert!(
                faulted_records[t].array_power() < healthy_records[t].array_power(),
                "step {t} must be degraded"
            );
            assert!(faulted_records[t].faults_active() >= 1);
        }
        // After the repair only the derated module remains.
        assert_eq!(faulted_records[25].faults_active(), 1);
        assert_eq!(faulted_records[10].fault_events(), 2);
        assert_eq!(faulted_records[20].fault_events(), 1);
        assert!(faulted_summary.net_energy() < healthy_summary.net_energy());

        // Summary accounting: 20 faulted steps (10..30), 3 events, and the
        // scheme's invocations during them counted as fault-exposed.
        assert_eq!(faulted_summary.fault_events(), 3);
        assert_eq!(faulted_summary.faulted_steps(), 20);
        assert_eq!(faulted_summary.runtime().faulted_invocations(), 20);
        assert_eq!(healthy_summary.fault_events(), 0);
        assert_eq!(healthy_summary.faulted_steps(), 0);
        assert_eq!(healthy_summary.runtime().faulted_invocations(), 0);
    }

    #[test]
    fn sensor_faults_blind_the_scheme_without_touching_the_physics() {
        use crate::fault::{FaultAction, FaultEvent, FaultPlan};
        use teg_reconfig::SensorFault;

        // Every sensor drops out: the scheme sees ΔT = 0 everywhere, but the
        // static baseline never rewires, so the physical output is untouched
        // while the fault accounting records the blindness.
        let plan = FaultPlan::new(
            (0..6)
                .map(|m| {
                    FaultEvent::new(
                        0,
                        FaultAction::Sensor {
                            module: m,
                            fault: SensorFault::Dropout,
                        },
                    )
                })
                .collect(),
        );
        let healthy = scenario(6, 15, 3);
        let blinded = Scenario::builder()
            .module_count(6)
            .duration_seconds(15)
            .seed(3)
            .fault_plan(plan)
            .build()
            .unwrap();
        let run = |s: &Scenario| {
            let mut baseline = StaticBaseline::square_grid(6);
            let mut session = SimSession::new(s, &mut baseline).unwrap();
            while session.step().unwrap().is_some() {}
            session.summary()
        };
        let healthy_summary = run(&healthy);
        let blinded_summary = run(&blinded);
        assert_eq!(healthy_summary.net_energy(), blinded_summary.net_energy());
        assert_eq!(blinded_summary.faulted_steps(), 15);
        assert_eq!(blinded_summary.fault_events(), 6);
        assert_eq!(healthy_summary.faulted_steps(), 0);
    }

    #[test]
    fn faulted_sessions_replay_bit_identically() {
        use crate::fault::{FaultPlan, FaultSeverity};
        use teg_reconfig::Inor;

        let plan = FaultPlan::random(12, 40, FaultSeverity::severe(), 21);
        assert!(!plan.is_empty());
        let s = Scenario::builder()
            .module_count(12)
            .duration_seconds(40)
            .seed(4)
            .fault_plan(plan)
            .build()
            .unwrap();
        let run = || {
            let mut inor = Inor::default();
            let session = SimSession::new(&s, &mut inor)
                .unwrap()
                .with_runtime_policy(RuntimePolicy::Fixed(Seconds::new(0.002)));
            let records: Result<Vec<_>, _> = session.collect();
            records.unwrap()
        };
        // Seeded sensor noise + fixed runtime charge: two replays agree on
        // every record bit.
        assert_eq!(run(), run());
    }

    #[test]
    fn telemetry_stays_bounded_by_the_scheme_lookback() {
        let s = scenario(6, 50, 7);
        let mut baseline = StaticBaseline::square_grid(6);
        let mut session = SimSession::new(&s, &mut baseline).unwrap();
        while session.step().unwrap().is_some() {}
        // The baseline looks back one row, so the ring holds exactly one.
        assert_eq!(session.buffer.len(), 1);
        assert_eq!(session.buffer.capacity(), 1);

        let mut dnor = Dnor::default();
        let lookback = teg_reconfig::Reconfigurer::lookback(&dnor);
        let mut session = SimSession::new(&s, &mut dnor).unwrap();
        while session.step().unwrap().is_some() {}
        assert_eq!(session.buffer.capacity(), lookback);
        assert!(session.buffer.len() <= lookback);
    }
}
